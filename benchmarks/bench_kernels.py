"""Micro-benchmarks of the library's computational kernels.

Not tied to a single paper artifact: these time the building blocks
every experiment uses (reference kernels, factorization, coloring,
partitioning, simulation), so regressions in the substrate are visible
independently of the experiment harness.
"""

import numpy as np
import pytest

from repro.comm import TorusGeometry
from repro.config import AzulConfig
from repro.core import build_pcg_hypergraph, map_block
from repro.dataflow import build_spmv_program
from repro.graph import color_and_permute, level_schedule
from repro.hypergraph import PartitionerOptions, partition
from repro.precond import ic0
from repro.sim import AZUL_PE, KernelSimulator
from repro.solvers import pcg
from repro.sparse import generators as gen


@pytest.fixture(scope="module")
def matrix():
    return gen.random_geometric_fem(
        300, avg_degree=7, dofs_per_node=2, seed=21
    )


@pytest.fixture(scope="module")
def lower(matrix):
    return ic0(matrix)


def test_spmv_reference(benchmark, matrix, rng=np.random.default_rng(0)):
    x = rng.standard_normal(matrix.n_cols)
    y = benchmark(matrix.spmv, x)
    assert y.shape == (matrix.n_rows,)


def test_sptrsv_reference(benchmark, lower):
    from repro.sparse.ops import sptrsv_lower

    b = np.ones(lower.n_rows)
    x = benchmark(sptrsv_lower, lower, b)
    assert np.all(np.isfinite(x))


def test_ic0_factorization(benchmark, matrix):
    factor = benchmark(ic0, matrix)
    assert factor.nnz == matrix.lower_triangle().nnz


def test_coloring_and_permutation(benchmark, matrix):
    permuted, _, _ = benchmark(color_and_permute, matrix)
    assert permuted.nnz == matrix.nnz


def test_level_schedule(benchmark, lower):
    schedule = benchmark(level_schedule, lower)
    assert schedule.n_levels > 0


def test_pcg_solve(benchmark, matrix):
    b = gen.make_rhs(matrix, seed=2)
    result = benchmark.pedantic(
        lambda: pcg(matrix, b), rounds=1, iterations=1
    )
    assert result.converged


def test_hypergraph_partition(benchmark, matrix, lower):
    hypergraph = build_pcg_hypergraph(matrix, lower, q=0)
    assignment = benchmark.pedantic(
        lambda: partition(hypergraph, 16, PartitionerOptions.speed(seed=0)),
        rounds=1, iterations=1,
    )
    assert assignment.max() < 16


def test_kernel_simulation(benchmark, matrix, lower):
    config = AzulConfig(mesh_rows=4, mesh_cols=4)
    torus = TorusGeometry(4, 4)
    placement = map_block(matrix, lower, 16)
    program = build_spmv_program(
        matrix, placement.a_tile, placement.vec_tile, torus
    )
    x = np.ones(matrix.n_rows)
    result = benchmark.pedantic(
        lambda: KernelSimulator(program, torus, config, AZUL_PE).run(x=x),
        rounds=1, iterations=1,
    )
    assert np.allclose(result.output, matrix.spmv(x))


# ----------------------------------------------------------------------
# Simulator-engine benchmarks (tracked in BENCH_sim.json)
# ----------------------------------------------------------------------
# The pair of ``test_spmv_sim`` / ``test_spmv_sim_reference`` entries is
# the headline perf artifact: the batched engine must stay bit-identical
# to the reference path (asserted here on cycles and output) while being
# substantially faster.  ``benchmarks/emit_bench_sim.py`` runs the
# ``sim_engine`` marker set with ``--benchmark-json`` and
# ``benchmarks/check_regression.py`` gates the recorded timings.


@pytest.fixture(scope="module")
def spmv_sim_setup(matrix, lower):
    config = AzulConfig(mesh_rows=4, mesh_cols=4)
    torus = TorusGeometry(4, 4)
    placement = map_block(matrix, lower, 16)
    program = build_spmv_program(
        matrix, placement.a_tile, placement.vec_tile, torus
    )
    x = np.ones(matrix.n_rows)
    return program, torus, config, x


@pytest.fixture(scope="module")
def sptrsv_sim_setup(matrix, lower):
    from repro.dataflow import build_sptrsv_program

    config = AzulConfig(mesh_rows=4, mesh_cols=4)
    torus = TorusGeometry(4, 4)
    placement = map_block(matrix, lower, 16)
    program = build_sptrsv_program(
        lower, placement.l_tile, placement.vec_tile, torus
    )
    b = np.ones(lower.n_rows)
    return program, torus, config, b


@pytest.mark.sim_engine
def test_spmv_sim(benchmark, matrix, spmv_sim_setup):
    """Batched engine on the 300-node FEM SpMV (the hot path)."""
    program, torus, config, x = spmv_sim_setup
    result = benchmark.pedantic(
        lambda: KernelSimulator(
            program, torus, config, AZUL_PE, engine="batched"
        ).run(x=x),
        rounds=5, iterations=1,
    )
    assert np.allclose(result.output, matrix.spmv(x))


@pytest.mark.sim_engine
def test_spmv_sim_reference(benchmark, matrix, spmv_sim_setup):
    """Per-op reference engine on the same program (speedup baseline)."""
    program, torus, config, x = spmv_sim_setup
    reference = benchmark.pedantic(
        lambda: KernelSimulator(
            program, torus, config, AZUL_PE, engine="reference"
        ).run(x=x),
        rounds=5, iterations=1,
    )
    batched = KernelSimulator(
        program, torus, config, AZUL_PE, engine="batched"
    ).run(x=x)
    assert batched.cycles == reference.cycles
    assert np.array_equal(batched.output, reference.output)


@pytest.mark.sim_engine
def test_sptrsv_sim(benchmark, sptrsv_sim_setup):
    """Batched engine on the dependence-limited forward SpTRSV."""
    program, torus, config, b = sptrsv_sim_setup
    result = benchmark.pedantic(
        lambda: KernelSimulator(
            program, torus, config, AZUL_PE, engine="batched"
        ).run(b=b),
        rounds=5, iterations=1,
    )
    assert np.all(np.isfinite(result.output))


@pytest.mark.sim_engine
def test_sptrsv_sim_reference(benchmark, sptrsv_sim_setup):
    """Per-op reference engine on the same SpTRSV program."""
    program, torus, config, b = sptrsv_sim_setup
    reference = benchmark.pedantic(
        lambda: KernelSimulator(
            program, torus, config, AZUL_PE, engine="reference"
        ).run(b=b),
        rounds=5, iterations=1,
    )
    batched = KernelSimulator(
        program, torus, config, AZUL_PE, engine="batched"
    ).run(b=b)
    assert batched.cycles == reference.cycles
    assert np.array_equal(batched.output, reference.output)


@pytest.mark.sim_engine
def test_obs_disabled_overhead(benchmark, spmv_sim_setup):
    """Disabled-observability overhead guard (<5% of a kernel sim).

    The facade's no-op paths are what the pipeline pays when ``--trace``
    / ``--metrics`` are not given.  One pipeline run makes a few dozen
    obs calls; this times 1,000 of them (counters, spans, timers —
    ~30x more than any real run) and asserts the total stays under 5%
    of one SpMV kernel simulation, so the disabled facade can never
    become a measurable tax.
    """
    import time

    import repro.obs as obs

    program, torus, config, x = spmv_sim_setup
    obs.disable()

    def disabled_calls(n=1_000):
        for _ in range(n):
            obs.counter("guard.counter")
            with obs.span("guard.span"):
                pass
            with obs.timer("guard.timer"):
                pass

    benchmark.pedantic(disabled_calls, rounds=5, iterations=1)

    start = time.perf_counter()
    disabled_calls()
    obs_seconds = time.perf_counter() - start
    start = time.perf_counter()
    KernelSimulator(
        program, torus, config, AZUL_PE, engine="batched"
    ).run(x=x)
    sim_seconds = time.perf_counter() - start
    assert obs_seconds < 0.05 * sim_seconds, (
        f"1k disabled obs calls took {obs_seconds * 1e3:.2f} ms vs "
        f"{sim_seconds * 1e3:.2f} ms for one kernel simulation"
    )
    assert obs.snapshot()["counters"] == {}

"""Benchmarks for the beyond-the-paper studies: the Sec. II
direct-vs-iterative fill analysis and the design-choice ablations."""

from benchmarks.conftest import run_once
from repro.experiments import (
    abl_buffer,
    abl_partitioner,
    abl_quantiles,
    abl_row_weight,
    abl_threads,
    abl_trees,
    tab2_sim,
    tab_fill,
)


def test_tab_fill_direct_vs_iterative(benchmark, subset):
    result = run_once(benchmark, lambda: tab_fill.run(matrices=subset))
    for row in result.rows:
        # Sec. II: the true factor is denser than the zero-fill pattern.
        assert row["fill_ratio"] >= 1.0
        assert row["nnz_chol"] >= row["nnz_trilA"]
    assert result.extras["max_fill_ratio"] > 1.2


def test_abl_row_weight(benchmark):
    result = run_once(benchmark, abl_row_weight.run)
    assert len(result.rows) == 3
    # Sanity: traffic accounting present for every weight.
    for row in result.rows:
        assert row["link_activations"] > 0
        assert row["cycles"] > 0


def test_abl_quantiles(benchmark):
    result = run_once(benchmark, abl_quantiles.run)
    # q>0 must not lose to nonzero-only balancing (Sec. IV-C's point).
    assert result.extras["best_speedup"] >= 1.0
    assert result.rows[0]["q"] == 0


def test_abl_partitioner_presets(benchmark):
    result = run_once(benchmark, abl_partitioner.run)
    # Higher effort must not produce a worse cut.
    assert result.extras["quality_cut"] <= result.extras["speed_cut"] * 1.05
    # And costs more time (the PaToH preset tradeoff).
    assert result.extras["quality_s"] > result.extras["speed_s"]


def test_abl_threads_saturation(benchmark, subset):
    result = run_once(benchmark, lambda: abl_threads.run(matrices=subset))
    values = result.column("gmean_gflops")
    # Monotone non-decreasing up to saturation.
    assert values[-1] >= values[0]
    assert result.extras["max_gain"] >= 1.0


def test_abl_buffer_graceful_degradation(benchmark):
    result = run_once(benchmark, abl_buffer.run)
    rows = sorted(result.rows, key=lambda r: r["buffer_entries"])
    # Smaller buffers spill at least as much and never run faster.
    assert rows[0]["spills"] >= rows[-1]["spills"]
    assert rows[0]["cycles"] >= rows[-1]["cycles"]


def test_abl_trees_fig18(benchmark, subset):
    result = run_once(benchmark, lambda: abl_trees.run(matrices=subset))
    for row in result.rows:
        # Fig. 18: trees never use more links or cycles than unicast.
        assert row["tree_links"] <= row["unicast_links"]
        assert row["tree_cycles"] <= row["unicast_cycles"]
    assert result.extras["gmean_traffic_saving"] >= 1.0


def test_tab2_sim_solver_family(benchmark):
    result = run_once(benchmark, tab2_sim.run)
    assert len(result.rows) == 9
    # Sec. II-B: the whole family lands in a narrow throughput band.
    assert result.extras["max_gflops"] < 2.0 * result.extras["min_gflops"]


def test_abl_topology_torus_wins(benchmark, subset):
    from repro.experiments import abl_topology

    result = run_once(benchmark, lambda: abl_topology.run(matrices=subset))
    for row in result.rows:
        # Wraparound never hurts: torus <= mesh on cycles and links.
        assert row["torus_cycles"] <= row["mesh_cycles"]
        assert row["torus_links"] <= row["mesh_links"]
    assert result.extras["gmean_torus_advantage"] >= 1.0


def test_abl_seed_stability(benchmark):
    from repro.experiments import abl_seed

    result = run_once(benchmark, abl_seed.run)
    # Mapping quality must be stable: <1.5x cycle spread across seeds.
    assert result.extras["cycle_spread"] < 1.5


def test_corr_study_direction(benchmark):
    from repro.experiments import corr_study

    result = run_once(benchmark, corr_study.run)
    # Block's traffic penalty exists on every matrix (azul always wins).
    assert all(row["block_vs_azul_traffic"] > 1.0 for row in result.rows)


def test_ord_study_coloring_wins_parallelism(benchmark, subset):
    from repro.experiments import ord_study

    result = run_once(benchmark, lambda: ord_study.run(matrices=subset))
    for row in result.rows:
        assert row["par_colored"] >= row["par_rcm"]
        assert row["par_colored"] >= row["par_natural"]


def test_model_validation(benchmark, subset):
    from repro.experiments import model_validation

    result = run_once(
        benchmark, lambda: model_validation.run(matrices=subset)
    )
    # The model must track the simulator (strong correlation) even if
    # absolute cycles are optimistic (no queuing in a bound model).
    assert result.extras["correlation"] > 0.6
    assert result.extras["mean_abs_error_pct"] < 70


def test_eff_study_efficiency_gain(benchmark, subset):
    from repro.experiments import eff_study

    result = run_once(benchmark, lambda: eff_study.run(matrices=subset))
    # The all-SRAM machine must win on efficiency on every matrix.
    assert all(row["efficiency_gain"] > 1.0 for row in result.rows)
    assert result.extras["gmean_efficiency_gain"] > 10.0

"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md's
experiment index) and asserts its qualitative shape.  Simulation-heavy
benchmarks run on a reduced matrix subset; expensive placements are
cached on disk (``.cache/placements``), so the first run pays the
mapping cost and later runs are fast.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest

#: Reduced subset spanning the parallelism spectrum: low (crankseg_1),
#: medium (consph), high (thermal2).
SMALL_SUBSET = ["crankseg_1", "consph", "thermal2"]


@pytest.fixture(scope="session")
def subset():
    return list(SMALL_SUBSET)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

#!/usr/bin/env python
"""Back-compat shim: ``emit_bench_sim`` is now ``emit_bench --suite sim``.

The harness was generalized when the mapping benchmarks
(``BENCH_mapping.json``) joined the tracked set; this wrapper keeps the
historical entry point and public names (``SPEEDUP_PAIRS``,
``load_times``) working.  Prefer::

    python benchmarks/emit_bench.py --suite sim
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_bench import (  # noqa: F401,E402  (re-exported names)
    SPEEDUP_PAIRS,
    load_times,
)
from emit_bench import main as _main  # noqa: E402

DEFAULT_OUTPUT = "BENCH_sim.json"


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    return _main(["--suite", "sim"] + list(argv))


if __name__ == "__main__":
    sys.exit(main())

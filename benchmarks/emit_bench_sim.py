#!/usr/bin/env python
"""Emit ``BENCH_sim.json``: the tracked simulator-engine benchmark run.

Drives pytest-benchmark over the ``sim_engine`` marker set in
``benchmarks/bench_kernels.py`` (batched vs per-op reference engine on
the 300-node FEM SpMV/SpTRSV programs) and writes the standard
pytest-benchmark JSON to ``BENCH_sim.json``.  A summary — including the
batched-over-reference speedup the PR tracks — is printed at the end.

Usage::

    python benchmarks/emit_bench_sim.py [--output BENCH_sim.json]
                                        [--rounds-fast] [--pytest-arg ...]

Gate the emitted file against the committed baseline with
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = "BENCH_sim.json"

#: (fast engine, baseline engine) name pairs whose ratio is the
#: headline speedup recorded by this harness.
SPEEDUP_PAIRS = (
    ("test_spmv_sim", "test_spmv_sim_reference"),
    ("test_sptrsv_sim", "test_sptrsv_sim_reference"),
)


def load_times(path: Path) -> dict:
    """Map short benchmark name -> best-round seconds from a JSON file.

    Uses ``stats.min`` rather than the mean: the minimum over rounds is
    the standard robust estimator for micro-benchmarks — transient
    machine load only ever inflates timings, so the best round is the
    closest observation of the true cost.
    """
    data = json.loads(path.read_text())
    times = {}
    for entry in data.get("benchmarks", []):
        name = entry["name"].split("[")[0]
        times[name] = entry["stats"]["min"]
    return times


def summarize(path: Path) -> int:
    times = load_times(path)
    if not times:
        print(f"{path}: no benchmarks recorded", file=sys.stderr)
        return 1
    width = max(len(name) for name in times)
    print(f"\n{path} (best of rounds):")
    for name, best in sorted(times.items()):
        print(f"  {name:<{width}}  {best * 1e3:9.2f} ms")
    for fast, slow in SPEEDUP_PAIRS:
        if fast in times and slow in times and times[fast] > 0:
            kernel = fast.replace("test_", "").replace("_sim", "")
            print(f"  {kernel} batched-engine speedup: "
                  f"{times[slow] / times[fast]:.2f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help="benchmark JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--summary-only", action="store_true",
        help="summarize an existing JSON without re-running benchmarks",
    )
    parser.add_argument(
        "--pytest-arg", action="append", default=[],
        help="extra argument forwarded to pytest (repeatable)",
    )
    args = parser.parse_args(argv)
    output = Path(args.output)

    if not args.summary_only:
        command = [
            sys.executable, "-m", "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_kernels.py"),
            "-m", "sim_engine",
            "--benchmark-only",
            "--benchmark-disable-gc",
            f"--benchmark-json={output}",
            "-q",
        ] + args.pytest_arg
        print("$", " ".join(command))
        status = subprocess.call(command, cwd=REPO_ROOT)
        if status != 0:
            return status
    if not output.exists():
        print(f"{output}: not found", file=sys.stderr)
        return 1
    return summarize(output)


if __name__ == "__main__":
    sys.exit(main())

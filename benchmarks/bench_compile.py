"""Benchmarks for dataflow program compilation (lowering strategies).

The ``compile_program``-marked benchmarks track the array-backed
``VectorizedLowering`` against the retained per-element
``ReferenceLowering`` in ``BENCH_compile.json`` (see
``benchmarks/emit_bench.py --suite compile``): the full PCG program
triple — SpMV plus both SpTRSV kernels, multicast/reduction forests
included — on the largest solver-suite matrix (BenElechi1 at suite
scale 4) mapped onto the paper's 64-tile torus.

Both strategies produce bit-identical ``CompiledKernel`` programs
(``tests/test_dataflow_equivalence.py``), so the pair ratio is pure
lowering speed.  Sweep-scale runs compile each (matrix, placement)
point once and fan out over simulator knobs via the program cache, but
cold compiles still bound how fast a new sweep starts.
"""

import pytest

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig
from repro.core.block import map_block
from repro.dataflow.program import build_pcg_program
from repro.precond.ic0 import ic0
from repro.sparse.suite import get_suite_matrix

#: Largest solver-suite benchmark matrix (n=4480, ~108k nonzeros).
COMPILE_MATRIX = "BenElechi1"
COMPILE_SCALE = 4
#: The paper's 64-tile machine (8x8 torus).
MESH_ROWS = 8
MESH_COLS = 8


@pytest.fixture(scope="module")
def compile_inputs():
    """Matrix, IC(0) factor, placement, and geometry (built once)."""
    matrix, _ = get_suite_matrix(COMPILE_MATRIX, scale=COMPILE_SCALE)
    lower = ic0(matrix)
    placement = map_block(matrix, lower, MESH_ROWS * MESH_COLS)
    geometry = TorusGeometry(MESH_ROWS, MESH_COLS)
    config = AzulConfig(mesh_rows=MESH_ROWS, mesh_cols=MESH_COLS)
    return matrix, lower, placement, geometry, config


def _compile(inputs):
    matrix, lower, placement, geometry, config = inputs
    return build_pcg_program(
        matrix, lower, placement, geometry, config, multicast="tree",
    )


@pytest.mark.compile_program
def test_compile_vectorized(benchmark, compile_inputs, monkeypatch):
    monkeypatch.delenv("AZUL_DATAFLOW_REFERENCE", raising=False)
    program = benchmark.pedantic(
        lambda: _compile(compile_inputs),
        rounds=10, iterations=1, warmup_rounds=1,
    )
    assert program.spmv.total_fmacs > 0


@pytest.mark.compile_program
def test_compile_reference(benchmark, compile_inputs, monkeypatch):
    monkeypatch.setenv("AZUL_DATAFLOW_REFERENCE", "1")
    program = benchmark.pedantic(
        lambda: _compile(compile_inputs),
        rounds=3, iterations=1,
    )
    assert program.spmv.total_fmacs > 0

"""Benchmarks for the motivation artifacts: Fig. 1, Fig. 3, Table I,
Fig. 7, Table II, and Table IV."""

from benchmarks.conftest import run_once
from repro.experiments import fig01, fig03, fig07, tab1, tab2, tab4


def test_fig01_gpu_utilization(benchmark):
    result = run_once(benchmark, fig01.run)
    assert len(result.rows) == 6
    # Paper claim: GPU achieves under 1% of peak on every matrix.
    assert all(row["pct_of_peak"] < 1.0 for row in result.rows)


def test_fig03_gpu_kernel_breakdown(benchmark):
    result = run_once(benchmark, fig03.run)
    for row in result.rows:
        # SpTRSV dominates SpMV on the GPU (Fig. 3's shape).
        assert row["sptrsv"] > row["spmv"]
        total = row["sptrsv"] + row["spmv"] + row["vector"]
        assert abs(total - 1.0) < 1e-9


def test_tab1_parallelism(benchmark):
    result = run_once(benchmark, tab1.run)
    for row in result.rows:
        # SpMV parallelism dwarfs SpTRSV's; coloring widens SpTRSV's.
        assert row["spmv"] > row["sptrsv_permuted"]
        assert row["sptrsv_permuted"] >= row["sptrsv_original"]


def test_fig07_coloring_speedup(benchmark):
    result = run_once(benchmark, fig07.run)
    # Coloring speeds up the GPU on every matrix; >=2x on most.
    speedups = result.column("speedup")
    assert all(s > 1.0 for s in speedups)
    assert sum(s >= 2.0 for s in speedups) >= len(speedups) // 2


def test_tab2_solver_registry(benchmark):
    result = run_once(benchmark, tab2.run)
    assert len(result.rows) == 9
    kernels = set()
    for row in result.rows:
        kernels.update(row["kernels"].split(" + "))
    assert kernels == {"SpMV", "SpTRSV"}


def test_tab4_suite_inventory(benchmark):
    result = run_once(benchmark, lambda: tab4.run(section="small"))
    assert len(result.rows) == 20
    # Matrices must be ordered by increasing nnz-per-row diversity and
    # cover low (grid) and high (banded/mesh) densities.
    densities = result.column("nnz_per_row")
    assert max(densities) > 4 * min(densities)

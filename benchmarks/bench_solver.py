"""Benchmarks for the solver numeric kernels (Sec. II-A hot path).

The ``solver_kernels``-marked benchmarks track the level-scheduled
kernel engine against the retained per-row reference loops in
``BENCH_solver.json`` (see ``benchmarks/emit_bench.py --suite
solver``): SpTRSV and IC(0) on the largest solver-suite matrix
(BenElechi1 at suite scale 4), plus the end-to-end PCG solve — IC(0)
setup included — that every accuracy experiment repeats per matrix.

The level engine's triangular/IC(0) schedules are memoized on the
factor, so a solve's schedule cost is paid once per factor; the SpTRSV
and IC(0) benchmarks measure the warm steady state (the per-iteration
cost inside PCG), while the PCG pair includes the one-time schedule
builds.
"""

import pytest

from repro.solvers.base import SolveOptions
from repro.sparse.ops import KERNELS
from repro.sparse.suite import get_suite_matrix

#: Largest solver-suite benchmark matrix: the 2D-mesh analog scaled 4x
#: (n=4480, ~56k nonzeros in the lower triangle, ~22 dependence levels).
SOLVER_MATRIX = "BenElechi1"
SOLVER_SCALE = 4
#: Fixed PCG budget (``tol=0`` never converges) so both engines do
#: identical numeric work and the pair ratio is pure kernel speed.
PCG_ITERATIONS = 30


@pytest.fixture(scope="module")
def system():
    return get_suite_matrix(SOLVER_MATRIX, scale=SOLVER_SCALE)


@pytest.fixture(scope="module")
def factors(system):
    """IC(0) factor pair of the benchmark matrix (built once)."""
    from repro.precond.ic0 import ic0

    matrix, b = system
    lower = ic0(matrix, kernels="level")
    return lower, lower.transpose(), b


@pytest.fixture(scope="module")
def raw_lower(system):
    """The unfactored lower triangle IC(0) attempts consume."""
    matrix, _ = system
    return matrix.lower_triangle()


def _sptrsv_roundtrip(engine_name, lower, upper, b):
    engine = KERNELS[engine_name]
    y = engine.sptrsv_lower(lower, b)
    return engine.sptrsv_upper(upper, y)


@pytest.mark.solver_kernels
def test_sptrsv_level(benchmark, factors):
    lower, upper, b = factors
    x = benchmark.pedantic(
        lambda: _sptrsv_roundtrip("level", lower, upper, b),
        rounds=10, iterations=1, warmup_rounds=1,
    )
    assert len(x) == lower.n_rows


@pytest.mark.solver_kernels
def test_sptrsv_reference(benchmark, factors):
    lower, upper, b = factors
    x = benchmark.pedantic(
        lambda: _sptrsv_roundtrip("reference", lower, upper, b),
        rounds=3, iterations=1,
    )
    assert len(x) == lower.n_rows


@pytest.mark.solver_kernels
def test_ic0_level(benchmark, raw_lower):
    engine = KERNELS["level"]
    engine.ic0_attempt(raw_lower, 0.0)  # warm the cached schedule
    data = benchmark.pedantic(
        lambda: engine.ic0_attempt(raw_lower, 0.0),
        rounds=5, iterations=1,
    )
    assert data is not None


@pytest.mark.solver_kernels
def test_ic0_reference(benchmark, raw_lower):
    engine = KERNELS["reference"]
    data = benchmark.pedantic(
        lambda: engine.ic0_attempt(raw_lower, 0.0),
        rounds=2, iterations=1,
    )
    assert data is not None


def _pcg_end_to_end(system, kernels):
    from repro.precond.ic0 import IncompleteCholesky
    from repro.solvers.pcg import pcg

    matrix, b = system
    preconditioner = IncompleteCholesky(matrix, kernels=kernels)
    options = SolveOptions(max_iterations=PCG_ITERATIONS, tol=0.0)
    return pcg(matrix, b, preconditioner, options)


@pytest.mark.solver_kernels
def test_pcg_level(benchmark, system, monkeypatch):
    monkeypatch.delenv("AZUL_SOLVER_REFERENCE", raising=False)
    result = benchmark.pedantic(
        lambda: _pcg_end_to_end(system, "level"),
        rounds=3, iterations=1,
    )
    assert result.iterations == PCG_ITERATIONS


@pytest.mark.solver_kernels
def test_pcg_reference(benchmark, system, monkeypatch):
    monkeypatch.setenv("AZUL_SOLVER_REFERENCE", "1")
    result = benchmark.pedantic(
        lambda: _pcg_end_to_end(system, "reference"),
        rounds=2, iterations=1,
    )
    assert result.iterations == PCG_ITERATIONS

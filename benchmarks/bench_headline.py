"""Benchmarks for the headline comparisons: Fig. 2, Fig. 9, Fig. 20."""

from benchmarks.conftest import run_once
from repro.experiments import fig02, fig09, fig20


def test_fig09_dalorex_underperforms(benchmark, subset):
    result = run_once(benchmark, lambda: fig09.run(matrices=subset))
    # Dalorex leaves nearly all of the all-SRAM machine's peak unused
    # (paper: ~1%; small matrices allow somewhat more).
    assert all(row["fraction_of_peak"] < 0.25 for row in result.rows)


def test_fig20_architecture_ordering(benchmark, subset):
    result = run_once(benchmark, lambda: fig20.run(matrices=subset))
    # The paper's ordering: Azul > Dalorex on every matrix, and Azul
    # beats the GPU outright.
    for row in result.rows:
        assert row["azul_speedup"] > row["dalorex_speedup"]
        assert row["azul_speedup"] > 1.0
    assert result.extras["azul"] > result.extras["dalorex"]
    assert result.extras["azul"] > result.extras["alrescha"]


def test_fig02_headline_bars(benchmark, subset):
    result = run_once(benchmark, lambda: fig02.run(matrices=subset))
    bars = {row["configuration"]: row["gmean_gflops"] for row in result.rows}
    azul = bars["Azul"]
    azul_rr = bars["Azul PEs + Dalorex mapping"]
    dalorex = bars["Dalorex"]
    gpu = bars["GPU (V100 model)"]
    # Fig. 2's shape: each ingredient contributes.
    assert azul > azul_rr > dalorex > gpu

"""Benchmarks for the mapping study: Figs. 10/11/17/23 and Sec. VI-D.

The ``mapping_engine``-marked benchmarks additionally track the
partitioner hot path itself in ``BENCH_mapping.json`` (see
``benchmarks/emit_bench.py --suite mapping``): quality-preset Azul
partitions with the vectorized vs reference FM refinement strategies,
plus the largest small-section suite matrix (BenElechi1) whose mapping
cost dominates the Sec. VI-D table.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig10, fig11, fig17, fig23, tabD

#: Matrix used for the vectorized-vs-reference strategy pair (medium
#: size keeps the reference round CI-affordable).
QUALITY_MATRIX = "consph"
#: Largest small-section suite matrix: the Sec. VI-D cost ceiling.
LARGEST_MATRIX = "BenElechi1"


def _quality_map(name: str, refine: str):
    from repro.core.azul_mapping import map_azul
    from repro.experiments.common import ExperimentSession
    from repro.hypergraph import PartitionerOptions

    session = ExperimentSession()
    prepared = session.prepare(name)
    options = replace(PartitionerOptions.quality(seed=0), refine=refine)
    return map_azul(
        prepared.matrix, prepared.lower, 64, options=options
    )


@pytest.mark.mapping_engine
def test_mapping_quality(benchmark):
    placement = run_once(
        benchmark, lambda: _quality_map(QUALITY_MATRIX, "vectorized")
    )
    assert placement.mapper == "azul"


@pytest.mark.mapping_engine
def test_mapping_quality_reference(benchmark):
    placement = run_once(
        benchmark, lambda: _quality_map(QUALITY_MATRIX, "reference")
    )
    assert placement.mapper == "azul"


@pytest.mark.mapping_engine
def test_mapping_quality_largest(benchmark):
    placement = run_once(
        benchmark, lambda: _quality_map(LARGEST_MATRIX, "vectorized")
    )
    assert placement.mapper == "azul"


def test_fig10_idealized_pe_mappings(benchmark, subset):
    result = run_once(benchmark, lambda: fig10.run(matrices=subset))
    # Even with idealized PEs, position-based mappings lose to Azul's.
    # (At 64 tiles a high-parallelism grid can tie — the paper's margin
    # comes from 4096 tiles — so require a majority win plus gmean.)
    wins = sum(row["azul"] > row["round_robin"] for row in result.rows)
    assert wins >= (len(result.rows) + 1) // 2
    assert result.extras["azul_vs_round_robin"] > 1.2


def test_fig11_traffic_reduction(benchmark, subset):
    result = run_once(benchmark, lambda: fig11.run(matrices=subset))
    for row in result.rows:
        # Azul's mapping must produce the least traffic of all four.
        assert row["azul_norm"] <= row["round_robin_norm"]
        assert row["azul_norm"] <= row["block_norm"]
        assert row["azul_norm"] <= row["sparsep_norm"]
    assert result.extras["azul_traffic_reduction_vs_rr"] > 3.0


def test_fig17_time_balancing(benchmark):
    result = run_once(benchmark, fig17.run)
    # Time balancing must not slow the kernel down, and the issue
    # histogram of the balanced mapping must end earlier (no long tail).
    assert result.extras["speedup"] >= 1.0
    last_bucket = result.rows[-1]
    assert last_bucket["time_balanced"] <= max(
        last_bucket["nonzero_balanced"], 1
    )


def test_fig23_end_to_end_mappings(benchmark, subset):
    result = run_once(benchmark, lambda: fig23.run(matrices=subset))
    for row in result.rows:
        assert row["azul"] > row["round_robin"]
        assert row["azul"] > row["sparsep"]
    assert result.extras["azul_vs_round_robin"] > 1.0


def test_tabD_mapping_costs(benchmark, subset):
    result = run_once(
        benchmark, lambda: tabD.run(matrices=subset, use_cache=False)
    )
    for row in result.rows:
        # Azul's mapping is the most expensive, Block the cheapest
        # (Sec. VI-D's ordering).
        assert row["azul_s"] > row["block_s"]
        assert row["azul_s"] > row["sparsep_s"]

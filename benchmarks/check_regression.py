#!/usr/bin/env python
"""Gate a tracked benchmark run against its committed baseline.

Two checks, both over the pytest-benchmark JSON emitted by
``benchmarks/emit_bench.py``:

1. **Per-benchmark regression** — each benchmark's best-of-rounds time
   must not be more than ``--threshold`` (default 25%) slower than the
   same benchmark in the baseline file.  Absolute timings are machine
   dependent, so CI keeps the baselines refreshed from the same runner
   class (see ``benchmarks/baselines/``).
2. **Speedup floor** — the suite's fast implementation must stay at
   least ``--min-speedup`` faster than its retained reference
   implementation.  This ratio is machine *independent*, so it holds
   even when the absolute baseline is stale.

   * ``sim`` (default floor 1.05x): since the layered-core refactor
     the per-op reference engine shares the batched engine's optimized
     control path, so the remaining gap is the pure batching benefit —
     ~1.4x on the 300-node FEM SpMV and ~1.1x on the
     dependence-limited SpTRSV.
   * ``mapping`` (default floor 1.5x): the reference heap-FM strategy
     shares the vectorized coarsening/initial phases and the
     dirty-set selection loop, so the gap is the pure CSR-gain
     bookkeeping benefit — ~2.2x on the consph quality partition.
   * ``solver`` (default floor 5x): warm level-scheduled SpTRSV over
     the per-row reference loops on BenElechi1 x4 (~25x measured);
     the IC(0) and end-to-end PCG pairs carry their own per-pair
     floors (3x / 1.5x, ``pair_floors`` in the suite spec) because
     they include one-time schedule builds.
   * ``compile`` (default floor 5x): the vectorized dataflow lowering
     over the per-element reference strategy on the BenElechi1 x4 PCG
     program triple (~8x measured); both produce bit-identical
     programs, so the ratio is pure lowering speed.

   A suite may declare per-pair floors (``pair_floors``); an explicit
   ``--min-speedup`` overrides every floor, per-pair ones included.

Exit status is non-zero on any violation.

Usage::

    python benchmarks/check_regression.py BENCH_mapping.json \
        --suite mapping \
        --baseline benchmarks/baselines/BENCH_mapping.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_bench import SUITES, load_times  # noqa: E402

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Machine-independent fast-vs-reference floors per suite.
DEFAULT_MIN_SPEEDUP = {
    "sim": 1.05, "mapping": 1.5, "solver": 5.0, "compile": 5.0,
}


def check(current_path: Path, baseline_path: Path, threshold: float,
          min_speedup: float, suite: str,
          use_pair_floors: bool = True) -> int:
    spec = SUITES[suite]
    current = load_times(current_path)
    failures = 0

    if baseline_path.exists():
        baseline = load_times(baseline_path)
        for name in sorted(current):
            if name not in baseline or baseline[name] <= 0:
                print(f"  new benchmark (no baseline): {name}")
                continue
            ratio = current[name] / baseline[name]
            status = "ok"
            if ratio > 1.0 + threshold:
                status = "REGRESSION"
                failures += 1
            print(f"  {name}: {current[name] * 1e3:.2f} ms vs baseline "
                  f"{baseline[name] * 1e3:.2f} ms ({ratio:.2f}x) [{status}]")
    else:
        print(f"  baseline {baseline_path} missing — skipping absolute "
              "regression check")

    pair_floors = spec.get("pair_floors", {}) if use_pair_floors else {}
    for fast, slow in spec["speedup_pairs"]:
        if fast not in current or slow not in current:
            continue
        floor = pair_floors.get(fast, min_speedup)
        speedup = current[slow] / current[fast]
        status = "ok"
        if speedup < floor:
            status = f"BELOW FLOOR ({floor:.1f}x)"
            failures += 1
        kernel = fast.replace("test_", "").replace("_sim", "")
        print(f"  {kernel} {spec['pair_label']} speedup: "
              f"{speedup:.2f}x [{status}]")

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("current", help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--suite", default="sim", choices=sorted(SUITES),
        help="benchmark suite being gated (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed baseline JSON "
             "(default: benchmarks/baselines/<suite default output>)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max allowed slowdown vs baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fast-vs-reference speedup floor, overriding the suite "
             "default and any per-pair floors "
             "(default: per suite — sim 1.05, mapping 1.5, solver 5, "
             "compile 5)",
    )
    args = parser.parse_args(argv)
    baseline = Path(
        args.baseline
        or BASELINE_DIR / SUITES[args.suite]["default_output"]
    )
    min_speedup = (
        DEFAULT_MIN_SPEEDUP[args.suite]
        if args.min_speedup is None else args.min_speedup
    )

    print(f"checking {args.current} against {baseline} "
          f"(suite {args.suite}, threshold {args.threshold:.0%}, "
          f"speedup floor {min_speedup:.1f}x)")
    failures = check(
        Path(args.current), baseline, args.threshold, min_speedup,
        args.suite, use_pair_floors=args.min_speedup is None,
    )
    print(f"failures: {failures}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Gate a ``BENCH_sim.json`` run against the committed baseline.

Two checks, both over the pytest-benchmark JSON emitted by
``benchmarks/emit_bench_sim.py``:

1. **Per-benchmark regression** — each benchmark's mean must not be
   more than ``--threshold`` (default 25%) slower than the same
   benchmark in the baseline file.  Absolute timings are machine
   dependent, so CI keeps the baseline refreshed from the same runner
   class (see ``benchmarks/baselines/``).
2. **Engine speedup floor** — the batched engine must stay at least
   ``--min-speedup`` faster than the per-op reference engine.  This
   ratio is machine *independent*, so it holds even when the absolute
   baseline is stale.  Default 1.05x: since the layered-core refactor
   the reference engine shares the batched engine's optimized control
   path (it differs only in the ``PerOpIssue`` strategy), so the
   remaining gap is the pure batching benefit — ~1.4x on the 300-node
   FEM SpMV and ~1.1x on the dependence-limited SpTRSV; the floor
   guards "batched never loses to reference", not the historical 1.5x+
   margin over the old unoptimized reference loop.

Exit status is non-zero on any violation.

Usage::

    python benchmarks/check_regression.py BENCH_sim.json \
        --baseline benchmarks/baselines/BENCH_sim.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from emit_bench_sim import SPEEDUP_PAIRS, load_times  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" \
    / "BENCH_sim.json"


def check(current_path: Path, baseline_path: Path, threshold: float,
          min_speedup: float) -> int:
    current = load_times(current_path)
    failures = 0

    if baseline_path.exists():
        baseline = load_times(baseline_path)
        for name in sorted(current):
            if name not in baseline or baseline[name] <= 0:
                print(f"  new benchmark (no baseline): {name}")
                continue
            ratio = current[name] / baseline[name]
            status = "ok"
            if ratio > 1.0 + threshold:
                status = "REGRESSION"
                failures += 1
            print(f"  {name}: {current[name] * 1e3:.2f} ms vs baseline "
                  f"{baseline[name] * 1e3:.2f} ms ({ratio:.2f}x) [{status}]")
    else:
        print(f"  baseline {baseline_path} missing — skipping absolute "
              "regression check")

    for fast, slow in SPEEDUP_PAIRS:
        if fast not in current or slow not in current:
            continue
        speedup = current[slow] / current[fast]
        status = "ok"
        if speedup < min_speedup:
            status = f"BELOW FLOOR ({min_speedup:.1f}x)"
            failures += 1
        kernel = fast.replace("test_", "").replace("_sim", "")
        print(f"  {kernel} batched speedup: {speedup:.2f}x [{status}]")

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("current", help="freshly emitted BENCH_sim.json")
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max allowed slowdown vs baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.05,
        help="batched-engine speedup floor vs the reference engine "
             "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    print(f"checking {args.current} against {args.baseline} "
          f"(threshold {args.threshold:.0%}, "
          f"speedup floor {args.min_speedup:.1f}x)")
    failures = check(
        Path(args.current), Path(args.baseline),
        args.threshold, args.min_speedup,
    )
    print(f"failures: {failures}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

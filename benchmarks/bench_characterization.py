"""Benchmarks for Azul characterization: Figs. 21/22/24 and Table V."""

from benchmarks.conftest import run_once
from repro.experiments import fig21, fig22, fig24, tab5


def test_fig21_cycle_breakdown(benchmark, subset):
    result = run_once(benchmark, lambda: fig21.run(matrices=subset))
    for row in result.rows:
        fractions = [row[k] for k in ("fmac", "add", "mul", "send", "stall")]
        assert abs(sum(fractions) - 1.0) < 1e-9
        # FMACs are the dominant *operation* class (Fig. 21).
        assert row["fmac"] >= row["add"]
        assert row["fmac"] >= row["mul"]


def test_fig22_kernel_breakdown(benchmark, subset):
    result = run_once(benchmark, lambda: fig22.run(matrices=subset))
    for row in result.rows:
        assert abs(row["spmv"] + row["sptrsv"] + row["vector"] - 1.0) < 1e-9
        # SpTRSV dominates runtime even on Azul (Fig. 22's shape).
        assert row["sptrsv"] > row["spmv"]


def test_tab5_area(benchmark):
    result = run_once(benchmark, tab5.run)
    paper_rows = {
        row["component"]: row["area_mm2"]
        for row in result.rows if row["configuration"] == "paper 64x64"
    }
    assert 150 < paper_rows["Total"] < 160
    assert paper_rows["SRAMs"] / paper_rows["Total"] > 0.7


def test_fig24_power(benchmark, subset):
    result = run_once(benchmark, lambda: fig24.run(matrices=subset))
    for row in result.rows:
        # SRAM dominates dynamic power (Sec. VI-E).
        assert row["sram"] > row["compute"]
        assert row["sram"] > row["noc"]
        assert row["total"] > 0

"""Benchmarks for sensitivity & scaling: Figs. 25/26/27/28."""

from benchmarks.conftest import run_once
from repro.experiments import fig25, fig26, fig27, fig28


def test_fig25_hop_latency(benchmark, subset):
    result = run_once(
        benchmark, lambda: fig25.run(matrices=subset, latencies=(1, 2, 4))
    )
    values = result.column("gmean_gflops")
    # Monotonic degradation, but mild (Azul is latency-tolerant).
    assert values[0] >= values[-1]
    assert values[-1] > 0.5 * values[0]


def test_fig26_sram_latency(benchmark, subset):
    result = run_once(
        benchmark, lambda: fig26.run(matrices=subset, latencies=(1, 2, 4))
    )
    values = result.column("gmean_gflops")
    assert values[0] >= values[-1]
    assert values[-1] > 0.5 * values[0]


def test_fig27_multithreading(benchmark, subset):
    result = run_once(benchmark, lambda: fig27.run(matrices=subset))
    # Multithreading helps (paper: 1.5x).
    assert result.extras["multithreading_gain"] > 1.0


def test_fig28_scaling(benchmark):
    cases = (("nd12k", 1), ("thermal2", 1))
    result = run_once(benchmark, lambda: fig28.run(cases=cases))
    rows = {row["matrix"]: row for row in result.rows}
    # High-parallelism thermal2 must scale better than parallelism-
    # limited nd12k (Fig. 28's key contrast).
    assert rows["thermal2"]["scaling_4x"] > rows["nd12k"]["scaling_4x"]

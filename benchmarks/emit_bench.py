#!/usr/bin/env python
"""Emit a tracked benchmark run (``BENCH_sim.json`` / ``BENCH_mapping.json``).

Drives pytest-benchmark over one marked benchmark suite and writes the
standard pytest-benchmark JSON.  A summary — including the
fast-over-reference speedup each suite tracks — is printed at the end.

Suites:

* ``sim`` — the ``sim_engine`` marker set in
  ``benchmarks/bench_kernels.py``: batched vs per-op reference engine
  on the 300-node FEM SpMV/SpTRSV programs.
* ``mapping`` — the ``mapping_engine`` marker set in
  ``benchmarks/bench_mapping.py``: quality-preset Azul partitions with
  the vectorized vs reference FM refinement strategies, plus the
  largest-suite-matrix (BenElechi1) partition the Sec. VI-D cost study
  tracks.
* ``solver`` — the ``solver_kernels`` marker set in
  ``benchmarks/bench_solver.py``: level-scheduled vs reference SpTRSV,
  IC(0), and end-to-end PCG on the largest solver-suite matrix
  (BenElechi1 scaled 4x).
* ``compile`` — the ``compile_program`` marker set in
  ``benchmarks/bench_compile.py``: vectorized vs reference dataflow
  lowering of the full PCG program triple on BenElechi1 scaled 4x
  mapped onto the 64-tile torus.

Usage::

    python benchmarks/emit_bench.py --suite mapping \
        [--output BENCH_mapping.json] [--pytest-arg ...]

Gate the emitted file against the committed baseline with
``benchmarks/check_regression.py --suite mapping``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Per-suite harness description: which benchmark file / marker to run,
#: where the JSON lands by default, and which (fast, reference)
#: benchmark pairs define the suite's headline speedup ratio.
SUITES = {
    "sim": {
        "bench_file": "bench_kernels.py",
        "marker": "sim_engine",
        "default_output": "BENCH_sim.json",
        "speedup_pairs": (
            ("test_spmv_sim", "test_spmv_sim_reference"),
            ("test_sptrsv_sim", "test_sptrsv_sim_reference"),
        ),
        "pair_label": "batched-engine",
    },
    "mapping": {
        "bench_file": "bench_mapping.py",
        "marker": "mapping_engine",
        "default_output": "BENCH_mapping.json",
        "speedup_pairs": (
            ("test_mapping_quality", "test_mapping_quality_reference"),
        ),
        "pair_label": "vectorized-FM",
    },
    "solver": {
        "bench_file": "bench_solver.py",
        "marker": "solver_kernels",
        "default_output": "BENCH_solver.json",
        "speedup_pairs": (
            ("test_sptrsv_level", "test_sptrsv_reference"),
            ("test_ic0_level", "test_ic0_reference"),
            ("test_pcg_level", "test_pcg_reference"),
        ),
        # The warm SpTRSV pair carries the suite's 5x floor; the IC(0)
        # and end-to-end PCG pairs keep their own conservative floors
        # (schedule builds amortize per factor, not per call).
        "pair_floors": {
            "test_ic0_level": 3.0,
            "test_pcg_level": 1.5,
        },
        "pair_label": "level-scheduled",
    },
    "compile": {
        "bench_file": "bench_compile.py",
        "marker": "compile_program",
        "default_output": "BENCH_compile.json",
        "speedup_pairs": (
            ("test_compile_vectorized", "test_compile_reference"),
        ),
        "pair_label": "vectorized-lowering",
    },
}

#: Back-compat alias (the historical ``emit_bench_sim`` public name).
SPEEDUP_PAIRS = SUITES["sim"]["speedup_pairs"]


def load_times(path: Path) -> dict:
    """Map short benchmark name -> best-round seconds from a JSON file.

    Uses ``stats.min`` rather than the mean: the minimum over rounds is
    the standard robust estimator for micro-benchmarks — transient
    machine load only ever inflates timings, so the best round is the
    closest observation of the true cost.
    """
    data = json.loads(path.read_text())
    times = {}
    for entry in data.get("benchmarks", []):
        name = entry["name"].split("[")[0]
        times[name] = entry["stats"]["min"]
    return times


def summarize(path: Path, suite: str) -> int:
    spec = SUITES[suite]
    times = load_times(path)
    if not times:
        print(f"{path}: no benchmarks recorded", file=sys.stderr)
        return 1
    width = max(len(name) for name in times)
    print(f"\n{path} (best of rounds):")
    for name, best in sorted(times.items()):
        print(f"  {name:<{width}}  {best * 1e3:9.2f} ms")
    for fast, slow in spec["speedup_pairs"]:
        if fast in times and slow in times and times[fast] > 0:
            kernel = fast.replace("test_", "").replace("_sim", "")
            print(f"  {kernel} {spec['pair_label']} speedup: "
                  f"{times[slow] / times[fast]:.2f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--suite", default="sim", choices=sorted(SUITES),
        help="benchmark suite to run (default: %(default)s)",
    )
    parser.add_argument(
        "--output", default=None,
        help="benchmark JSON path (default: the suite's BENCH_*.json)",
    )
    parser.add_argument(
        "--summary-only", action="store_true",
        help="summarize an existing JSON without re-running benchmarks",
    )
    parser.add_argument(
        "--pytest-arg", action="append", default=[],
        help="extra argument forwarded to pytest (repeatable)",
    )
    args = parser.parse_args(argv)
    spec = SUITES[args.suite]
    output = Path(args.output or spec["default_output"])

    if not args.summary_only:
        command = [
            sys.executable, "-m", "pytest",
            str(REPO_ROOT / "benchmarks" / spec["bench_file"]),
            "-m", spec["marker"],
            "--benchmark-only",
            "--benchmark-disable-gc",
            f"--benchmark-json={output}",
            "-q",
        ] + args.pytest_arg
        print("$", " ".join(command))
        status = subprocess.call(command, cwd=REPO_ROOT)
        if status != 0:
            return status
    if not output.exists():
        print(f"{output}: not found", file=sys.stderr)
        return 1
    return summarize(output, args.suite)


if __name__ == "__main__":
    sys.exit(main())

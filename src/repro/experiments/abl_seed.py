"""Ablation: mapping stability across partitioner seeds.

The multilevel partitioner is randomized (matching order, initial
seeds).  A production mapping flow needs the *quality* to be stable
across seeds even though the exact placement differs; this ablation
maps one matrix with several seeds and reports the spread of
connectivity cut, traffic, and simulated cycles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import analyze_traffic, build_pcg_hypergraph, map_azul
from repro.experiments.common import ExperimentSession
from repro.experiments.spec import ExperimentPlan, register
from repro.hypergraph import PartitionerOptions, connectivity_cut
from repro.perf import ExperimentResult


@register("abl_seed", title="Mapping stability across seeds",
          tags=("extension", "ablation", "sim"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, seeds=(0, 1, 2),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Map one matrix with several partitioner seeds."""
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        prepared = session.prepare(matrix)
        hypergraph = build_pcg_hypergraph(prepared.matrix, prepared.lower)
        result = ExperimentResult(
            experiment="abl_seed",
            title=f"Mapping stability across seeds on {matrix}",
            columns=["seed", "connectivity_cut", "link_activations",
                     "cycles"],
        )
        placements = [
            map_azul(
                prepared.matrix, prepared.lower, config.num_tiles,
                options=PartitionerOptions.speed(seed=seed), jobs=jobs,
            )
            for seed in seeds
        ]
        timings = session.simulate_placements(
            matrix, placements, check=False, jobs=jobs,
        )
        for seed, placement, timing in zip(seeds, placements, timings):
            assignment = np.concatenate([
                placement.a_tile, placement.l_tile, placement.vec_tile,
            ])
            traffic = analyze_traffic(
                placement, prepared.matrix, prepared.lower, torus
            )
            result.add_row(
                seed=seed,
                connectivity_cut=connectivity_cut(hypergraph, assignment),
                link_activations=traffic.total_link_activations,
                cycles=timing.total_cycles,
            )
        cycles = np.array(result.column("cycles"), dtype=float)
        spread = (
            float(cycles.max() / cycles.min()) if cycles.min() > 0
            else 0.0
        )
        result.extras = {"cycle_spread": spread}
        result.notes = (
            f"Cycle spread across seeds: {spread:.2f}x — randomized "
            "multilevel partitioning delivers stable mapping quality."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, seeds=(0, 1, 2),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Map one matrix with several partitioner seeds."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale,
                    seeds=seeds)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Experiment runner: ``python -m repro.experiments.runner [ids...]``.

Runs one, several, or all experiments and prints their rendered
tables.  Experiment ids match the paper's artifact numbering (see
DESIGN.md's per-experiment index).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import sys
import time

#: Experiment id -> module path.  Ordered roughly as in the paper.
EXPERIMENTS = {
    "tab4": "repro.experiments.tab4",
    "fig01": "repro.experiments.fig01",
    "fig02": "repro.experiments.fig02",
    "fig03": "repro.experiments.fig03",
    "tab1": "repro.experiments.tab1",
    "fig07": "repro.experiments.fig07",
    "tab2": "repro.experiments.tab2",
    "fig09": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "fig11": "repro.experiments.fig11",
    "fig17": "repro.experiments.fig17",
    "fig20": "repro.experiments.fig20",
    "fig21": "repro.experiments.fig21",
    "fig22": "repro.experiments.fig22",
    "fig23": "repro.experiments.fig23",
    "tabD": "repro.experiments.tabD",
    "tab5": "repro.experiments.tab5",
    "fig24": "repro.experiments.fig24",
    "fig25": "repro.experiments.fig25",
    "fig26": "repro.experiments.fig26",
    "fig27": "repro.experiments.fig27",
    "fig28": "repro.experiments.fig28",
    # Beyond-the-paper studies: Sec. II background + design ablations.
    "tab_fill": "repro.experiments.tab_fill",
    "abl_row_weight": "repro.experiments.abl_row_weight",
    "abl_quantiles": "repro.experiments.abl_quantiles",
    "abl_partitioner": "repro.experiments.abl_partitioner",
    "abl_threads": "repro.experiments.abl_threads",
    "abl_buffer": "repro.experiments.abl_buffer",
    "abl_trees": "repro.experiments.abl_trees",
    "tab2_sim": "repro.experiments.tab2_sim",
    "corr_study": "repro.experiments.corr_study",
    "ord_study": "repro.experiments.ord_study",
    "abl_topology": "repro.experiments.abl_topology",
    "abl_seed": "repro.experiments.abl_seed",
    "model_validation": "repro.experiments.model_validation",
    "eff_study": "repro.experiments.eff_study",
}


def run_experiment(experiment_id: str, jobs: int = None, **kwargs):
    """Run one experiment by id; returns its ExperimentResult.

    ``jobs`` is forwarded to experiments whose ``run()`` accepts a
    ``jobs`` parameter (the sweep-heavy ones fan their points out over
    :func:`repro.parallel.simulate_many`); others run serially.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choices: {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    if jobs is not None and "jobs" not in kwargs:
        parameters = inspect.signature(module.run).parameters
        if "jobs" in parameters:
            kwargs["jobs"] = jobs
    return module.run(**kwargs)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run Azul-reproduction experiments.",
    )
    parser.add_argument(
        "ids", nargs="*",
        help="experiment ids (default: all); see DESIGN.md",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit",
    )
    parser.add_argument(
        "--csv-dir", default=None, metavar="DIR",
        help="also write each result as DIR/<id>.csv",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print artifact-cache statistics after the runs",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep-parallel experiments "
             "(default: serial; REPRO_JOBS also honored)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Chrome trace (pipeline spans + simulator issue "
             "events) and write it to PATH (load at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", nargs="?", const="", default=None, metavar="PATH",
        help="collect metrics (counters / per-phase timers) and write a "
             "JSON artifact (default PATH: <csv-dir>/metrics.json or "
             "./metrics.json)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    ids = args.ids or list(EXPERIMENTS)
    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    observe = args.trace is not None or args.metrics is not None
    if observe:
        import repro.obs as obs

        obs.enable(metrics=True, tracing=args.trace is not None)

    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, jobs=args.jobs)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
        if args.csv_dir:
            result.to_csv(
                os.path.join(args.csv_dir, f"{experiment_id}.csv")
            )

    if observe:
        _export_observability(args, ids)

    if args.cache_stats:
        from repro.cache import ArtifactCache
        from repro.perf import format_cache_stats

        cache = ArtifactCache.default()
        print(format_cache_stats(cache.stats, cache.inventory()))
    return 0


def _export_observability(args, ids) -> None:
    """Write the trace / metrics artifacts collected during the runs."""
    import repro.obs as obs
    from repro.cache import ArtifactCache
    from repro.config import overrides

    extra = {
        "experiments": list(ids),
        "overrides": overrides(),
        "cache": ArtifactCache.default().stats.as_dict(),
    }
    if args.trace is not None:
        obs.write_chrome_trace(args.trace, metadata=extra)
        print(f"[trace written to {args.trace}]")
    if args.metrics is not None:
        path = args.metrics
        if not path:
            path = (os.path.join(args.csv_dir, "metrics.json")
                    if args.csv_dir else "metrics.json")
        obs.write_metrics(path, extra=extra)
        print(f"[metrics written to {path}]")


if __name__ == "__main__":
    sys.exit(main())

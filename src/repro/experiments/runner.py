"""Experiment runner: ``python -m repro.experiments.runner [ids...]``.

Runs one, several, or all experiments through the staged executor
(:mod:`repro.experiments.executor`): every selected experiment's plan
is built up front, identical simulation points are deduplicated
*globally* across experiments, one merged sweep computes the unique
points (``--jobs``), and each experiment then reduces and checkpoints
in isolation.  ``--plan`` prints the dry-run, ``--resume`` skips
checkpointed experiments, ``--keep-going`` records failures instead of
aborting.  Experiment ids match the paper's artifact numbering (see
DESIGN.md's per-experiment index).
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from typing import Iterable, List, Optional

from repro.experiments.spec import ExperimentSpec, get_registered

#: Experiment id -> module path.  Ordered roughly as in the paper.
#: Importing a module registers its spec; ``load_spec`` resolves ids.
EXPERIMENTS = {
    "tab4": "repro.experiments.tab4",
    "fig01": "repro.experiments.fig01",
    "fig02": "repro.experiments.fig02",
    "fig03": "repro.experiments.fig03",
    "tab1": "repro.experiments.tab1",
    "fig07": "repro.experiments.fig07",
    "tab2": "repro.experiments.tab2",
    "fig09": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "fig11": "repro.experiments.fig11",
    "fig17": "repro.experiments.fig17",
    "fig20": "repro.experiments.fig20",
    "fig21": "repro.experiments.fig21",
    "fig22": "repro.experiments.fig22",
    "fig23": "repro.experiments.fig23",
    "tabD": "repro.experiments.tabD",
    "tab5": "repro.experiments.tab5",
    "fig24": "repro.experiments.fig24",
    "fig25": "repro.experiments.fig25",
    "fig26": "repro.experiments.fig26",
    "fig27": "repro.experiments.fig27",
    "fig28": "repro.experiments.fig28",
    # Beyond-the-paper studies: Sec. II background + design ablations.
    "tab_fill": "repro.experiments.tab_fill",
    "abl_row_weight": "repro.experiments.abl_row_weight",
    "abl_quantiles": "repro.experiments.abl_quantiles",
    "abl_partitioner": "repro.experiments.abl_partitioner",
    "abl_threads": "repro.experiments.abl_threads",
    "abl_buffer": "repro.experiments.abl_buffer",
    "abl_trees": "repro.experiments.abl_trees",
    "tab2_sim": "repro.experiments.tab2_sim",
    "corr_study": "repro.experiments.corr_study",
    "ord_study": "repro.experiments.ord_study",
    "abl_topology": "repro.experiments.abl_topology",
    "abl_seed": "repro.experiments.abl_seed",
    "model_validation": "repro.experiments.model_validation",
    "eff_study": "repro.experiments.eff_study",
}


def load_spec(experiment_id: str) -> ExperimentSpec:
    """Import the module behind an id and return its registered spec."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choices: {', '.join(EXPERIMENTS)}"
        )
    importlib.import_module(EXPERIMENTS[experiment_id])
    return get_registered(experiment_id)


def load_specs(ids: Optional[Iterable[str]] = None) -> List[ExperimentSpec]:
    """Specs for the given ids (default: all), in runner order."""
    return [load_spec(experiment_id)
            for experiment_id in (ids or EXPERIMENTS)]


def run_experiment(experiment_id: str, jobs: Optional[int] = None,
                   **kwargs):
    """Run one experiment by id; returns its ExperimentResult.

    ``jobs`` is forwarded unconditionally: every spec builder declares
    a ``jobs`` parameter (the uniform parallelism contract), so no
    signature probing is needed.
    """
    return load_spec(experiment_id).run(jobs=jobs, **kwargs)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run Azul-reproduction experiments.",
    )
    parser.add_argument(
        "ids", nargs="*",
        help="experiment ids (default: all); see DESIGN.md",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list experiments (id, title, tags) and exit",
    )
    parser.add_argument(
        "--filter", action="append", default=None, metavar="TAG",
        help="only run experiments carrying TAG (repeatable: every "
             "given tag must match); tags are shown by --list",
    )
    parser.add_argument(
        "--plan", action="store_true",
        help="dry-run: print per-experiment point counts, the global "
             "dedup, and predicted cache hits; simulate nothing",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments whose checkpointed result is already in "
             "the artifact cache (written after each experiment)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="continue past a failing experiment; exit 1 at the end if "
             "any failed",
    )
    parser.add_argument(
        "--matrices", nargs="+", default=None, metavar="NAME",
        help="override the matrix set of every experiment that takes "
             "one (others run unchanged)",
    )
    parser.add_argument(
        "--csv-dir", default=None, metavar="DIR",
        help="also write each result as DIR/<id>.csv",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print artifact-cache statistics after the runs",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the merged simulation sweep "
             "(default: serial; REPRO_JOBS also honored)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a Chrome trace (pipeline spans + simulator issue "
             "events) and write it to PATH (load at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", nargs="?", const="", default=None, metavar="PATH",
        help="collect metrics (counters / per-phase timers) and write a "
             "JSON artifact (default PATH: <csv-dir>/metrics.json or "
             "./metrics.json)",
    )
    args = parser.parse_args(argv)

    specs = load_specs(args.ids or None)
    if args.filter:
        wanted = set(args.filter)
        specs = [spec for spec in specs
                 if wanted.issubset(set(spec.tags))]
    if args.list:
        for spec in specs:
            print(spec.describe())
        return 0
    if not specs:
        print("no experiments match the selection", file=sys.stderr)
        return 1
    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    observe = args.trace is not None or args.metrics is not None
    if observe:
        import repro.obs as obs

        obs.enable(metrics=True, tracing=args.trace is not None)

    overrides = {}
    if args.matrices is not None:
        overrides["matrices"] = list(args.matrices)

    from repro.experiments.executor import (
        ExperimentFailure,
        execute,
        plan_experiments,
    )

    if args.plan:
        # Dry run: always survey every experiment (keep_going) so the
        # printed plan covers the whole selection.
        _, sweep = plan_experiments(
            specs, jobs=args.jobs, resume=args.resume,
            overrides=overrides, keep_going=True,
        )
        print(sweep.render())
        return 0

    def on_outcome(outcome):
        if outcome.status == "failed":
            print(f"[{outcome.experiment_id} FAILED: {outcome.error}]",
                  file=sys.stderr)
            return
        result = outcome.result
        print(result.render())
        if outcome.status == "resumed":
            print(f"[{outcome.experiment_id} resumed from checkpoint]")
        else:
            print(f"[{outcome.experiment_id} completed in "
                  f"{outcome.seconds:.1f}s]")
        print()
        if args.csv_dir:
            result.to_csv(
                os.path.join(args.csv_dir, f"{outcome.experiment_id}.csv")
            )

    try:
        report = execute(
            specs, jobs=args.jobs, keep_going=args.keep_going,
            resume=args.resume, overrides=overrides,
            on_outcome=on_outcome,
        )
        exit_code = report.exit_code
        if exit_code:
            failed = ", ".join(
                outcome.experiment_id for outcome in report.failures()
            )
            print(f"[{len(report.failures())} experiment(s) failed: "
                  f"{failed}]", file=sys.stderr)
    except ExperimentFailure as failure:
        print(f"[aborted: {failure}]", file=sys.stderr)
        exit_code = 1

    if observe:
        _export_observability(args, [spec.id for spec in specs])

    if args.cache_stats:
        from repro.cache import ArtifactCache
        from repro.perf import format_cache_stats

        cache = ArtifactCache.default()
        print(format_cache_stats(cache.stats, cache.inventory()))
    return exit_code


def _export_observability(args, ids) -> None:
    """Write the trace / metrics artifacts collected during the runs."""
    import repro.obs as obs
    from repro.cache import ArtifactCache
    from repro.config import overrides

    extra = {
        "experiments": list(ids),
        "overrides": overrides(),
        "cache": ArtifactCache.default().stats.as_dict(),
    }
    if args.trace is not None:
        obs.write_chrome_trace(args.trace, metadata=extra)
        print(f"[trace written to {args.trace}]")
    if args.metrics is not None:
        path = args.metrics
        if not path:
            path = (os.path.join(args.csv_dir, "metrics.json")
                    if args.csv_dir else "metrics.json")
        obs.write_metrics(path, extra=extra)
        print(f"[metrics written to {path}]")


if __name__ == "__main__":
    sys.exit(main())

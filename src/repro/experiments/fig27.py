"""Fig. 27 analog: fine-grained multithreading ablation.

Gmean throughput of multithreaded vs single-threaded PEs; the paper
measures a 1.5x gain from hiding accumulator-dependence stalls.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Compare multithreaded and single-threaded PE configurations."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig27",
        title="Multithreading ablation: gmean PCG GFLOP/s",
        columns=["pe", "gmean_gflops"],
    )
    pes = ("azul", "azul_single")
    points = [
        SimPoint(name, pe=pe) for pe in pes for name in matrices
    ]
    sims = iter(session.simulate_many(points, jobs=jobs))
    values = {}
    for pe in pes:
        values[pe] = gmean([next(sims).gflops() for _ in matrices])
        result.add_row(pe="multi" if pe == "azul" else "single",
                       gmean_gflops=values[pe])
    result.extras = {
        "multithreading_gain": values["azul"] / values["azul_single"],
    }
    result.notes = (
        f"Multithreading gain: {values['azul'] / values['azul_single']:.2f}x "
        "(paper: 1.5x, Fig. 27)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

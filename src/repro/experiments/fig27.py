"""Fig. 27 analog: fine-grained multithreading ablation.

Gmean throughput of multithreaded vs single-threaded PEs; the paper
measures a 1.5x gain from hiding accumulator-dependence stalls.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


PES = ("azul", "azul_single")


@register("fig27", title="Fine-grained multithreading ablation",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Compare multithreaded and single-threaded PE configurations."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/{pe}": SimPoint(name, pe=pe)
        for pe in PES for name in matrices
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig27",
            title="Multithreading ablation: gmean PCG GFLOP/s",
            columns=["pe", "gmean_gflops"],
        )
        values = {}
        for pe in PES:
            values[pe] = gmean([
                sims[f"{name}/{pe}"].gflops() for name in matrices
            ])
            result.add_row(pe="multi" if pe == "azul" else "single",
                           gmean_gflops=values[pe])
        gain = values["azul"] / values["azul_single"]
        result.extras = {"multithreading_gain": gain}
        result.notes = (
            f"Multithreading gain: {gain:.2f}x (paper: 1.5x, Fig. 27)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Compare multithreaded and single-threaded PE configurations."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

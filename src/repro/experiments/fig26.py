"""Fig. 26 analog: sensitivity to SRAM access latency.

Gmean throughput sweeping scratchpad latency from 1 to 4 cycles; the
paper measures ~3% loss per extra cycle (multithreading hides latency).
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, \
    default_experiment_config, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


@register("fig26", title="Sensitivity to SRAM access latency",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, latencies=(1, 2, 3, 4),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep SRAM latency and report gmean GFLOP/s."""
    matrices = list(matrices or default_matrices())
    config = config or default_experiment_config()
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/sram{latency}": SimPoint(
            name, config=config.with_(sram_access_cycles=latency)
        )
        for latency in latencies for name in matrices
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig26",
            title="SRAM-latency sweep: gmean PCG GFLOP/s",
            columns=["sram_cycles", "gmean_gflops", "relative"],
        )
        baseline = None
        for latency in latencies:
            value = gmean([
                sims[f"{name}/sram{latency}"].gflops()
                for name in matrices
            ])
            if baseline is None:
                baseline = value
            result.add_row(
                sram_cycles=latency, gmean_gflops=value,
                relative=value / baseline,
            )
        slope = (1.0 - result.rows[-1]["relative"]) / (len(latencies) - 1)
        result.extras = {"loss_per_cycle": slope}
        result.notes = (
            f"~{100 * slope:.1f}% gmean throughput lost per extra SRAM "
            "cycle (paper: ~3%, Fig. 26)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, latencies=(1, 2, 3, 4),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep SRAM latency and report gmean GFLOP/s."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale, latencies=latencies)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Table V analog: Azul area estimates.

Component area breakdown at 7nm for the paper's 4096-tile machine
(155 mm^2, SRAM-dominated) and for the scaled-down simulation default.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig, paper_config
from repro.experiments.common import default_experiment_config
from repro.experiments.spec import ExperimentPlan, register
from repro.models import area_report
from repro.perf import ExperimentResult


@register("tab5", title="Azul area estimates at 7nm",
          tags=("paper", "table", "analytic"))
def spec(config: Optional[AzulConfig] = None,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Area breakdowns for the paper config and the simulated config."""

    def reduce(sims) -> ExperimentResult:
        configs = [
            ("paper 64x64", paper_config()),
            ("simulated default", config or default_experiment_config()),
        ]
        result = ExperimentResult(
            experiment="tab5",
            title="Area estimates at 7nm (mm^2)",
            columns=["configuration", "component", "area_mm2"],
        )
        for label, cfg in configs:
            report = area_report(cfg)
            for component, area in report.rows():
                result.add_row(
                    configuration=label, component=component,
                    area_mm2=area,
                )
        result.notes = (
            "Paper Table V: 4096 tiles = 155 mm^2 total (PEs 17.8, "
            "routers 6.6, SRAM 115.2, I/O 15); SRAM takes ~74% of area."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(config: Optional[AzulConfig] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Area breakdowns for the paper config and the simulated config."""
    return spec.run(jobs=jobs, config=config)


def main():
    print(run())


if __name__ == "__main__":
    main()

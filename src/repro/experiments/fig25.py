"""Fig. 25 analog: sensitivity to NoC hop latency.

Gmean throughput while sweeping per-hop latency from 1 to 4 cycles.
The paper measures only ~4% gmean loss per extra cycle — Azul's mapping
makes it latency-tolerant.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, \
    default_experiment_config, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


@register("fig25", title="Sensitivity to NoC hop latency",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, latencies=(1, 2, 3, 4),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep hop latency and report gmean GFLOP/s."""
    matrices = list(matrices or default_matrices())
    config = config or default_experiment_config()
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/hop{hop}": SimPoint(
            name, config=config.with_(hop_cycles=hop)
        )
        for hop in latencies for name in matrices
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig25",
            title="Hop-latency sweep: gmean PCG GFLOP/s",
            columns=["hop_cycles", "gmean_gflops", "relative"],
        )
        baseline = None
        for hop in latencies:
            value = gmean([
                sims[f"{name}/hop{hop}"].gflops() for name in matrices
            ])
            if baseline is None:
                baseline = value
            result.add_row(
                hop_cycles=hop, gmean_gflops=value,
                relative=value / baseline,
            )
        slope = (1.0 - result.rows[-1]["relative"]) / (len(latencies) - 1)
        result.extras = {"loss_per_cycle": slope}
        result.notes = (
            f"~{100 * slope:.1f}% gmean throughput lost per extra hop "
            "cycle (paper: ~4%, Fig. 25)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, latencies=(1, 2, 3, 4),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep hop latency and report gmean GFLOP/s."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale, latencies=latencies)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Table I analog: available parallelism of SpMV vs SpTRSV.

Work divided by critical-path length, for SpMV, for SpTRSV on the
original lower triangle, and for SpTRSV after coloring+permutation.
The paper's shape: SpMV parallelism is orders of magnitude above
SpTRSV's, and permutation widens SpTRSV parallelism by 10-300x.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.graph import parallelism_report
from repro.perf import ExperimentResult
from repro.sparse.suite import get_suite_matrix


@register("tab1", title="Available parallelism of SpMV vs SpTRSV",
          tags=("paper", "table", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Compute the Table I rows (uses unpermuted inputs as baseline)."""
    matrices = list(matrices or default_matrices())

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="tab1",
            title="Maximum available parallelism (work / critical path)",
            columns=[
                "matrix", "spmv", "sptrsv_original", "sptrsv_permuted",
                "coloring_gain",
            ],
        )
        for name in matrices:
            matrix = get_suite_matrix(name, scale=scale, with_rhs=False)
            report = parallelism_report(name, matrix)
            result.add_row(
                matrix=name,
                spmv=report.spmv,
                sptrsv_original=report.sptrsv_original,
                sptrsv_permuted=report.sptrsv_permuted,
                coloring_gain=report.coloring_gain,
            )
        result.notes = (
            "Paper shape (Table I): SpMV >> SpTRSV parallelism; "
            "permutation multiplies SpTRSV parallelism but it remains "
            "bounded."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Compute the Table I rows (uses unpermuted inputs as baseline)."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 10 analog: mapping strategies under idealized PEs.

To isolate the network as the bottleneck, the paper runs PCG on
hardware with idealized PEs (tasks run as fast as dependences allow)
under Round Robin, Block, and Azul mappings.  Position-based mappings
leave the machine NoC-bound; Azul's mapping restores throughput.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult, gmean


MAPPINGS = ("round_robin", "block", "azul")


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1) -> ExperimentResult:
    """Idealized-PE throughput under the three mappings."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig10",
        title="PCG GFLOP/s with idealized PEs, by data mapping",
        columns=["matrix"] + list(MAPPINGS),
    )
    for name in matrices:
        row = {"matrix": name}
        for mapping in MAPPINGS:
            sim = session.simulate(name, mapper=mapping, pe="ideal")
            row[mapping] = sim.gflops()
        result.add_row(**row)
    gains = [
        row["azul"] / row["round_robin"] for row in result.rows
    ]
    result.notes = (
        f"Azul mapping vs Round Robin under ideal PEs: gmean "
        f"{gmean(gains):.1f}x (paper: 10.2x at 4096 tiles, Fig. 10)."
    )
    result.extras = {"azul_vs_round_robin": gmean(gains)}
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

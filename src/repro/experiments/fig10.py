"""Fig. 10 analog: mapping strategies under idealized PEs.

To isolate the network as the bottleneck, the paper runs PCG on
hardware with idealized PEs (tasks run as fast as dependences allow)
under Round Robin, Block, and Azul mappings.  Position-based mappings
leave the machine NoC-bound; Azul's mapping restores throughput.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


MAPPINGS = ("round_robin", "block", "azul")


@register("fig10", title="Mapping strategies under idealized PEs",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Idealized-PE throughput under the three mappings."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/{mapping}": SimPoint(name, mapper=mapping, pe="ideal")
        for name in matrices for mapping in MAPPINGS
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig10",
            title="PCG GFLOP/s with idealized PEs, by data mapping",
            columns=["matrix"] + list(MAPPINGS),
        )
        for name in matrices:
            row = {"matrix": name}
            for mapping in MAPPINGS:
                row[mapping] = sims[f"{name}/{mapping}"].gflops()
            result.add_row(**row)
        gains = [
            row["azul"] / row["round_robin"] for row in result.rows
        ]
        result.notes = (
            f"Azul mapping vs Round Robin under ideal PEs: gmean "
            f"{gmean(gains):.1f}x (paper: 10.2x at 4096 tiles, Fig. 10)."
        )
        result.extras = {"azul_vs_round_robin": gmean(gains)}
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Idealized-PE throughput under the three mappings."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: multicast trees vs point-to-point messages (Fig. 18).

The paper motivates communication trees with two costs of naive
point-to-point fans: redundant traffic over shared links, and
serialization at the sending PE ("a single PE may be responsible for
sending a value to hundreds of tiles").  This ablation simulates the
same mapped PCG iteration with merged multicast trees (Fig. 18 right)
and with one unicast message per destination (Fig. 18 left).
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult, gmean


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Compare tree and unicast distribution on the mapped machine."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="abl_trees",
        title="Multicast trees vs point-to-point messages",
        columns=[
            "matrix", "tree_cycles", "unicast_cycles", "speedup",
            "tree_links", "unicast_links", "traffic_saving",
        ],
    )
    points = []
    for name in matrices:
        placement = session.placement(name, "azul")
        points.append({
            "name": name, "placement": placement,
            "multicast": "tree", "check": False,
        })
        points.append({
            "name": name, "placement": placement,
            "multicast": "unicast", "check": True,
        })
    sims = iter(session.simulate_placements(placements=points, jobs=jobs))
    for name in matrices:
        tree_run = next(sims)
        unicast_run = next(sims)
        result.add_row(
            matrix=name,
            tree_cycles=tree_run.total_cycles,
            unicast_cycles=unicast_run.total_cycles,
            speedup=unicast_run.total_cycles / tree_run.total_cycles,
            tree_links=tree_run.link_activations(),
            unicast_links=unicast_run.link_activations(),
            traffic_saving=(
                unicast_run.link_activations()
                / max(tree_run.link_activations(), 1)
            ),
        )
    result.extras = {
        "gmean_speedup": gmean(result.column("speedup")),
        "gmean_traffic_saving": gmean(result.column("traffic_saving")),
    }
    result.notes = (
        f"Trees save {result.extras['gmean_traffic_saving']:.2f}x link "
        f"traffic and {result.extras['gmean_speedup']:.2f}x cycles vs "
        "point-to-point fans (Sec. IV-D's two claimed benefits)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: multicast trees vs point-to-point messages (Fig. 18).

The paper motivates communication trees with two costs of naive
point-to-point fans: redundant traffic over shared links, and
serialization at the sending PE ("a single PE may be responsible for
sending a value to hundreds of tiles").  This ablation simulates the
same mapped PCG iteration with merged multicast trees (Fig. 18 right)
and with one unicast message per destination (Fig. 18 left).
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult, gmean


@register("abl_trees", title="Multicast trees vs point-to-point",
          tags=("extension", "ablation", "sim"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Compare tree and unicast distribution on the mapped machine."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="abl_trees",
            title="Multicast trees vs point-to-point messages",
            columns=[
                "matrix", "tree_cycles", "unicast_cycles", "speedup",
                "tree_links", "unicast_links", "traffic_saving",
            ],
        )
        points = []
        for name in matrices:
            placement = session.placement(name, "azul")
            points.append({
                "name": name, "placement": placement,
                "multicast": "tree", "check": False,
            })
            points.append({
                "name": name, "placement": placement,
                "multicast": "unicast", "check": True,
            })
        timings = session.simulate_placements(placements=points,
                                              jobs=jobs)
        for index, name in enumerate(matrices):
            tree_run = timings[2 * index]
            unicast_run = timings[2 * index + 1]
            result.add_row(
                matrix=name,
                tree_cycles=tree_run.total_cycles,
                unicast_cycles=unicast_run.total_cycles,
                speedup=unicast_run.total_cycles / tree_run.total_cycles,
                tree_links=tree_run.link_activations(),
                unicast_links=unicast_run.link_activations(),
                traffic_saving=(
                    unicast_run.link_activations()
                    / max(tree_run.link_activations(), 1)
                ),
            )
        result.extras = {
            "gmean_speedup": gmean(result.column("speedup")),
            "gmean_traffic_saving": gmean(
                result.column("traffic_saving")
            ),
        }
        result.notes = (
            f"Trees save {result.extras['gmean_traffic_saving']:.2f}x "
            f"link traffic and {result.extras['gmean_speedup']:.2f}x "
            "cycles vs point-to-point fans (Sec. IV-D's two claimed "
            "benefits)."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Compare tree and unicast distribution on the mapped machine."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

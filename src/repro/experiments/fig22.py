"""Fig. 22 analog: Azul runtime breakdown by kernel.

Per-matrix fraction of iteration cycles in SpMV, the two SpTRSVs, and
vector operations.  The paper's shape: SpTRSV dominates (it is
parallelism-limited while SpMV is not), and vector ops are small.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Per-kernel runtime fractions on simulated Azul."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig22",
        title="Azul PCG runtime breakdown by kernel (normalized)",
        columns=["matrix", "spmv", "sptrsv", "vector"],
    )
    sims = session.simulate_many(list(matrices), jobs=jobs)
    for name, sim in zip(matrices, sims):
        phases = sim.cycles_by_phase()
        total = sim.total_cycles
        result.add_row(
            matrix=name,
            spmv=phases["spmv"] / total,
            sptrsv=(phases["sptrsv_lower"] + phases["sptrsv_upper"]) / total,
            vector=phases["vector"] / total,
        )
    result.notes = (
        "Paper shape (Fig. 22): SpTRSV remains the dominant phase even "
        "on Azul; SpMV achieves consistently high performance."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 22 analog: Azul runtime breakdown by kernel.

Per-matrix fraction of iteration cycles in SpMV, the two SpTRSVs, and
vector operations.  The paper's shape: SpTRSV dominates (it is
parallelism-limited while SpMV is not), and vector ops are small.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


@register("fig22", title="Azul runtime breakdown by kernel",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Per-kernel runtime fractions on simulated Azul."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {name: SimPoint(name) for name in matrices}

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig22",
            title="Azul PCG runtime breakdown by kernel (normalized)",
            columns=["matrix", "spmv", "sptrsv", "vector"],
        )
        for name in matrices:
            sim = sims[name]
            phases = sim.cycles_by_phase()
            total = sim.total_cycles
            result.add_row(
                matrix=name,
                spmv=phases["spmv"] / total,
                sptrsv=(
                    phases["sptrsv_lower"] + phases["sptrsv_upper"]
                ) / total,
                vector=phases["vector"] / total,
            )
        result.notes = (
            "Paper shape (Fig. 22): SpTRSV remains the dominant phase "
            "even on Azul; SpMV achieves consistently high performance."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Per-kernel runtime fractions on simulated Azul."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

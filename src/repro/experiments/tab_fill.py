"""Direct-vs-iterative study (paper Sec. II background claims).

Quantifies, per suite matrix, the fill-in of a *direct* sparse Cholesky
factorization against the zero-fill IC(0) factor, and the one-time
factorization FLOPs against a full PCG solve's FLOPs — the reason the
paper (and this reproduction) focuses on iterative solvers.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.solvers import SolveOptions, pcg
from repro.sparse.cholesky import direct_vs_iterative_flops, \
    symbolic_cholesky


@register("tab_fill", title="Direct-solver fill-in vs iterative solve",
          tags=("extension", "table", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Fill ratios and FLOP comparison for the representative set."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(scale=scale)

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="tab_fill",
            title="Direct-solver fill-in vs iterative solve (Sec. II)",
            columns=[
                "matrix", "nnz_trilA", "nnz_chol", "fill_ratio",
                "pcg_iters", "direct_MFLOP", "pcg_MFLOP", "flop_ratio",
            ],
        )
        for name in matrices:
            prepared = session.prepare(name)
            factor = symbolic_cholesky(prepared.matrix)
            solve = pcg(
                prepared.matrix, prepared.b,
                options=SolveOptions(tol=1e-8, max_iterations=2000),
            )
            flops = direct_vs_iterative_flops(
                prepared.matrix, prepared.lower, solve.iterations
            )
            result.add_row(
                matrix=name,
                nnz_trilA=prepared.matrix.lower_triangle().nnz,
                nnz_chol=factor.nnz,
                fill_ratio=factor.fill_ratio(prepared.matrix),
                pcg_iters=solve.iterations,
                direct_MFLOP=flops["direct_factorization"] / 1e6,
                pcg_MFLOP=flops["pcg_total"] / 1e6,
                flop_ratio=(
                    flops["direct_factorization"]
                    / max(flops["pcg_total"], 1)
                ),
            )
        worst_fill = max(result.column("fill_ratio"))
        result.extras = {"max_fill_ratio": worst_fill}
        result.notes = (
            f"Cholesky factors are up to {worst_fill:.1f}x denser than "
            "tril(A) here (the paper cites up to 1000x at SuiteSparse "
            "scale); fill and factorization FLOPs grow superlinearly, "
            "which is why the paper targets iterative solvers."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Fill ratios and FLOP comparison for the representative set."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: PE thread-context count (Sec. V-A).

Fig. 27 compares single- vs multi-threaded PEs; this ablation sweeps
the number of replicated operation-generator contexts to show where the
latency-hiding benefit saturates (the hardware cost of more contexts is
more replicated state).
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean
from repro.sim import PEModel


@register("abl_threads", title="PE thread-context sweep",
          tags=("extension", "ablation", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, context_counts=(1, 2, 4, 8, 16),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep thread contexts; gmean GFLOP/s over the matrix set."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    models = {
        contexts: PEModel(
            name=f"azul_{contexts}t",
            issue_cycles=1,
            multithreaded=contexts > 1,
            thread_contexts=contexts,
        )
        for contexts in context_counts
    }
    points = {
        f"{contexts}t/{name}": SimPoint(name, pe=pe, check=False)
        for contexts, pe in models.items() for name in matrices
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="abl_threads",
            title="PE thread-context sweep: gmean PCG GFLOP/s",
            columns=["contexts", "gmean_gflops", "vs_single"],
        )
        baseline = None
        for contexts in context_counts:
            value = gmean([
                sims[f"{contexts}t/{name}"].gflops() for name in matrices
            ])
            if baseline is None:
                baseline = value
            result.add_row(
                contexts=contexts, gmean_gflops=value,
                vs_single=value / baseline,
            )
        result.extras = {"max_gain": max(result.column("vs_single"))}
        result.notes = (
            "Gains saturate once contexts cover the FMAC pipeline "
            "latency (the paper's 1.5x multithreading benefit, Fig. 27)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, context_counts=(1, 2, 4, 8, 16),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep thread contexts; gmean GFLOP/s over the matrix set."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale, context_counts=context_counts)


def main():
    print(run())


if __name__ == "__main__":
    main()

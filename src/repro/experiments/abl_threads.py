"""Ablation: PE thread-context count (Sec. V-A).

Fig. 27 compares single- vs multi-threaded PEs; this ablation sweeps
the number of replicated operation-generator contexts to show where the
latency-hiding benefit saturates (the hardware cost of more contexts is
more replicated state).
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean
from repro.sim import PEModel


def run(matrices=None, config: AzulConfig = None, scale: int = 1,
        context_counts=(1, 2, 4, 8, 16), jobs: int = 1) -> ExperimentResult:
    """Sweep thread contexts; gmean GFLOP/s over the matrix set."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="abl_threads",
        title="PE thread-context sweep: gmean PCG GFLOP/s",
        columns=["contexts", "gmean_gflops", "vs_single"],
    )
    models = [
        PEModel(
            name=f"azul_{contexts}t",
            issue_cycles=1,
            multithreaded=contexts > 1,
            thread_contexts=contexts,
        )
        for contexts in context_counts
    ]
    points = [
        SimPoint(name, pe=pe, check=False)
        for pe in models for name in matrices
    ]
    sims = iter(session.simulate_many(points, jobs=jobs))
    baseline = None
    for contexts in context_counts:
        values = [next(sims).gflops() for _ in matrices]
        value = gmean(values)
        if baseline is None:
            baseline = value
        result.add_row(
            contexts=contexts, gmean_gflops=value, vs_single=value / baseline
        )
    result.extras = {"max_gain": max(result.column("vs_single"))}
    result.notes = (
        "Gains saturate once contexts cover the FMAC pipeline latency "
        "(the paper's 1.5x multithreading benefit, Fig. 27)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: PE thread-context count (Sec. V-A).

Fig. 27 compares single- vs multi-threaded PEs; this ablation sweeps
the number of replicated operation-generator contexts to show where the
latency-hiding benefit saturates (the hardware cost of more contexts is
more replicated state).
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult, gmean
from repro.sim import AzulMachine, PEModel


def run(matrices=None, config: AzulConfig = None, scale: int = 1,
        context_counts=(1, 2, 4, 8, 16)) -> ExperimentResult:
    """Sweep thread contexts; gmean GFLOP/s over the matrix set."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="abl_threads",
        title="PE thread-context sweep: gmean PCG GFLOP/s",
        columns=["contexts", "gmean_gflops", "vs_single"],
    )
    baseline = None
    for contexts in context_counts:
        pe = PEModel(
            name=f"azul_{contexts}t",
            issue_cycles=1,
            multithreaded=contexts > 1,
            thread_contexts=contexts,
        )
        machine = AzulMachine(config, pe)
        values = []
        for name in matrices:
            prepared = session.prepare(name)
            placement = session.placement(name, "azul")
            timing = machine.simulate_pcg(
                prepared.matrix, prepared.lower, placement, prepared.b,
                check=False,
            )
            values.append(timing.gflops())
        value = gmean(values)
        if baseline is None:
            baseline = value
        result.add_row(
            contexts=contexts, gmean_gflops=value, vs_single=value / baseline
        )
    result.extras = {"max_gain": max(result.column("vs_single"))}
    result.notes = (
        "Gains saturate once contexts cover the FMAC pipeline latency "
        "(the paper's 1.5x multithreading benefit, Fig. 27)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Shared experiment infrastructure: the :class:`ExperimentSession`
facade over preparation, mapping, and simulation.

Preparing a matrix for an experiment means: build the suite analog,
color + permute it (the paper's default preprocessing), and compute the
IC(0) factor.  Azul mappings are expensive (Sec. VI-D), so placements
— and now steady-state simulation results — are cached through
:mod:`repro.cache`: a resilient, checksummed, size-capped artifact
store shared across processes.  A corrupted cache entry is quarantined
and transparently recomputed; it can never crash an experiment.

API
---
The session facade owns configuration, scale, partitioner preset, and
its caches::

    from repro.experiments.common import ExperimentSession

    session = ExperimentSession(config, scale=1, preset="speed")
    prepared = session.prepare("tmt_sym")
    placement = session.placement("tmt_sym", "azul")
    result = session.simulate("tmt_sym", mapper="azul", pe="azul")

Mapper / PE / matrix / preset names are validated eagerly against the
registries with actionable messages (including close-match hints).

The pre-1.x module-level free functions (``prepare`` /
``get_placement`` / ``simulate``) have been removed; the session
facade is the only entry point.

Observability
-------------
Every pipeline stage is instrumented through :mod:`repro.obs` (no-ops
unless enabled): ``pipeline.prepare`` / ``pipeline.place`` /
``pipeline.simulate`` timers+spans, ``compile.requests`` /
``compile.cache_hits`` / ``compile.builds`` counters plus a
``compile.build`` timer around program lowering, cache counters from
:mod:`repro.cache`, and — when tracing is enabled — simulator issue
traces bridged into the Chrome-trace export.  ``simulate(...,
trace=True)`` (default: :func:`repro.obs.tracing_enabled`) records
per-op issue logs; :meth:`ExperimentSession.export_trace` /
:meth:`export_metrics` write the artifacts.
"""

from __future__ import annotations

import difflib
import threading
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.obs as obs
from repro.cache import MISS, NPZ, PICKLE, ArtifactCache
from repro.config import AzulConfig
from repro.core import MAPPERS, Placement, get_mapper
from repro.graph import color_and_permute
from repro.hypergraph import PartitionerOptions
from repro.precond import ic0
from repro.sim import AzulMachine, PEModel, pe_model_by_name, pe_model_names
from repro.sim.machine import verify_iteration
from repro.sparse.suite import REPRESENTATIVE, get_suite_matrix, suite_names

#: Cache namespaces (subdirectories of the cache root).
PLACEMENT_NAMESPACE = "placements"
SIMULATION_NAMESPACE = "simulations"
PROGRAM_NAMESPACE = "programs"

#: Logical schema of placement / simulation cache entries.  ``v1``
#: keyed the in-memory simulation cache on the raw ``AzulConfig``
#: object and hashed keys with an unversioned layout; ``v2`` keys both
#: tiers on :meth:`AzulConfig.cache_key` so stale entries cannot alias.
#: Simulation ``v3`` admits parametric :class:`~repro.sim.PEModel`
#: instances (keyed on their full parameter tuple, so a custom model
#: can never alias a registered name) for the ablation sweeps served
#: by :meth:`ExperimentSession.simulate_many`.  Placement ``v3``: the
#: vectorized multilevel partitioner (per-branch seeded recursion,
#: sort-based matching, strategy-based FM) produces different —
#: equal-quality — assignments than the ``v2`` per-vertex
#: implementation, so ``v2`` entries must never be reused.  Simulation
#: ``v4``: :class:`~repro.sim.KernelResult` gained ``n_tiles`` (pre-v4
#: pickles lack the field) and the cache key now includes the
#: ``trace`` flag, so results carrying per-op issue logs never alias
#: untraced ones.
PLACEMENT_SCHEMA = "v3"
SIMULATION_SCHEMA = "v4"

#: Compiled-program cache entries hold the three
#: :class:`~repro.dataflow.ir.CompiledKernel` objects of one PCG
#: iteration, content-addressed on the matrix/factor arrays, the
#: placement arrays, the NoC geometry, the multicast mode, and the
#: effective lowering strategy — *not* on timing knobs (PE model,
#: SRAM latencies, frequency), so sweep points that differ only in
#: sim/engine configuration compile once and share the entry.
PROGRAM_SCHEMA = "v1"

#: Partitioner presets accepted by :func:`mapper_options`.
PRESETS = ("speed", "quality", "default")


def default_experiment_config() -> AzulConfig:
    """The scaled-down default machine: 8x8 tiles (see DESIGN.md)."""
    return AzulConfig(mesh_rows=8, mesh_cols=8)


def default_matrices() -> list:
    """The representative six-matrix subset used by most experiments."""
    return list(REPRESENTATIVE)


def full_suite_matrices() -> list:
    """All twenty small-section matrices (paper's main evaluation set)."""
    return suite_names("small")


def mapper_options(preset: str) -> PartitionerOptions:
    """Partitioner preset used for Azul mappings in experiments."""
    if preset == "speed":
        return PartitionerOptions.speed(seed=0)
    if preset == "quality":
        return PartitionerOptions.quality(seed=0)
    return PartitionerOptions(seed=0)


@dataclass(frozen=True)
class PreparedMatrix:
    """A suite matrix after the paper's standard preprocessing."""

    name: str
    scale: int
    matrix: object  # colored+permuted CSRMatrix
    lower: object   # IC(0) factor of the permuted matrix
    b: np.ndarray


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _validate_choice(kind: str, name, choices) -> None:
    choices = sorted(choices)
    if name in choices:
        return
    hint = ""
    if isinstance(name, str):
        close = difflib.get_close_matches(name, choices, n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
    raise ValueError(
        f"unknown {kind} {name!r}: valid choices are "
        f"{', '.join(repr(c) for c in choices)}{hint}"
    )


def _pe_key_part(pe):
    """Canonical cache-key component for a PE given by name or model."""
    if isinstance(pe, PEModel):
        return (
            "pe", pe.name, int(pe.issue_cycles), bool(pe.multithreaded),
            int(pe.thread_contexts),
        )
    return pe


# ----------------------------------------------------------------------
# Compiled-program cache
# ----------------------------------------------------------------------
def program_cache_key(cache: ArtifactCache, config: AzulConfig,
                      matrix, lower, placement,
                      multicast: str = "tree") -> str:
    """Content-addressed key of one compiled PCG iteration program.

    The key covers everything program *construction* reads — the CSR
    arrays of A and L, the three placement arrays, the NoC geometry
    (topology + mesh dimensions), the multicast mode, and the effective
    lowering strategy — and nothing the timing layers read, so PE/SRAM
    /frequency sweeps alias to the same compiled kernels.
    """
    from repro.dataflow.lower import default_lowering_name

    return cache.key(
        "program",
        matrix.indptr, matrix.indices, matrix.data,
        lower.indptr, lower.indices, lower.data,
        placement.a_tile, placement.l_tile, placement.vec_tile,
        config.topology, config.mesh_rows, config.mesh_cols,
        multicast, default_lowering_name(), PROGRAM_SCHEMA,
    )


def compile_pcg_program(machine: AzulMachine, matrix, lower, placement,
                        *, multicast: str = "tree",
                        cache: Optional[ArtifactCache] = None,
                        use_cache: bool = True, label: str = ""):
    """Compile — or fetch from the ``programs`` cache — one iteration.

    The cache entry stores only the three
    :class:`~repro.dataflow.ir.CompiledKernel` objects; the analytic
    :class:`~repro.dataflow.vector_ops.VectorPhaseModel` is rebuilt
    from the live machine config on every hit (it is cheap and *does*
    depend on timing knobs).  Instrumented through :mod:`repro.obs`:
    ``compile.requests`` / ``compile.cache_hits`` / ``compile.builds``
    counters and a ``compile.build`` timer around actual lowering.
    """
    from repro.dataflow.program import PCGIterationProgram
    from repro.dataflow.vector_ops import VectorPhaseModel
    from repro.errors import SimulationError

    if placement.n_tiles != machine.config.num_tiles:
        raise SimulationError(
            f"placement targets {placement.n_tiles} tiles but the "
            f"machine has {machine.config.num_tiles}"
        )
    obs.counter("compile.requests")
    key = None
    if use_cache and cache is not None:
        key = program_cache_key(cache, machine.config, matrix, lower,
                                placement, multicast)
        kernels = cache.get(PROGRAM_NAMESPACE, key, PICKLE)
        if kernels is not MISS:
            obs.counter("compile.cache_hits")
            spmv, forward, backward = kernels
            vector_phase = VectorPhaseModel(
                vec_tile=placement.vec_tile, torus=machine.torus,
                config=machine.config,
            )
            return PCGIterationProgram(
                spmv=spmv, sptrsv_lower=forward, sptrsv_upper=backward,
                vector_phase=vector_phase, n=int(matrix.n_rows),
            )
    obs.counter("compile.builds")
    with obs.timer("compile.build", matrix=label, multicast=multicast):
        program = machine.compile(matrix, lower, placement,
                                  multicast=multicast)
    if key is not None:
        cache.put(
            PROGRAM_NAMESPACE, key,
            (program.spmv, program.sptrsv_lower, program.sptrsv_upper),
            PICKLE,
        )
    return program


# ----------------------------------------------------------------------
# Shared preparation memo.  PreparedMatrix is a pure function of
# (name, scale) — independent of machine config — so one process-wide
# memo serves every session and preserves the historical identity
# guarantee (prepare(x) is prepare(x)).
# ----------------------------------------------------------------------
_PREPARED: dict = {}
_PREPARED_LOCK = threading.Lock()


def clear_prepared_matrices() -> None:
    """Drop the process-wide prepared-matrix memo (tests/memory)."""
    with _PREPARED_LOCK:
        _PREPARED.clear()


# ----------------------------------------------------------------------
# The session facade
# ----------------------------------------------------------------------
class ExperimentSession:
    """One experiment context: machine config + scale + preset + caches.

    Parameters
    ----------
    config:
        Machine configuration (default: the 8x8 experiment machine).
    scale:
        Matrix scale factor passed to the suite generators.
    preset:
        Partitioner preset for Azul mappings: ``"speed"``,
        ``"quality"``, or ``"default"``.
    cache:
        An :class:`repro.cache.ArtifactCache`; by default the
        process-wide cache for the current ``REPRO_CACHE_*``
        environment, so sessions share disk *and* memory tiers.
    use_cache:
        ``False`` bypasses the artifact cache entirely (prepared
        matrices are still memoized in process).
    """

    def __init__(self, config: Optional[AzulConfig] = None, *,
                 scale: int = 1, preset: str = "speed",
                 cache: Optional[ArtifactCache] = None,
                 use_cache: bool = True):
        config = config if config is not None else default_experiment_config()
        if not isinstance(config, AzulConfig):
            raise TypeError(
                f"config must be an AzulConfig, got {type(config).__name__}"
            )
        _validate_choice("preset", preset, PRESETS)
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.config = config
        self.scale = int(scale)
        self.preset = preset
        self.use_cache = bool(use_cache)
        self.cache = cache if cache is not None else ArtifactCache.default()
        #: Simulation keys whose issue traces were already bridged into
        #: the Chrome-trace export (cache hits must not duplicate them).
        self._bridged_traces: set = set()

    # -- preparation ---------------------------------------------------
    def prepare(self, name: str,
                scale: Optional[int] = None) -> PreparedMatrix:
        """Build, color+permute, and factor one suite matrix (memoized).

        Repeated calls return the identical object.
        """
        _validate_choice("matrix", name, suite_names("all"))
        scale = self.scale if scale is None else int(scale)
        key = (name, scale)
        with _PREPARED_LOCK:
            prepared = _PREPARED.get(key)
        if prepared is not None:
            return prepared
        with obs.timer("pipeline.prepare", matrix=name, scale=scale):
            matrix, b = get_suite_matrix(name, scale=scale)
            permuted, permuted_b, _ = color_and_permute(matrix, b)
            prepared = PreparedMatrix(
                name=name, scale=scale, matrix=permuted,
                lower=ic0(permuted), b=permuted_b,
            )
        with _PREPARED_LOCK:
            return _PREPARED.setdefault(key, prepared)

    # -- placement -----------------------------------------------------
    def placement(self, name: str, mapper: str,
                  n_tiles: Optional[int] = None, *,
                  scale: Optional[int] = None,
                  preset: Optional[str] = None,
                  use_cache: Optional[bool] = None,
                  jobs: Optional[int] = None) -> Placement:
        """Map one prepared matrix with one strategy, with caching.

        Azul mappings additionally record their mapping wall-clock time
        in ``placement_seconds`` (used by the Sec. VI-D cost
        comparison).  ``jobs`` bounds the partitioner's worker pool for
        independent sub-bisections; placements are bit-identical
        regardless, so ``jobs`` is *not* part of the cache key.
        """
        _validate_choice("mapper", mapper, MAPPERS)
        n_tiles = self.config.num_tiles if n_tiles is None else int(n_tiles)
        scale = self.scale if scale is None else int(scale)
        preset = self.preset if preset is None else preset
        _validate_choice("preset", preset, PRESETS)
        use_cache = self.use_cache if use_cache is None else bool(use_cache)

        key = self.cache.key(
            "placement", name, scale, mapper, n_tiles, preset,
            PLACEMENT_SCHEMA,
        )
        if use_cache:
            arrays = self.cache.get(PLACEMENT_NAMESPACE, key, NPZ)
            if arrays is not MISS:
                return self._placement_from_arrays(arrays, n_tiles)

        prepared = self.prepare(name, scale)
        mapper_fn = get_mapper(mapper)
        start = time.perf_counter()
        with obs.timer("pipeline.place", matrix=name, mapper=mapper,
                       n_tiles=n_tiles):
            if mapper == "azul":
                placement = mapper_fn(
                    prepared.matrix, prepared.lower, n_tiles,
                    options=mapper_options(preset), jobs=jobs,
                )
            else:
                placement = mapper_fn(prepared.matrix, prepared.lower,
                                      n_tiles)
        seconds = time.perf_counter() - start
        placement.placement_seconds = seconds
        if use_cache:
            self.cache.put(
                PLACEMENT_NAMESPACE, key,
                {
                    "a_tile": placement.a_tile,
                    "l_tile": placement.l_tile,
                    "vec_tile": placement.vec_tile,
                    "mapper": placement.mapper,
                    "seconds": seconds,
                },
                NPZ,
            )
        return placement

    @staticmethod
    def _placement_from_arrays(arrays: dict, n_tiles: int) -> Placement:
        placement = Placement(
            n_tiles=n_tiles,
            a_tile=np.asarray(arrays["a_tile"]),
            l_tile=np.asarray(arrays["l_tile"]),
            vec_tile=np.asarray(arrays["vec_tile"]),
            mapper=str(arrays["mapper"]),
        )
        placement.placement_seconds = float(arrays["seconds"])
        return placement

    # -- compilation ---------------------------------------------------
    def compiled_program(self, name: str, mapper: str = "azul", *,
                         scale: Optional[int] = None,
                         preset: Optional[str] = None,
                         multicast: str = "tree",
                         use_cache: Optional[bool] = None):
        """The compiled PCG iteration program for one mapped matrix.

        Programs are content-addressed in the ``programs`` cache
        namespace (see :func:`program_cache_key`): two sessions — or
        two sweep points — whose matrix, placement, geometry, and
        multicast mode agree share one compilation, whatever their
        timing configuration.
        """
        _validate_choice("mapper", mapper, MAPPERS)
        scale = self.scale if scale is None else int(scale)
        preset = self.preset if preset is None else preset
        _validate_choice("preset", preset, PRESETS)
        use_cache = self.use_cache if use_cache is None else bool(use_cache)
        prepared = self.prepare(name, scale)
        placement = self.placement(
            name, mapper, self.config.num_tiles,
            scale=scale, preset=preset, use_cache=use_cache,
        )
        machine = AzulMachine(self.config)
        return compile_pcg_program(
            machine, prepared.matrix, prepared.lower, placement,
            multicast=multicast, cache=self.cache, use_cache=use_cache,
            label=name,
        )

    # -- simulation ----------------------------------------------------
    def simulation_key(self, name: str, mapper: str = "azul",
                       pe="azul", *, scale: Optional[int] = None,
                       preset: Optional[str] = None,
                       check: bool = True,
                       config: Optional[AzulConfig] = None,
                       trace: bool = False) -> str:
        """The artifact-cache key one :meth:`simulate` call resolves to.

        Exposed so sweep executors (:mod:`repro.parallel`) can
        short-circuit cache hits and deduplicate in-flight points
        before spawning any worker.  ``trace`` is part of the key:
        traced results carry per-op issue logs and must never alias
        untraced entries.
        """
        scale = self.scale if scale is None else int(scale)
        preset = self.preset if preset is None else preset
        config = self.config if config is None else config
        return self.cache.key(
            "simulate", name, scale, mapper, _pe_key_part(pe), preset,
            bool(check), bool(trace), config.cache_key(), SIMULATION_SCHEMA,
        )

    def simulate(self, name: str, mapper: str = "azul", pe="azul",
                 *, scale: Optional[int] = None, preset: Optional[str] = None,
                 check: bool = True, use_cache: Optional[bool] = None,
                 trace: Optional[bool] = None):
        """Simulate one steady-state PCG iteration (cached).

        Results live in the in-memory tier (identity-preserving within
        a process) backed by a persistent on-disk tier keyed on
        :meth:`AzulConfig.cache_key`, so repeated sweeps across
        processes skip re-simulation entirely.  ``pe`` accepts a
        registered model name or a :class:`~repro.sim.PEModel`
        instance (ablation sweeps construct synthetic PEs).

        ``trace`` records per-op issue logs in the kernel results and
        bridges them into the Chrome-trace export (see
        :mod:`repro.obs`); it defaults to
        :func:`repro.obs.tracing_enabled`.
        """
        _validate_choice("mapper", mapper, MAPPERS)
        if not isinstance(pe, PEModel):
            _validate_choice("pe", pe, pe_model_names())
        scale = self.scale if scale is None else int(scale)
        preset = self.preset if preset is None else preset
        _validate_choice("preset", preset, PRESETS)
        use_cache = self.use_cache if use_cache is None else bool(use_cache)
        trace = obs.tracing_enabled() if trace is None else bool(trace)

        key = self.simulation_key(
            name, mapper, pe, scale=scale, preset=preset, check=check,
            trace=trace,
        )
        if use_cache:
            cached = self.cache.get(SIMULATION_NAMESPACE, key, PICKLE)
            if cached is not MISS:
                if trace:
                    self._bridge_trace(key, f"{name}/{mapper}", cached)
                return cached

        prepared = self.prepare(name, scale)
        placement = self.placement(
            name, mapper, self.config.num_tiles,
            scale=scale, preset=preset, use_cache=use_cache,
        )
        model = pe if isinstance(pe, PEModel) else pe_model_by_name(pe)
        machine = AzulMachine(self.config, model)
        program = compile_pcg_program(
            machine, prepared.matrix, prepared.lower, placement,
            cache=self.cache, use_cache=use_cache, label=name,
        )
        with obs.timer("pipeline.simulate", matrix=name, mapper=mapper,
                       pe=str(getattr(pe, "name", pe)), trace=trace):
            result = machine.simulate_iteration(
                program, p=prepared.b, r=prepared.b,
                record_issue_trace=trace,
            )
        if check:
            verify_iteration(result, prepared.matrix, prepared.lower,
                             prepared.b)
        if use_cache:
            self.cache.put(SIMULATION_NAMESPACE, key, result, PICKLE)
        if trace:
            self._bridge_trace(key, f"{name}/{mapper}", result)
        return result

    def simulate_many(self, points, jobs: Optional[int] = None, *,
                      use_cache: Optional[bool] = None,
                      stats: Optional[dict] = None) -> list:
        """Simulate many sweep points, fanned out across processes.

        A drop-in replacement for a serial loop of :meth:`simulate`
        calls: results come back in point order and are identical to a
        ``jobs=1`` run.  Cache hits short-circuit before any worker is
        spawned, duplicate points are computed once, and worker
        failures degrade gracefully to in-process computation.  See
        :func:`repro.parallel.simulate_many`.
        """
        from repro.parallel import simulate_many as _simulate_many

        return _simulate_many(
            self, points, jobs, use_cache=use_cache, stats=stats,
        )

    def simulate_placements(self, name: Optional[str] = None,
                            placements=(), *,
                            pe="azul", check: bool = False,
                            multicast: str = "tree",
                            scale: Optional[int] = None,
                            jobs: Optional[int] = None,
                            use_cache: Optional[bool] = None,
                            stats: Optional[dict] = None) -> list:
        """Simulate explicit placements (usually one matrix).

        Placement-content-keyed variant of :meth:`simulate_many` for
        the ablations that sweep the mapper itself (seeds, partitioner
        options, multicast modes).  Entries may be ``Placement``
        objects or per-point override dicts.  See
        :func:`repro.parallel.simulate_placements`.
        """
        from repro.parallel import simulate_placements as _simulate_placements

        return _simulate_placements(
            self, name, placements, pe=pe, check=check,
            multicast=multicast, scale=scale, jobs=jobs,
            use_cache=use_cache, stats=stats,
        )

    # -- observability -------------------------------------------------
    def cache_stats(self):
        """Live counters of this session's artifact cache."""
        return self.cache.stats

    def _bridge_trace(self, key: str, label: str, result) -> None:
        """Bridge one simulation's issue logs into the trace export.

        Each kernel result becomes its own Chrome-trace process
        (timestamps are machine cycles, not wall-clock, so they must
        not share the pipeline timeline).  Keyed on the simulation
        cache key so cache hits and sweep duplicates bridge once.
        """
        if not obs.tracing_enabled() or key in self._bridged_traces:
            return
        from repro.sim.trace import chrome_trace_events

        kernel_results = getattr(result, "kernel_results", None)
        if kernel_results is None:
            kernel_results = [result]
        events = []
        for kernel in kernel_results:
            if not getattr(kernel, "issue_trace", None):
                continue
            pid = obs.allocate_pid(f"{label}:{kernel.name} (cycles)")
            events.extend(chrome_trace_events(kernel, pid))
        if events:
            obs.add_trace_events(events)
            self._bridged_traces.add(key)

    def _overrides_extra(self) -> dict:
        """Environment overrides + cache stats block for exports."""
        from repro.config import overrides

        return {
            "overrides": overrides(),
            "cache": self.cache.stats.as_dict(),
        }

    def export_metrics(self, path) -> str:
        """Write the metrics-registry snapshot (plus effective env
        overrides and this session's cache counters) as JSON."""
        return obs.write_metrics(path, extra=self._overrides_extra())

    def export_trace(self, path) -> str:
        """Write the collected spans + bridged simulator issue events
        as a Chrome-trace JSON (loadable at ui.perfetto.dev)."""
        return obs.write_chrome_trace(path, metadata=self._overrides_extra())

    def __repr__(self):
        return (
            f"ExperimentSession(config={self.config.mesh_rows}x"
            f"{self.config.mesh_cols}, scale={self.scale}, "
            f"preset={self.preset!r}, cache={str(self.cache.root)!r})"
        )

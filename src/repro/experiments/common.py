"""Shared experiment infrastructure: preparation and caching.

Preparing a matrix for an experiment means: build the suite analog,
color + permute it (the paper's default preprocessing), and compute the
IC(0) factor.  Azul mappings are expensive (Sec. VI-D), so placements
are cached on disk keyed by (matrix, scale, mapper, tiles, preset) —
exactly how a user of the real system would amortize mapping cost
across runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.config import AzulConfig
from repro.core import Placement, get_mapper
from repro.graph import color_and_permute
from repro.hypergraph import PartitionerOptions
from repro.precond import ic0
from repro.sim import AzulMachine, pe_model_by_name
from repro.sparse.generators import make_rhs
from repro.sparse.suite import REPRESENTATIVE, get_suite_matrix, suite_names


def default_experiment_config() -> AzulConfig:
    """The scaled-down default machine: 8x8 tiles (see DESIGN.md)."""
    return AzulConfig(mesh_rows=8, mesh_cols=8)


def default_matrices() -> list:
    """The representative six-matrix subset used by most experiments."""
    return list(REPRESENTATIVE)


def full_suite_matrices() -> list:
    """All twenty small-section matrices (paper's main evaluation set)."""
    return suite_names("small")


@dataclass(frozen=True)
class PreparedMatrix:
    """A suite matrix after the paper's standard preprocessing."""

    name: str
    scale: int
    matrix: object  # colored+permuted CSRMatrix
    lower: object   # IC(0) factor of the permuted matrix
    b: np.ndarray


@lru_cache(maxsize=64)
def prepare(name: str, scale: int = 1) -> PreparedMatrix:
    """Build, color+permute, and factor one suite matrix (cached)."""
    matrix, b = get_suite_matrix(name, scale=scale)
    permuted, permuted_b, _ = color_and_permute(matrix, b)
    lower = ic0(permuted)
    return PreparedMatrix(
        name=name, scale=scale, matrix=permuted, lower=lower, b=permuted_b
    )


# ----------------------------------------------------------------------
# Placement cache
# ----------------------------------------------------------------------
def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "placements"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _placement_key(name, scale, mapper, n_tiles, preset) -> str:
    raw = f"{name}:{scale}:{mapper}:{n_tiles}:{preset}:v1"
    return hashlib.sha1(raw.encode()).hexdigest()[:20]


def mapper_options(preset: str) -> PartitionerOptions:
    """Partitioner preset used for Azul mappings in experiments."""
    if preset == "speed":
        return PartitionerOptions.speed(seed=0)
    if preset == "quality":
        return PartitionerOptions.quality(seed=0)
    return PartitionerOptions(seed=0)


def get_placement(name: str, mapper: str, n_tiles: int, scale: int = 1,
                  preset: str = "speed", use_cache: bool = True) -> Placement:
    """Map one prepared matrix with one strategy, with disk caching.

    Returns the placement; Azul mappings additionally record their
    mapping wall-clock time in ``placement_seconds`` (used by the
    Sec. VI-D cost comparison).
    """
    prepared = prepare(name, scale)
    cache_file = _cache_dir() / (
        _placement_key(name, scale, mapper, n_tiles, preset) + ".npz"
    )
    if use_cache and cache_file.exists():
        data = np.load(cache_file)
        placement = Placement(
            n_tiles=n_tiles,
            a_tile=data["a_tile"],
            l_tile=data["l_tile"],
            vec_tile=data["vec_tile"],
            mapper=str(data["mapper"]),
        )
        placement.placement_seconds = float(data["seconds"])
        return placement

    mapper_fn = get_mapper(mapper)
    start = time.perf_counter()
    if mapper == "azul":
        placement = mapper_fn(
            prepared.matrix, prepared.lower, n_tiles,
            options=mapper_options(preset),
        )
    else:
        placement = mapper_fn(prepared.matrix, prepared.lower, n_tiles)
    seconds = time.perf_counter() - start
    placement.placement_seconds = seconds
    if use_cache:
        np.savez_compressed(
            cache_file,
            a_tile=placement.a_tile,
            l_tile=placement.l_tile,
            vec_tile=placement.vec_tile,
            mapper=placement.mapper,
            seconds=seconds,
        )
    return placement


# ----------------------------------------------------------------------
# Simulation cache (in-memory, keyed by full configuration)
# ----------------------------------------------------------------------
_SIM_CACHE = {}


def simulate(name: str, mapper: str = "azul", pe: str = "azul",
             config: AzulConfig = None, scale: int = 1,
             preset: str = "speed", check: bool = True):
    """Simulate one steady-state PCG iteration (cached per process)."""
    config = config or default_experiment_config()
    key = (name, mapper, pe, scale, preset, config)
    if key in _SIM_CACHE:
        return _SIM_CACHE[key]
    prepared = prepare(name, scale)
    placement = get_placement(
        name, mapper, config.num_tiles, scale=scale, preset=preset
    )
    machine = AzulMachine(config, pe_model_by_name(pe))
    result = machine.simulate_pcg(
        prepared.matrix, prepared.lower, placement, prepared.b, check=check
    )
    _SIM_CACHE[key] = result
    return result

"""Ablation: incoming-message buffer size (Sec. V-A, last paragraph).

"Each tile contains a small register-based buffer for storing incoming
messages.  To avoid deadlocks, if the buffer becomes full, additional
incoming messages are spilled to the Data SRAM."  This ablation sweeps
the buffer size, reporting spill counts and the cycle cost of the
spill round-trips.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


def run(matrix: str = "consph", config: AzulConfig = None, scale: int = 1,
        buffer_sizes=(2, 4, 16, 64, 256), jobs: int = 1) -> ExperimentResult:
    """Sweep the per-tile message-buffer capacity on one matrix."""
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="abl_buffer",
        title=f"Message-buffer size sweep on {matrix}",
        columns=["buffer_entries", "spills", "cycles", "slowdown"],
    )
    sizes = list(reversed(sorted(buffer_sizes)))
    points = [
        SimPoint(matrix, config=config.with_(msg_buffer_entries=entries),
                 check=False)
        for entries in sizes
    ]
    sims = session.simulate_many(points, jobs=jobs)
    baseline = None
    for entries, timing in zip(sizes, sims):
        spills = sum(k.spills for k in timing.kernel_results)
        if baseline is None:
            baseline = timing.total_cycles
        result.add_row(
            buffer_entries=entries,
            spills=spills,
            cycles=timing.total_cycles,
            slowdown=timing.total_cycles / baseline,
        )
    result.extras = {
        "max_slowdown": max(result.column("slowdown")),
        "max_spills": max(result.column("spills")),
    }
    result.notes = (
        "Tiny buffers spill heavily to the Data SRAM but degrade "
        "gracefully (no deadlock) — the paper's overflow design point."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: incoming-message buffer size (Sec. V-A, last paragraph).

"Each tile contains a small register-based buffer for storing incoming
messages.  To avoid deadlocks, if the buffer becomes full, additional
incoming messages are spilled to the Data SRAM."  This ablation sweeps
the buffer size, reporting spill counts and the cycle cost of the
spill round-trips.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


@register("abl_buffer", title="Incoming-message buffer size sweep",
          tags=("extension", "ablation", "sim", "sweep"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, buffer_sizes=(2, 4, 16, 64, 256),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep the per-tile message-buffer capacity on one matrix."""
    session = ExperimentSession(config, scale=scale)
    config = session.config

    sizes = list(reversed(sorted(buffer_sizes)))
    points = {
        f"buf{entries}": SimPoint(
            matrix, config=config.with_(msg_buffer_entries=entries),
            check=False,
        )
        for entries in sizes
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="abl_buffer",
            title=f"Message-buffer size sweep on {matrix}",
            columns=["buffer_entries", "spills", "cycles", "slowdown"],
        )
        baseline = None
        for entries in sizes:
            timing = sims[f"buf{entries}"]
            spills = sum(k.spills for k in timing.kernel_results)
            if baseline is None:
                baseline = timing.total_cycles
            result.add_row(
                buffer_entries=entries,
                spills=spills,
                cycles=timing.total_cycles,
                slowdown=timing.total_cycles / baseline,
            )
        result.extras = {
            "max_slowdown": max(result.column("slowdown")),
            "max_spills": max(result.column("spills")),
        }
        result.notes = (
            "Tiny buffers spill heavily to the Data SRAM but degrade "
            "gracefully (no deadlock) — the paper's overflow design "
            "point."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, buffer_sizes=(2, 4, 16, 64, 256),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the per-tile message-buffer capacity on one matrix."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale,
                    buffer_sizes=buffer_sizes)


def main():
    print(run())


if __name__ == "__main__":
    main()

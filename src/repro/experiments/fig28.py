"""Fig. 28 analog: scaling Azul up.

The paper scales from 64x64 to 128x128 and 256x256 tiles, fitting
progressively larger matrices: matrices that fit the small machine
mostly speed up >2x per 4x-tiles step until parallelism-limited; the
largest matrices reach very high absolute throughput on the largest
machine.  Here the machine scales 8x8 -> 16x16 -> 32x32 with matrices
scaled alongside.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, \
    default_experiment_config
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult

#: (matrix, matrix-scale) pairs per machine; mirrors the paper's mix of
#: "fits the small machine" and "needs the big machine" inputs.
DEFAULT_CASES = (
    ("nd12k", 1),        # parallelism-limited: should NOT scale
    ("thermal2", 1),     # high parallelism: should scale
    ("apache2", 1),
    ("af_shell8", 1),    # medium-section matrix
)


@register("fig28", title="Scaling Azul up",
          tags=("paper", "figure", "sim", "sweep"))
def spec(cases=DEFAULT_CASES, config: Optional[AzulConfig] = None,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Throughput across machine sizes (grid side doubling)."""
    config = config or default_experiment_config()
    machines = [
        ("1x", config),
        ("4x tiles", config.scaled(2)),
    ]
    session = ExperimentSession(config)

    points = {
        f"{name}/{label}": SimPoint(
            name, scale=case_scale, config=machine_config
        )
        for name, case_scale in cases
        for label, machine_config in machines
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig28",
            title="Scaling up: PCG GFLOP/s per machine size",
            columns=["matrix"] + [label for label, _ in machines]
            + ["scaling_4x"],
        )
        for name, _ in cases:
            row = {"matrix": name}
            values = []
            for label, _ in machines:
                row[label] = sims[f"{name}/{label}"].gflops()
                values.append(row[label])
            row["scaling_4x"] = values[-1] / values[0]
            result.add_row(**row)
        result.notes = (
            "Paper shape (Fig. 28): high-parallelism matrices gain >2x "
            "per 4x-tile step; parallelism-limited matrices (nd12k) do "
            "not improve."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(cases=DEFAULT_CASES, config: Optional[AzulConfig] = None,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Throughput across machine sizes (grid side doubling)."""
    return spec.run(jobs=jobs, cases=cases, config=config)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Declarative experiment specs and the process-wide spec registry.

An experiment used to be an ad-hoc ``run()`` function that built
``SimPoint`` lists, fanned them out, and zipped results back by
positional index (``sims[2 * index]``).  That shape made every module
re-implement the same loop and hid the sweep structure from the
runner, so nothing above a single experiment could share work.

A spec splits one experiment into three declarative parts:

``points``
    A *cheap* builder product: a ``{key: SimPoint}`` mapping naming
    every steady-state simulation the experiment needs.  Keys are
    human-readable (``"consph/azul"``) and local to the experiment;
    the executor resolves each point to its content-addressed
    simulation cache key, so identical points are deduplicated
    *globally* across every experiment in a run.
``reduce``
    ``reduce(sims) -> ExperimentResult`` where ``sims`` maps each
    point key to its simulation result.  Everything that is not a
    standard sweep point — analytic models, traffic analysis,
    placement-keyed sweeps — lives here.
``run()`` (module shim)
    Each module keeps a thin ``run(...)`` wrapper delegating to
    :meth:`ExperimentSpec.run`, so historical imports and tests keep
    working unchanged.

Builders MUST be cheap: no ``prepare``/``placement``/``simulate``
calls — the executor builds every selected experiment's plan up front
to compute the global sweep (and the ``--plan`` dry-run must never
simulate anything).  Expensive non-point work belongs in ``reduce``.

Every builder declares a ``jobs`` keyword parameter — parallelism is
a uniform part of the spec contract (this replaced the old
``inspect.signature``-based forwarding hack in the runner).  The
executor owns the fan-out of ``points``; ``jobs`` reaches the builder
so ``reduce`` closures can bound their *internal* pools
(placement-keyed sweeps, the partitioner).

Registration::

    from repro.experiments.spec import ExperimentPlan, register

    @register("fig09", title="Dalorex PCG throughput",
              tags=("paper", "figure", "sim", "sweep"))
    def spec(matrices=None, config=None, scale=1, jobs=None):
        session = ExperimentSession(config, scale=scale)
        points = {name: SimPoint(name, mapper="round_robin",
                                 pe="dalorex")
                  for name in matrices or default_matrices()}

        def reduce(sims):
            ...
            return result

        return ExperimentPlan(session=session, points=points,
                              reduce=reduce)

The decorator returns the :class:`ExperimentSpec` (conventionally
bound to the module attribute ``spec``) and records it in the
registry keyed by experiment id.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.perf import ExperimentResult

__all__ = [
    "ExperimentPlan",
    "ExperimentSpec",
    "register",
    "registered_specs",
    "get_registered",
    "unregister",
]

#: ``reduce`` signature: keyed simulation results -> rendered result.
Reducer = Callable[[Mapping[str, Any]], ExperimentResult]


@dataclass
class ExperimentPlan:
    """One built experiment: a session, keyed points, and a reducer.

    Attributes
    ----------
    session:
        The :class:`~repro.experiments.common.ExperimentSession`
        providing defaults (config / scale / preset) for the points
        and the artifact cache everything is keyed through.
    points:
        ``{point_key: SimPoint}``; may be empty for analytic
        experiments.  Point keys are experiment-local labels; the
        executor maps them to global simulation cache keys.
    reduce:
        Turns ``{point_key: simulation result}`` into the final
        :class:`~repro.perf.ExperimentResult`.
    """

    session: Any
    reduce: Reducer
    points: Dict[str, Any] = field(default_factory=dict)
    #: Back-reference filled in by :meth:`ExperimentSpec.plan`.
    spec: Optional["ExperimentSpec"] = None

    def resolve(self, jobs: Optional[int] = None, *,
                stats: Optional[dict] = None) -> Dict[str, Any]:
        """Simulate this plan's own points (single-experiment path).

        The multi-experiment executor does NOT use this — it merges
        points across plans first; this is the ``spec.run()`` /
        ``module.run()`` shim path, and both produce identical
        results because points resolve to identical cache keys.
        """
        if not self.points:
            if stats is not None:
                stats.update(points=0, unique=0)
            return {}
        from repro.parallel import simulate_keyed

        return simulate_keyed(self.session, self.points, jobs,
                              stats=stats)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: identity, metadata, and plan builder."""

    id: str
    title: str
    tags: Tuple[str, ...]
    builder: Callable[..., ExperimentPlan]
    #: Keyword parameters the builder accepts (overrides vocabulary).
    params: frozenset
    #: Defining module (``repro.experiments.fig09``).
    module: str

    def accepts(self, name: str) -> bool:
        """Whether the builder takes an override named ``name``."""
        return name in self.params

    def plan(self, *, jobs: Optional[int] = None,
             **overrides: Any) -> ExperimentPlan:
        """Build this experiment's plan (cheap; never simulates)."""
        unknown = sorted(set(overrides) - self.params)
        if unknown:
            raise TypeError(
                f"experiment {self.id!r} does not accept override(s) "
                f"{', '.join(unknown)}; its builder takes "
                f"{', '.join(sorted(self.params))}"
            )
        plan = self.builder(jobs=jobs, **overrides)
        if not isinstance(plan, ExperimentPlan):
            raise TypeError(
                f"builder of experiment {self.id!r} returned "
                f"{type(plan).__name__}, expected ExperimentPlan"
            )
        plan.spec = self
        return plan

    def run(self, *, jobs: Optional[int] = None,
            **overrides: Any) -> ExperimentResult:
        """Plan, simulate the points, reduce — one experiment alone."""
        plan = self.plan(jobs=jobs, **overrides)
        sims = plan.resolve(jobs)
        return plan.reduce(sims)

    def describe(self) -> str:
        """One ``--list`` line: id, title, and tags."""
        tags = ",".join(self.tags)
        return f"{self.id:18s} {self.title}  [{tags}]"


#: Experiment id -> spec, populated by importing experiment modules.
_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(experiment_id: str, *, title: str,
             tags: Tuple[str, ...] = ()) -> Callable[
                 [Callable[..., ExperimentPlan]], ExperimentSpec]:
    """Class decorator-factory registering a plan builder as a spec.

    The builder must declare a ``jobs`` keyword parameter (uniform
    parallelism contract).  Returns the :class:`ExperimentSpec`, so
    the decorated name *becomes* the spec object.
    """

    def decorate(builder: Callable[..., ExperimentPlan]) -> ExperimentSpec:
        parameters = inspect.signature(builder).parameters
        if "jobs" not in parameters:
            raise TypeError(
                f"experiment builder for {experiment_id!r} must declare "
                "a 'jobs' parameter (specs declare parallelism "
                "uniformly)"
            )
        previous = _REGISTRY.get(experiment_id)
        if previous is not None and previous.module != builder.__module__:
            raise ValueError(
                f"experiment id {experiment_id!r} already registered "
                f"by {previous.module}"
            )
        spec = ExperimentSpec(
            id=experiment_id,
            title=title,
            tags=tuple(tags),
            builder=builder,
            params=frozenset(parameters),
            module=builder.__module__,
        )
        _REGISTRY[experiment_id] = spec
        return spec

    return decorate


def registered_specs() -> Dict[str, ExperimentSpec]:
    """Snapshot of the registry (id -> spec) at this point in time.

    Only experiments whose modules have been imported appear; use
    :func:`repro.experiments.runner.load_specs` to import-and-list
    the full set.
    """
    return dict(_REGISTRY)


def get_registered(experiment_id: str) -> ExperimentSpec:
    """The registered spec for ``experiment_id`` (KeyError if absent)."""
    return _REGISTRY[experiment_id]


def unregister(experiment_id: str) -> None:
    """Remove one registration (tests registering synthetic specs)."""
    _REGISTRY.pop(experiment_id, None)

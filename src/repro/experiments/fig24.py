"""Fig. 24 analog: power breakdown by component.

Per-matrix power while running PCG steady state, split into SRAM,
compute, NoC, and leakage, from simulation activity factors.  The
paper's shape: SRAM dominates (the machine is an SRAM array with
attached arithmetic), total 210 W average at 4096 tiles.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import power_report
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


@register("fig24", title="Power breakdown by component",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Estimate power for each matrix from simulated activity."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {name: SimPoint(name) for name in matrices}

    def reduce(sims) -> ExperimentResult:
        config = session.config
        result = ExperimentResult(
            experiment="fig24",
            title="Azul power by component (watts)",
            columns=["matrix", "sram", "compute", "noc", "leakage",
                     "total"],
        )
        for name in matrices:
            report = power_report(sims[name], config)
            result.add_row(matrix=name, **report.as_dict())
        result.notes = (
            "Paper shape (Fig. 24): SRAM dominates dynamic power; the "
            "simulated machine has 64x fewer tiles, so absolute watts "
            "are proportionally lower than the paper's 210 W average."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Estimate power for each matrix from simulated activity."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 24 analog: power breakdown by component.

Per-matrix power while running PCG steady state, split into SRAM,
compute, NoC, and leakage, from simulation activity factors.  The
paper's shape: SRAM dominates (the machine is an SRAM array with
attached arithmetic), total 210 W average at 4096 tiles.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.models import power_report
from repro.perf import ExperimentResult


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Estimate power for each matrix from simulated activity."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig24",
        title="Azul power by component (watts)",
        columns=["matrix", "sram", "compute", "noc", "leakage", "total"],
    )
    sims = session.simulate_many(list(matrices), jobs=jobs)
    for name, sim in zip(matrices, sims):
        report = power_report(sim, config)
        result.add_row(matrix=name, **report.as_dict())
    result.notes = (
        "Paper shape (Fig. 24): SRAM dominates dynamic power; the "
        "simulated machine has 64x fewer tiles, so absolute watts are "
        "proportionally lower than the paper's 210 W average."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 7 analog: GPU speedup from graph coloring.

The paper shows coloring+permutation speeds up GPU PCG by at least 2x
(often much more) by collapsing SpTRSV dependence levels.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.graph import color_and_permute
from repro.models import GPUModel
from repro.perf import ExperimentResult
from repro.precond import ic0
from repro.sparse.suite import get_suite_matrix


@register("fig07", title="GPU speedup from graph coloring",
          tags=("paper", "figure", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """GPU iteration time: original vs colored+permuted inputs."""
    matrices = list(matrices or default_matrices())

    def reduce(sims) -> ExperimentResult:
        model = GPUModel()
        result = ExperimentResult(
            experiment="fig07",
            title="GPU runtime, original vs colored+permuted (normalized)",
            columns=["matrix", "original", "permuted", "speedup"],
        )
        for name in matrices:
            matrix = get_suite_matrix(name, scale=scale, with_rhs=False)
            original_time = model.pcg_iteration_time(
                matrix, matrix.lower_triangle()
            ).total
            permuted, _, _ = color_and_permute(matrix)
            permuted_lower = ic0(permuted)
            permuted_time = model.pcg_iteration_time(
                permuted, permuted_lower
            ).total
            result.add_row(
                matrix=name,
                original=1.0,
                permuted=permuted_time / original_time,
                speedup=original_time / permuted_time,
            )
        result.notes = (
            "Paper shape (Fig. 7): permutation speeds up the GPU >= 2x "
            "on every matrix."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """GPU iteration time: original vs colored+permuted inputs."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

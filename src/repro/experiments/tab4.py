"""Table IV analog: the benchmark-suite inventory.

Reports, for every suite matrix, its dimension, nonzero count, density,
and A/b SRAM footprints — the columns of the paper's Table IV — plus
which machine section it belongs to.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.sparse.suite import suite_inventory


@register("tab4", title="Benchmark-suite inventory",
          tags=("paper", "table", "analytic"))
def spec(section: str = "all", scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Build the suite inventory table."""

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="tab4",
            title="Benchmark matrices (synthetic analogs of paper Table IV)",
            columns=[
                "matrix", "category", "section", "n", "nnz", "nnz_per_row",
                "A_KB", "b_KB",
            ],
        )
        for row in suite_inventory(section, scale=scale):
            result.add_row(
                matrix=row["name"],
                category=row["category"],
                section=row["section"],
                n=row["n"],
                nnz=row["nnz"],
                nnz_per_row=row["nnz_per_row"],
                A_KB=row["a_bytes"] / 1024,
                b_KB=row["b_bytes"] / 1024,
            )
        result.notes = (
            "Paper matrices are SuiteSparse SPD inputs (3.7M-329M nnz); "
            "these synthetic analogs preserve nnz/row, pattern "
            "correlation, and SpTRSV parallelism class at "
            "simulation-tractable sizes."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(section: str = "all", scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Build the suite inventory table."""
    return spec.run(jobs=jobs, section=section, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

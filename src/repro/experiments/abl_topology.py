"""Ablation: 2D torus vs 2D mesh NoC.

The paper builds on a 2D torus (Table III); a mesh is the obvious
cheaper alternative (shorter links, no wraparound wiring) at the cost
of longer average routes and half the bisection.  This ablation runs
the same mapped PCG on both topologies.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


TOPOLOGIES = ("torus", "mesh")


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Same placement, torus vs mesh timing."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="abl_topology",
        title="NoC topology ablation: torus vs mesh",
        columns=[
            "matrix", "torus_cycles", "mesh_cycles", "torus_advantage",
            "torus_links", "mesh_links",
        ],
    )
    points = [
        SimPoint(name, config=config.with_(topology=topology),
                 check=(topology == "mesh"))
        for name in matrices for topology in TOPOLOGIES
    ]
    sims = iter(session.simulate_many(points, jobs=jobs))
    for name in matrices:
        runs = {topology: next(sims) for topology in TOPOLOGIES}
        result.add_row(
            matrix=name,
            torus_cycles=runs["torus"].total_cycles,
            mesh_cycles=runs["mesh"].total_cycles,
            torus_advantage=(
                runs["mesh"].total_cycles / runs["torus"].total_cycles
            ),
            torus_links=runs["torus"].link_activations(),
            mesh_links=runs["mesh"].link_activations(),
        )
    result.extras = {
        "gmean_torus_advantage": gmean(result.column("torus_advantage")),
    }
    result.notes = (
        f"The torus is gmean {result.extras['gmean_torus_advantage']:.2f}x "
        "faster: wraparound halves average route length, and Azul's "
        "mapping leaves little slack to absorb the mesh's longer paths."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: 2D torus vs 2D mesh NoC.

The paper builds on a 2D torus (Table III); a mesh is the obvious
cheaper alternative (shorter links, no wraparound wiring) at the cost
of longer average routes and half the bisection.  This ablation runs
the same mapped PCG on both topologies.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


TOPOLOGIES = ("torus", "mesh")


@register("abl_topology", title="NoC topology ablation: torus vs mesh",
          tags=("extension", "ablation", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Same placement, torus vs mesh timing."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)
    config = session.config

    points = {
        f"{name}/{topology}": SimPoint(
            name, config=config.with_(topology=topology),
            check=(topology == "mesh"),
        )
        for name in matrices for topology in TOPOLOGIES
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="abl_topology",
            title="NoC topology ablation: torus vs mesh",
            columns=[
                "matrix", "torus_cycles", "mesh_cycles",
                "torus_advantage", "torus_links", "mesh_links",
            ],
        )
        for name in matrices:
            runs = {
                topology: sims[f"{name}/{topology}"]
                for topology in TOPOLOGIES
            }
            result.add_row(
                matrix=name,
                torus_cycles=runs["torus"].total_cycles,
                mesh_cycles=runs["mesh"].total_cycles,
                torus_advantage=(
                    runs["mesh"].total_cycles / runs["torus"].total_cycles
                ),
                torus_links=runs["torus"].link_activations(),
                mesh_links=runs["mesh"].link_activations(),
            )
        result.extras = {
            "gmean_torus_advantage": gmean(
                result.column("torus_advantage")
            ),
        }
        result.notes = (
            "The torus is gmean "
            f"{result.extras['gmean_torus_advantage']:.2f}x faster: "
            "wraparound halves average route length, and Azul's mapping "
            "leaves little slack to absorb the mesh's longer paths."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Same placement, torus vs mesh timing."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

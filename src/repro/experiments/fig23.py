"""Fig. 23 analog: end-to-end throughput by mapping strategy.

Full PCG on simulated Azul hardware (real PEs this time, unlike
Fig. 10's idealized ones) under Round Robin, Block, SparseP, and Azul
mappings.  The paper: Azul outperforms Round Robin by gmean 10.2x,
Block by 13.5x, SparseP by 25.2x.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


MAPPINGS = ("round_robin", "block", "sparsep", "azul")


@register("fig23", title="End-to-end throughput by mapping strategy",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Throughput of each mapping on the real-PE simulator."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/{mapping}": SimPoint(name, mapper=mapping, pe="azul")
        for name in matrices for mapping in MAPPINGS
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig23",
            title="PCG GFLOP/s by data mapping (Azul PEs)",
            columns=["matrix"] + list(MAPPINGS),
        )
        for name in matrices:
            row = {"matrix": name}
            for mapping in MAPPINGS:
                row[mapping] = sims[f"{name}/{mapping}"].gflops()
            result.add_row(**row)
        summary = []
        for mapping in MAPPINGS[:-1]:
            gain = gmean([
                row["azul"] / row[mapping] for row in result.rows
            ])
            result.extras[f"azul_vs_{mapping}"] = gain
            summary.append(f"{gain:.1f}x vs {mapping}")
        result.notes = (
            "Azul mapping gmean gains: " + ", ".join(summary)
            + " (paper: 10.2x / 13.5x / 25.2x at 4096 tiles)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Throughput of each mapping on the real-PE simulator."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

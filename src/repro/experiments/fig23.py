"""Fig. 23 analog: end-to-end throughput by mapping strategy.

Full PCG on simulated Azul hardware (real PEs this time, unlike
Fig. 10's idealized ones) under Round Robin, Block, SparseP, and Azul
mappings.  The paper: Azul outperforms Round Robin by gmean 10.2x,
Block by 13.5x, SparseP by 25.2x.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


MAPPINGS = ("round_robin", "block", "sparsep", "azul")


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Throughput of each mapping on the real-PE simulator."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig23",
        title="PCG GFLOP/s by data mapping (Azul PEs)",
        columns=["matrix"] + list(MAPPINGS),
    )
    points = [
        SimPoint(name, mapper=mapping, pe="azul")
        for name in matrices for mapping in MAPPINGS
    ]
    sims = iter(session.simulate_many(points, jobs=jobs))
    for name in matrices:
        row = {"matrix": name}
        for mapping in MAPPINGS:
            row[mapping] = next(sims).gflops()
        result.add_row(**row)
    summary = []
    for mapping in MAPPINGS[:-1]:
        gain = gmean([row["azul"] / row[mapping] for row in result.rows])
        result.extras[f"azul_vs_{mapping}"] = gain
        summary.append(f"{gain:.1f}x vs {mapping}")
    result.notes = (
        "Azul mapping gmean gains: " + ", ".join(summary)
        + " (paper: 10.2x / 13.5x / 25.2x at 4096 tiles)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Sec. VI-D analog: data-mapping preprocessing cost.

Wall-clock time to map each matrix with each strategy.  The paper:
Azul's mapping averages 6.16 minutes per matrix (PaToH quality preset)
vs 0.25 (Block), 1.9 (Round Robin, dominated by reduction-tree
construction), and 0.6 (SparseP) — amortized over hours-long
simulations.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult


MAPPINGS = ("block", "sparsep", "round_robin", "azul")


@register("tabD", title="Data-mapping preprocessing cost",
          tags=("paper", "table", "analytic"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, use_cache: bool = False,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Measure mapping wall-clock seconds per matrix and strategy.

    ``jobs`` bounds the Azul partitioner's worker pool; the placements
    (and hence everything downstream) are identical for any value.
    """
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="tabD",
            title="Mapping preprocessing cost (seconds)",
            columns=["matrix"] + [f"{m}_s" for m in MAPPINGS],
        )
        for name in matrices:
            row = {"matrix": name}
            for mapping in MAPPINGS:
                placement = session.placement(
                    name, mapping, use_cache=use_cache, jobs=jobs,
                )
                row[f"{mapping}_s"] = placement.placement_seconds
            result.add_row(**row)
        result.notes = (
            "Paper shape (Sec. VI-D): Azul's hypergraph mapping costs "
            "far more than position-based mappings but is amortized "
            "across millions of solver timesteps sharing one sparsity "
            "pattern."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, use_cache: bool = False,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Measure mapping wall-clock seconds per matrix and strategy."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale, use_cache=use_cache)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 9 analog: Dalorex running PCG.

Dalorex = the same all-SRAM machine with (a) Round-Robin data mapping
and (b) in-order scalar cores whose bookkeeping instructions consume
most issue slots.  The paper measures at most 187 GFLOP/s, ~1% of the
16 TFLOP/s peak, despite all data being on-chip.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


@register("fig09", title="Dalorex PCG throughput",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Simulate Dalorex (round-robin mapping + in-order cores) on PCG."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {
        name: SimPoint(name, mapper="round_robin", pe="dalorex")
        for name in matrices
    }

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="fig09",
            title="Dalorex PCG throughput (GFLOP/s and fraction of peak)",
            columns=["matrix", "gflops", "fraction_of_peak"],
        )
        for name in matrices:
            sim = sims[name]
            result.add_row(
                matrix=name,
                gflops=sim.gflops(),
                fraction_of_peak=sim.utilization(),
            )
        worst = max(result.column("fraction_of_peak"))
        result.notes = (
            f"Peak fraction <= {worst:.1%}; the paper's Dalorex reaches "
            "~1% of its 16 TFLOP/s peak (Fig. 9) — all-SRAM alone is not "
            "enough."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Simulate Dalorex (round-robin mapping + in-order cores) on PCG."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 9 analog: Dalorex running PCG.

Dalorex = the same all-SRAM machine with (a) Round-Robin data mapping
and (b) in-order scalar cores whose bookkeeping instructions consume
most issue slots.  The paper measures at most 187 GFLOP/s, ~1% of the
16 TFLOP/s peak, despite all data being on-chip.
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1) -> ExperimentResult:
    """Simulate Dalorex (round-robin mapping + in-order cores) on PCG."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig09",
        title="Dalorex PCG throughput (GFLOP/s and fraction of peak)",
        columns=["matrix", "gflops", "fraction_of_peak"],
    )
    for name in matrices:
        sim = session.simulate(name, mapper="round_robin", pe="dalorex")
        result.add_row(
            matrix=name,
            gflops=sim.gflops(),
            fraction_of_peak=sim.utilization(),
        )
    worst = max(result.column("fraction_of_peak"))
    result.notes = (
        f"Peak fraction <= {worst:.1%}; the paper's Dalorex reaches ~1% "
        "of its 16 TFLOP/s peak (Fig. 9) — all-SRAM alone is not enough."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Staged, deduplicating, resumable executor for experiment specs.

The runner used to loop ``module.run()`` per experiment: every module
fanned out its own sweep, shared work was only recovered through the
disk cache *after* each point had been planned and keyed again, one
crash lost the whole run, and one bad experiment aborted everything
behind it.  The executor replaces that loop with four stages over the
declarative specs (:mod:`repro.experiments.spec`):

1. **Plan** — build every selected experiment's
   :class:`~repro.experiments.spec.ExperimentPlan` (cheap by
   contract) and resolve each keyed point to its content-addressed
   simulation cache key.
2. **Dedup globally** — merge the points of *all* experiments by
   cache key: one ``simulate_many`` fan-out serves every experiment
   that needs a given point.  A full-suite run shares dozens of
   azul/azul and dalorex points between the headline figures, the
   breakdown figures, and the efficiency studies; the merged sweep
   simulates each exactly once.  ``--plan`` prints this as a dry-run
   (per-experiment point counts, global unique count, predicted
   cache hits) without simulating anything.
3. **Sweep** — one :func:`repro.parallel.simulate_many` call over
   the unique points (``--jobs`` workers, cache short-circuit,
   serial fallback).
4. **Reduce + checkpoint** — each experiment's ``reduce`` runs in
   isolation; the finished :class:`~repro.perf.ExperimentResult` is
   checkpointed through :mod:`repro.cache`, so ``--resume`` skips
   completed experiments after a crash or Ctrl-C (and the simulation
   cache covers points finished mid-sweep).  With ``keep_going`` a
   failing experiment is recorded and the rest still run; the report
   aggregates the exit code.

Instrumented through :mod:`repro.obs` as ``exec.*`` counters and
spans (no-ops unless observability is enabled).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import repro.obs as obs
from repro.cache import MISS, PICKLE, ArtifactCache
from repro.cache.keys import canonical_encode
from repro.experiments.spec import ExperimentPlan, ExperimentSpec
from repro.parallel import SimPoint
from repro.perf import ExperimentResult

__all__ = [
    "EXPERIMENT_NAMESPACE",
    "EXPERIMENT_SCHEMA",
    "ExperimentFailure",
    "ExperimentOutcome",
    "ExecutionReport",
    "SweepPlan",
    "plan_experiments",
    "execute",
]

#: Cache namespace holding per-experiment result checkpoints.
EXPERIMENT_NAMESPACE = "experiments"

#: Checkpoint schema: bump when ExperimentResult's pickled shape or
#: the checkpoint key derivation changes incompatibly.
EXPERIMENT_SCHEMA = "v1"


class ExperimentFailure(RuntimeError):
    """One experiment failed and ``keep_going`` was off."""

    def __init__(self, experiment_id: str, cause: BaseException):
        super().__init__(
            f"experiment {experiment_id!r} failed: {cause!r} "
            "(run with --keep-going to continue past failures)"
        )
        self.experiment_id = experiment_id
        self.cause = cause


# ----------------------------------------------------------------------
# Plan containers
# ----------------------------------------------------------------------
@dataclass
class _Entry:
    """One selected experiment's planning state."""

    spec: ExperimentSpec
    overrides: Dict[str, Any]
    plan: Optional[ExperimentPlan] = None
    #: Build-time failure (reported; excluded from the sweep).
    error: Optional[BaseException] = None
    #: point key -> fully-resolved SimPoint.
    resolved: Dict[str, SimPoint] = field(default_factory=dict)
    #: point key -> global simulation cache key.
    point_keys: Dict[str, str] = field(default_factory=dict)
    checkpoint_key: str = ""
    #: Checkpointed result found during planning (``resume`` runs).
    checkpointed: Any = MISS


@dataclass
class SweepPlan:
    """The dry-run view: what a run *would* simulate.

    ``experiments`` rows carry per-experiment counts; the totals show
    the global-dedup effect (``unique_points`` < ``sum_unique`` means
    cross-experiment sharing; both are < ``total_points`` when an
    experiment repeats a point internally).
    """

    experiments: List[dict] = field(default_factory=list)
    total_points: int = 0
    #: Sum of per-experiment unique counts (no cross-experiment dedup).
    sum_unique: int = 0
    #: Globally unique points across all experiments.
    unique_points: int = 0
    predicted_cache_hits: int = 0
    to_compute: int = 0
    resumed: int = 0
    build_failures: int = 0

    @property
    def deduplicated(self) -> int:
        return self.total_points - self.unique_points

    def render(self) -> str:
        """The ``--plan`` table."""
        lines = [
            f"{'experiment':18s} {'status':10s} {'points':>6s} "
            f"{'unique':>6s} {'cached':>6s}"
        ]
        lines.append("-" * len(lines[0]))
        for row in self.experiments:
            lines.append(
                f"{row['id']:18s} {row['status']:10s} "
                f"{row['points']:6d} {row['unique']:6d} "
                f"{row['cached']:6d}"
            )
        lines.append("")
        lines.append(
            f"plan: {self.total_points} points, "
            f"{self.unique_points} unique globally "
            f"({self.deduplicated} deduplicated; per-experiment sum "
            f"{self.sum_unique}), {self.predicted_cache_hits} predicted "
            f"cache hits, {self.to_compute} to simulate"
        )
        if self.resumed:
            lines.append(
                f"resume: {self.resumed} experiment(s) already "
                "checkpointed — skipped entirely"
            )
        if self.build_failures:
            lines.append(
                f"WARNING: {self.build_failures} experiment(s) failed "
                "to build a plan"
            )
        return "\n".join(lines)


@dataclass
class ExperimentOutcome:
    """What happened to one experiment in an executor run."""

    experiment_id: str
    #: ``ok`` | ``resumed`` | ``failed``.
    status: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    seconds: float = 0.0


@dataclass
class ExecutionReport:
    """Aggregated run result: per-experiment outcomes + sweep stats."""

    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    sweep: SweepPlan = field(default_factory=SweepPlan)
    #: ``simulate_many`` observability counters for the merged sweep.
    sweep_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if any(o.status == "failed" for o in self.outcomes) else 0

    def failures(self) -> List[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def results(self) -> Dict[str, ExperimentResult]:
        return {
            o.experiment_id: o.result
            for o in self.outcomes if o.result is not None
        }


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def _resolve_point(session, point: SimPoint) -> SimPoint:
    """Fill a point's ``None`` fields from its owning session.

    A fully-resolved point is session-independent: any session may
    fan it out and it still lands on the same cache key, which is
    what lets the executor merge points across experiments.
    """
    return SimPoint(
        name=point.name,
        mapper=point.mapper,
        pe=point.pe,
        scale=session.scale if point.scale is None else int(point.scale),
        preset=session.preset if point.preset is None else point.preset,
        check=bool(point.check),
        config=session.config if point.config is None else point.config,
        trace=(obs.tracing_enabled() if point.trace is None
               else bool(point.trace)),
    )


def _point_cache_key(session, resolved: SimPoint) -> str:
    """The simulation cache key a resolved point will hit."""
    return session.simulation_key(
        resolved.name, resolved.mapper, resolved.pe,
        scale=resolved.scale, preset=resolved.preset,
        check=resolved.check, config=resolved.config,
        trace=bool(resolved.trace),
    )


def _override_fingerprint(overrides: Dict[str, Any]) -> str:
    """Stable encoding of builder overrides for the checkpoint key.

    ``jobs`` never appears here (parallelism cannot change results).
    Values outside the canonical cache-key vocabulary fall back to
    ``repr`` — stable for the dataclasses and tuples experiments use.
    """
    parts = []
    for name in sorted(overrides):
        value = overrides[name]
        try:
            encoded = canonical_encode(value)
        except TypeError:
            encoded = f"r:{value!r}"
        parts.append(f"{name}={encoded}")
    return ";".join(parts)


def _checkpoint_key(cache: ArtifactCache, entry: _Entry) -> str:
    """Content-addressed key of one experiment's result checkpoint.

    Keyed on the experiment id, the override fingerprint, and the
    sorted simulation keys of its points, so a checkpoint can never
    be replayed against a different machine config, matrix set, or
    simulation schema.
    """
    return cache.key(
        "experiment", entry.spec.id, EXPERIMENT_SCHEMA,
        _override_fingerprint(entry.overrides),
        sorted(entry.point_keys.values()),
    )


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_experiments(
    experiments: Sequence[ExperimentSpec], *,
    jobs: Optional[int] = None,
    resume: bool = False,
    overrides: Optional[Dict[str, Any]] = None,
    keep_going: bool = False,
    cache: Optional[ArtifactCache] = None,
) -> tuple:
    """Stage 1+2: build plans, resolve keys, compute the global dedup.

    Returns ``(entries, sweep_plan)``.  ``overrides`` are forwarded
    to each builder filtered by what it declares (an override a
    builder does not take is simply not offered to it).  With
    ``resume``, experiments whose checkpoint exists are marked
    resumed and contribute no points.  A builder failure aborts
    unless ``keep_going``.
    """
    cache = cache if cache is not None else ArtifactCache.default()
    overrides = dict(overrides or {})
    overrides.pop("jobs", None)
    specs = list(experiments)

    entries: List[_Entry] = []
    with obs.span("exec.plan", experiments=len(specs)):
        for spec in specs:
            accepted = {
                name: value for name, value in overrides.items()
                if spec.accepts(name)
            }
            entry = _Entry(spec=spec, overrides=accepted)
            entries.append(entry)
            try:
                entry.plan = spec.plan(jobs=jobs, **accepted)
                for point_key, point in entry.plan.points.items():
                    resolved = _resolve_point(entry.plan.session, point)
                    entry.resolved[point_key] = resolved
                    entry.point_keys[point_key] = _point_cache_key(
                        entry.plan.session, resolved
                    )
                entry.checkpoint_key = _checkpoint_key(cache, entry)
                if resume:
                    entry.checkpointed = cache.get(
                        EXPERIMENT_NAMESPACE, entry.checkpoint_key,
                        PICKLE,
                    )
            except Exception as exc:  # noqa: BLE001 — isolation contract
                entry.error = exc
                if not keep_going:
                    raise ExperimentFailure(spec.id, exc) from exc

        sweep = _summarize(entries, cache)

    obs.counter("exec.experiments", len(entries))
    obs.counter("exec.points.total", sweep.total_points)
    obs.counter("exec.points.unique", sweep.unique_points)
    obs.counter("exec.points.deduplicated", sweep.deduplicated)
    obs.counter("exec.points.predicted_cache_hits",
                sweep.predicted_cache_hits)
    if sweep.resumed:
        obs.counter("exec.resumed", sweep.resumed)
    return entries, sweep


def _summarize(entries: List[_Entry], cache: ArtifactCache) -> SweepPlan:
    """Fold per-experiment plans into the global SweepPlan."""
    from repro.experiments.common import SIMULATION_NAMESPACE

    sweep = SweepPlan()
    global_keys: Dict[str, bool] = {}
    for entry in entries:
        if entry.error is not None:
            status = "error"
            keys: List[str] = []
        elif entry.checkpointed is not MISS:
            status = "resumed"
            keys = []
            sweep.resumed += 1
        else:
            status = "pending"
            keys = list(entry.point_keys.values())
        cached = 0
        for key in set(keys):
            if key not in global_keys:
                global_keys[key] = cache.contains(
                    SIMULATION_NAMESPACE, key, PICKLE
                )
            cached += int(global_keys[key])
        sweep.experiments.append({
            "id": entry.spec.id,
            "status": status,
            "points": len(keys),
            "unique": len(set(keys)),
            "cached": cached,
        })
        sweep.total_points += len(keys)
        sweep.sum_unique += len(set(keys))
        sweep.build_failures += int(entry.error is not None)
    sweep.unique_points = len(global_keys)
    sweep.predicted_cache_hits = sum(global_keys.values())
    sweep.to_compute = sweep.unique_points - sweep.predicted_cache_hits
    return sweep


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute(
    experiments: Sequence[ExperimentSpec], *,
    jobs: Optional[int] = None,
    keep_going: bool = False,
    resume: bool = False,
    overrides: Optional[Dict[str, Any]] = None,
    cache: Optional[ArtifactCache] = None,
    on_outcome: Optional[Callable[[ExperimentOutcome], None]] = None,
) -> ExecutionReport:
    """Run experiments through the staged executor.

    Parameters
    ----------
    experiments:
        Experiment ids (resolved through the runner registry) or
        :class:`ExperimentSpec` objects.
    jobs:
        Worker processes for the merged sweep, and the uniform
        ``jobs`` every builder receives for its internal pools.
    keep_going:
        Record a failing experiment and continue with the rest; the
        report's ``exit_code`` aggregates to 1.  Off: the first
        failure raises :class:`ExperimentFailure`.
    resume:
        Skip experiments whose checkpointed result is already in the
        artifact cache (written at the end of every successful
        experiment), returning the checkpointed result instead.
    overrides:
        Builder overrides (e.g. ``matrices=[...]``), forwarded to
        each spec filtered by what its builder declares.
    on_outcome:
        Callback invoked as each experiment completes (streaming
        output for the runner).
    """
    cache = cache if cache is not None else ArtifactCache.default()
    report = ExecutionReport()
    with obs.timer("exec.run", experiments=len(list(experiments))):
        entries, report.sweep = plan_experiments(
            experiments, jobs=jobs, resume=resume, overrides=overrides,
            keep_going=keep_going, cache=cache,
        )

        # Stage 3: one merged fan-out over the globally-unique points.
        pending = [
            e for e in entries
            if e.error is None and e.checkpointed is MISS
        ]
        results_by_key: Dict[str, Any] = {}
        unique: Dict[str, SimPoint] = {}
        for entry in pending:
            for point_key, global_key in entry.point_keys.items():
                unique.setdefault(
                    global_key, entry.resolved[point_key]
                )
        if unique:
            sweep_session = next(
                e.plan.session for e in pending if e.point_keys
            )
            with obs.span("exec.sweep", unique_points=len(unique)):
                from repro.parallel import simulate_many

                ordered = list(unique)
                results = simulate_many(
                    sweep_session, [unique[k] for k in ordered], jobs,
                    stats=report.sweep_stats,
                )
                results_by_key = dict(zip(ordered, results))

        # Stage 4: reduce + checkpoint, isolating failures.
        for entry in entries:
            outcome = _finish(entry, results_by_key, cache)
            report.outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            if outcome.status == "failed" and not keep_going:
                obs.counter("exec.failures", 1)
                raise ExperimentFailure(
                    outcome.experiment_id,
                    entry.error if entry.error is not None
                    else RuntimeError(outcome.error or "unknown"),
                )

    failures = len(report.failures())
    if failures:
        obs.counter("exec.failures", failures)
    obs.counter("exec.completed",
                sum(o.status == "ok" for o in report.outcomes))
    return report


def _finish(entry: _Entry, results_by_key: Dict[str, Any],
            cache: ArtifactCache) -> ExperimentOutcome:
    """Reduce one experiment (or surface its earlier failure)."""
    experiment_id = entry.spec.id
    if entry.error is not None:
        return ExperimentOutcome(
            experiment_id=experiment_id, status="failed",
            error="".join(traceback.format_exception_only(entry.error))
            .strip(),
        )
    if entry.checkpointed is not MISS:
        return ExperimentOutcome(
            experiment_id=experiment_id, status="resumed",
            result=entry.checkpointed,
        )
    start = time.perf_counter()
    try:
        with obs.timer("exec.reduce", experiment=experiment_id):
            sims = {
                point_key: results_by_key[global_key]
                for point_key, global_key in entry.point_keys.items()
            }
            result = entry.plan.reduce(sims)
        cache.put(EXPERIMENT_NAMESPACE, entry.checkpoint_key, result,
                  PICKLE)
        return ExperimentOutcome(
            experiment_id=experiment_id, status="ok", result=result,
            seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — isolation contract
        entry.error = exc
        return ExperimentOutcome(
            experiment_id=experiment_id, status="failed",
            error="".join(
                traceback.format_exception_only(exc)
            ).strip(),
            seconds=time.perf_counter() - start,
        )

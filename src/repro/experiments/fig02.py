"""Fig. 2 analog: the headline summary bars.

Gmean PCG throughput of (1) Azul, (2) Azul PEs with Dalorex's
round-robin mapping, (3) Dalorex, and (4) the GPU — showing that both
ingredients (mapping and PE) are necessary (Sec. I).
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.models import GPUModel
from repro.perf import ExperimentResult, gmean


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1) -> ExperimentResult:
    """Gmean GFLOP/s of the four headline configurations."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    gpu = GPUModel()

    gpu_gflops = []
    dalorex_gflops = []
    azul_rr_gflops = []
    azul_gflops = []
    for name in matrices:
        prepared = session.prepare(name)
        gpu_gflops.append(gpu.gflops(prepared.matrix, prepared.lower))
        dalorex_gflops.append(
            session.simulate(name, mapper="round_robin",
                             pe="dalorex").gflops()
        )
        azul_rr_gflops.append(
            session.simulate(name, mapper="round_robin",
                             pe="azul").gflops()
        )
        azul_gflops.append(
            session.simulate(name, mapper="azul", pe="azul").gflops()
        )

    result = ExperimentResult(
        experiment="fig02",
        title="Headline gmean PCG throughput (GFLOP/s)",
        columns=["configuration", "gmean_gflops", "vs_gpu"],
    )
    reference = gmean(gpu_gflops)
    for label, values in (
        ("Azul", azul_gflops),
        ("Azul PEs + Dalorex mapping", azul_rr_gflops),
        ("Dalorex", dalorex_gflops),
        ("GPU (V100 model)", gpu_gflops),
    ):
        value = gmean(values)
        result.add_row(
            configuration=label,
            gmean_gflops=value,
            vs_gpu=value / reference,
        )
    result.notes = (
        "Paper shape (Fig. 2): Azul >> Azul-PEs-with-RR-mapping >> "
        "Dalorex > GPU; both the mapping and the PE are required. "
        f"Machine peak here: {config.peak_flops / 1e9:.0f} GFLOP/s."
    )
    result.extras = {
        "azul": gmean(azul_gflops),
        "azul_rr": gmean(azul_rr_gflops),
        "dalorex": gmean(dalorex_gflops),
        "gpu": gmean(gpu_gflops),
    }
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

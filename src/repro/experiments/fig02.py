"""Fig. 2 analog: the headline summary bars.

Gmean PCG throughput of (1) Azul, (2) Azul PEs with Dalorex's
round-robin mapping, (3) Dalorex, and (4) the GPU — showing that both
ingredients (mapping and PE) are necessary (Sec. I).
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import GPUModel
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


@register("fig02", title="Headline gmean PCG throughput",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Gmean GFLOP/s of the four headline configurations."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)
    config = session.config

    points = {}
    for name in matrices:
        points[f"{name}/dalorex"] = SimPoint(
            name, mapper="round_robin", pe="dalorex"
        )
        points[f"{name}/azul_rr"] = SimPoint(
            name, mapper="round_robin", pe="azul"
        )
        points[f"{name}/azul"] = SimPoint(name, mapper="azul", pe="azul")

    def reduce(sims) -> ExperimentResult:
        gpu = GPUModel()
        gpu_gflops = []
        for name in matrices:
            prepared = session.prepare(name)
            gpu_gflops.append(gpu.gflops(prepared.matrix, prepared.lower))
        dalorex_gflops = [
            sims[f"{name}/dalorex"].gflops() for name in matrices
        ]
        azul_rr_gflops = [
            sims[f"{name}/azul_rr"].gflops() for name in matrices
        ]
        azul_gflops = [sims[f"{name}/azul"].gflops() for name in matrices]

        result = ExperimentResult(
            experiment="fig02",
            title="Headline gmean PCG throughput (GFLOP/s)",
            columns=["configuration", "gmean_gflops", "vs_gpu"],
        )
        reference = gmean(gpu_gflops)
        for label, values in (
            ("Azul", azul_gflops),
            ("Azul PEs + Dalorex mapping", azul_rr_gflops),
            ("Dalorex", dalorex_gflops),
            ("GPU (V100 model)", gpu_gflops),
        ):
            value = gmean(values)
            result.add_row(
                configuration=label,
                gmean_gflops=value,
                vs_gpu=value / reference,
            )
        result.notes = (
            "Paper shape (Fig. 2): Azul >> Azul-PEs-with-RR-mapping >> "
            "Dalorex > GPU; both the mapping and the PE are required. "
            f"Machine peak here: {config.peak_flops / 1e9:.0f} GFLOP/s."
        )
        result.extras = {
            "azul": gmean(azul_gflops),
            "azul_rr": gmean(azul_rr_gflops),
            "dalorex": gmean(dalorex_gflops),
            "gpu": gmean(gpu_gflops),
        }
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Gmean GFLOP/s of the four headline configurations."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

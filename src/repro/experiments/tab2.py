"""Table II analog: iterative solvers and their kernel requirements.

Demonstrates the paper's coverage claim: SpMV and SpTRSV suffice for
the widely used solver/preconditioner combinations.
"""

from __future__ import annotations

from repro.perf import ExperimentResult
from repro.solvers import solver_table


def run() -> ExperimentResult:
    """Render the solver/preconditioner/kernels table."""
    result = ExperimentResult(
        experiment="tab2",
        title="Iterative solvers and required sparse kernels",
        columns=["algorithm", "preconditioner", "kernels"],
    )
    for spec in solver_table():
        result.add_row(
            algorithm=spec.algorithm,
            preconditioner=spec.preconditioner,
            kernels=" + ".join(spec.kernels),
        )
    result.notes = (
        "Every listed solver reduces to SpMV and/or SpTRSV — the two "
        "kernels Azul accelerates (paper Table II)."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

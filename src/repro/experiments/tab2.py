"""Table II analog: iterative solvers and their kernel requirements.

Demonstrates the paper's coverage claim: SpMV and SpTRSV suffice for
the widely used solver/preconditioner combinations.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.solvers import solver_table


@register("tab2", title="Iterative solvers and required kernels",
          tags=("paper", "table", "analytic"))
def spec(jobs: Optional[int] = None) -> ExperimentPlan:
    """Render the solver/preconditioner/kernels table."""

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="tab2",
            title="Iterative solvers and required sparse kernels",
            columns=["algorithm", "preconditioner", "kernels"],
        )
        for solver in solver_table():
            result.add_row(
                algorithm=solver.algorithm,
                preconditioner=solver.preconditioner,
                kernels=" + ".join(solver.kernels),
            )
        result.notes = (
            "Every listed solver reduces to SpMV and/or SpTRSV — the two "
            "kernels Azul accelerates (paper Table II)."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(jobs: Optional[int] = None) -> ExperimentResult:
    """Render the solver/preconditioner/kernels table."""
    return spec.run(jobs=jobs)


def main():
    print(run())


if __name__ == "__main__":
    main()

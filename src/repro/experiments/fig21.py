"""Fig. 21 analog: Azul PE cycle breakdown.

Fraction of PE issue slots spent on Fmac/Add/Mul/Send versus stalls,
per matrix.  The paper's shape: FMACs take >40% of slots on almost all
inputs; stalls grow on parallelism-limited matrices; few-nonzeros-per-
row matrices spend more on reductions (Sends and Adds).
"""

from __future__ import annotations

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.perf import ExperimentResult
from repro.sim import breakdown_from_results


def run(matrices=None, config: AzulConfig = None,
        scale: int = 1, jobs: int = 1) -> ExperimentResult:
    """Per-matrix PE cycle breakdown on simulated Azul."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(config, scale=scale)
    config = session.config
    result = ExperimentResult(
        experiment="fig21",
        title="Azul PE cycle breakdown (fractions of issue slots)",
        columns=["matrix", "fmac", "add", "mul", "send", "stall"],
    )
    sims = session.simulate_many(list(matrices), jobs=jobs)
    for name, sim in zip(matrices, sims):
        breakdown = breakdown_from_results(
            sim.kernel_results, config.num_tiles,
            extra_cycles=sim.vector_cycles,
            extra_ops=sim.vector_ops,
        )
        result.add_row(matrix=name, **breakdown.as_dict())
    result.notes = (
        "Paper shape (Fig. 21): FMAC slots dominate useful work; stalls "
        "come chiefly from SpTRSV's limited parallelism."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 21 analog: Azul PE cycle breakdown.

Fraction of PE issue slots spent on Fmac/Add/Mul/Send versus stalls,
per matrix.  The paper's shape: FMACs take >40% of slots on almost all
inputs; stalls grow on parallelism-limited matrices; few-nonzeros-per-
row matrices spend more on reductions (Sends and Adds).
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult
from repro.sim import breakdown_from_results


@register("fig21", title="Azul PE cycle breakdown",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Per-matrix PE cycle breakdown on simulated Azul."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {name: SimPoint(name) for name in matrices}

    def reduce(sims) -> ExperimentResult:
        config = session.config
        result = ExperimentResult(
            experiment="fig21",
            title="Azul PE cycle breakdown (fractions of issue slots)",
            columns=["matrix", "fmac", "add", "mul", "send", "stall"],
        )
        for name in matrices:
            sim = sims[name]
            breakdown = breakdown_from_results(
                sim.kernel_results, config.num_tiles,
                extra_cycles=sim.vector_cycles,
                extra_ops=sim.vector_ops,
            )
            result.add_row(matrix=name, **breakdown.as_dict())
        result.notes = (
            "Paper shape (Fig. 21): FMAC slots dominate useful work; "
            "stalls come chiefly from SpTRSV's limited parallelism."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Per-matrix PE cycle breakdown on simulated Azul."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Extension: energy efficiency (GFLOP/s per watt).

Combines the throughput results (Fig. 20) with the power model
(Fig. 24) into an efficiency comparison: an SRAM-array accelerator's
advantage in performance-per-watt is even larger than its raw speedup,
since it eliminates off-chip DRAM energy entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import GPUModel, power_report
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean

#: V100 PCIe board power (the GPU baseline's TDP).
GPU_TDP_W = 250.0


@register("eff_study", title="Energy efficiency: GFLOP/s per watt",
          tags=("extension", "study", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """GFLOP/s per watt: simulated Azul vs the GPU model at TDP."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {name: SimPoint(name) for name in matrices}

    def reduce(sims) -> ExperimentResult:
        config = session.config
        gpu = GPUModel()
        result = ExperimentResult(
            experiment="eff_study",
            title="Energy efficiency: GFLOP/s per watt",
            columns=[
                "matrix", "azul_gflops_per_w", "gpu_gflops_per_w",
                "efficiency_gain",
            ],
        )
        for name in matrices:
            prepared = session.prepare(name)
            sim = sims[name]
            azul_watts = power_report(sim, config).total
            azul_efficiency = sim.gflops() / azul_watts
            gpu_efficiency = (
                gpu.gflops(prepared.matrix, prepared.lower) / GPU_TDP_W
            )
            result.add_row(
                matrix=name,
                azul_gflops_per_w=azul_efficiency,
                gpu_gflops_per_w=gpu_efficiency,
                efficiency_gain=azul_efficiency / gpu_efficiency,
            )
        gain = gmean(result.column("efficiency_gain"))
        result.extras = {"gmean_efficiency_gain": gain}
        result.notes = (
            f"Azul is gmean {gain:.0f}x more energy-efficient than the "
            "GPU baseline: the raw speedup compounds with a much lower "
            "power envelope (no DRAM, small SRAMs, short wires)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """GFLOP/s per watt: simulated Azul vs the GPU model at TDP."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Extension: spatial correlation vs position-based mapping quality.

Tests Sec. VI-C's explanatory claim directly: position-based mappings
(Block) approach Azul's traffic only on spatially correlated patterns;
on uncorrelated patterns their traffic blows up.  Reports, per matrix,
the spatial-correlation metric and the Block/Azul traffic ratio, and
their rank correlation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import analyze_traffic
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.sparse.analysis import spatial_correlation


@register("corr_study", title="Spatial correlation vs Block mapping",
          tags=("extension", "study", "analytic"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Correlate pattern structure with Block-mapping effectiveness."""
    matrices = list(
        matrices or (default_matrices() + ["G3_circuit", "tmt_sym"])
    )
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        result = ExperimentResult(
            experiment="corr_study",
            title="Spatial correlation vs Block-mapping traffic penalty",
            columns=["matrix", "correlation", "block_vs_azul_traffic"],
        )
        for name in matrices:
            prepared = session.prepare(name)
            correlation = spatial_correlation(prepared.matrix)
            block = session.placement(name, "block")
            azul = session.placement(name, "azul")
            block_traffic = analyze_traffic(
                block, prepared.matrix, prepared.lower, torus
            ).total_link_activations
            azul_traffic = analyze_traffic(
                azul, prepared.matrix, prepared.lower, torus
            ).total_link_activations
            result.add_row(
                matrix=name,
                correlation=correlation,
                block_vs_azul_traffic=(
                    block_traffic / max(azul_traffic, 1)
                ),
            )
        correlations = np.array(result.column("correlation"))
        penalties = np.array(result.column("block_vs_azul_traffic"))
        # Spearman rank correlation between structure and Block's penalty.
        rank_a = np.argsort(np.argsort(correlations)).astype(float)
        rank_b = np.argsort(np.argsort(-penalties)).astype(float)
        if np.std(rank_a) > 0 and np.std(rank_b) > 0:
            spearman = float(np.corrcoef(rank_a, rank_b)[0, 1])
        else:
            spearman = 0.0
        result.extras = {"spearman": spearman}
        result.notes = (
            f"Rank correlation between spatial correlation and Block's "
            f"traffic penalty: {spearman:+.2f} (positive = more "
            "correlated patterns suffer less from position-based "
            "mapping, Sec. VI-C's claim). Note: the coloring permutation "
            "itself scrambles correlation, which is partly why Azul's "
            "pattern-aware mapping is needed after the parallelism "
            "preprocessing."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Correlate pattern structure with Block-mapping effectiveness."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 11 analog: NoC traffic by mapping strategy.

Link activations of one PCG iteration under Round Robin, Block,
SparseP, and Azul mappings, normalized to the worst mapping per matrix.
The paper reports Azul reducing traffic by gmean 66x over Round Robin,
46x over Block, and 34x over SparseP.
"""

from __future__ import annotations

from typing import Optional

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import analyze_traffic
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult, gmean


MAPPINGS = ("round_robin", "block", "sparsep", "azul")


@register("fig11", title="NoC traffic by mapping strategy",
          tags=("paper", "figure", "analytic"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Static traffic analysis of one iteration under each mapping."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        result = ExperimentResult(
            experiment="fig11",
            title="NoC link activations per PCG iteration (normalized)",
            columns=["matrix"] + [f"{m}_norm" for m in MAPPINGS]
            + ["azul_reduction_vs_rr"],
        )
        for name in matrices:
            prepared = session.prepare(name)
            activations = {}
            for mapping in MAPPINGS:
                placement = session.placement(name, mapping)
                report = analyze_traffic(
                    placement, prepared.matrix, prepared.lower, torus
                )
                activations[mapping] = report.total_link_activations
            worst = max(activations.values())
            row = {"matrix": name}
            for mapping in MAPPINGS:
                row[f"{mapping}_norm"] = activations[mapping] / worst
            row["azul_reduction_vs_rr"] = (
                activations["round_robin"] / max(activations["azul"], 1)
            )
            result.add_row(**row)
        reduction = gmean(result.column("azul_reduction_vs_rr"))
        result.extras = {"azul_traffic_reduction_vs_rr": reduction}
        result.notes = (
            f"Azul mapping cuts link activations by gmean {reduction:.1f}x "
            "vs Round Robin (paper: 66x at 4096 tiles; smaller machines "
            "shrink the achievable reduction)."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Static traffic analysis of one iteration under each mapping."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

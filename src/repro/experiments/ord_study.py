"""Extension: ordering strategies and SpTRSV parallelism.

Compares three symmetric orderings — natural, reverse Cuthill-McKee,
and the paper's graph coloring — on the two properties that matter for
the machine: matrix bandwidth (locality) and SpTRSV parallelism
(work / critical path).  The point (Sec. II-A): only coloring breaks
dependence chains; bandwidth-oriented orderings like RCM can even
*lengthen* them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.graph import sptrsv_parallelism, symmetric_permute
from repro.graph.coloring import color_permutation, greedy_coloring
from repro.graph.rcm import rcm_ordering
from repro.perf import ExperimentResult
from repro.sparse.properties import bandwidth
from repro.sparse.suite import get_suite_matrix


@register("ord_study", title="Ordering strategies vs SpTRSV parallelism",
          tags=("extension", "study", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Per-ordering bandwidth and SpTRSV parallelism."""
    matrices = list(matrices or default_matrices())

    def reduce(sims) -> ExperimentResult:
        result = ExperimentResult(
            experiment="ord_study",
            title="Ordering strategies: bandwidth vs SpTRSV parallelism",
            columns=[
                "matrix",
                "bw_natural", "bw_rcm", "bw_colored",
                "par_natural", "par_rcm", "par_colored",
            ],
        )
        for name in matrices:
            matrix = get_suite_matrix(name, scale=scale, with_rhs=False)
            orderings = {
                "natural": np.arange(matrix.n_rows),
                "rcm": rcm_ordering(matrix),
                "colored": color_permutation(greedy_coloring(matrix)),
            }
            row = {"matrix": name}
            for label, perm in orderings.items():
                permuted = symmetric_permute(matrix, perm)
                row[f"bw_{label}"] = bandwidth(permuted)
                row[f"par_{label}"] = sptrsv_parallelism(
                    permuted.lower_triangle()
                )
            result.add_row(**row)
        colored_wins = sum(
            row["par_colored"] > row["par_rcm"] for row in result.rows
        )
        rcm_tightens = sum(
            row["bw_rcm"] < row["bw_natural"] for row in result.rows
        )
        result.extras = {
            "colored_parallelism_wins": colored_wins,
            "rcm_bandwidth_wins": rcm_tightens,
        }
        result.notes = (
            f"Coloring beats RCM on SpTRSV parallelism on "
            f"{colored_wins}/{len(result.rows)} matrices, while RCM "
            f"tightens bandwidth on {rcm_tightens}/{len(result.rows)} — "
            "the two orderings optimize different objectives; the paper "
            "needs parallelism, hence coloring (Sec. II-A)."
        )
        return result

    return ExperimentPlan(session=None, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Per-ordering bandwidth and SpTRSV parallelism."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Extension: analytic-model validation against the cycle simulator.

The first-order model (`repro.models.azul_analytic`) predicts iteration
cycles from static placement statistics in milliseconds; the event
simulator takes seconds.  This experiment quantifies the model's error
across matrices and mappings, and reports which bound (compute /
network / dependences) the model identifies as dominant — useful for
triaging a mapping without simulating it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models.azul_analytic import predict_iteration
from repro.parallel import SimPoint
from repro.perf import ExperimentResult


@register("model_validation", title="Analytic model vs cycle simulator",
          tags=("extension", "study", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, mappers=("round_robin", "azul"),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Predicted vs simulated iteration cycles per matrix/mapping."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {
        f"{name}/{mapper}": SimPoint(name, mapper=mapper, pe="azul")
        for name in matrices for mapper in mappers
    }

    def reduce(sims) -> ExperimentResult:
        config = session.config
        result = ExperimentResult(
            experiment="model_validation",
            title="Analytic model vs cycle simulator (iteration cycles)",
            columns=[
                "matrix", "mapper", "predicted", "simulated",
                "error_pct", "dominant_bound",
            ],
        )
        for name in matrices:
            prepared = session.prepare(name)
            for mapper in mappers:
                placement = session.placement(name, mapper)
                prediction = predict_iteration(
                    prepared.matrix, prepared.lower, placement, config
                )
                simulated = sims[f"{name}/{mapper}"]
                error = (
                    (prediction.total_cycles - simulated.total_cycles)
                    / simulated.total_cycles
                )
                # Dominant bound of the slowest predicted kernel.
                slowest = max(prediction.kernels,
                              key=lambda k: k.cycles)
                result.add_row(
                    matrix=name,
                    mapper=mapper,
                    predicted=round(prediction.total_cycles),
                    simulated=simulated.total_cycles,
                    error_pct=100.0 * error,
                    dominant_bound=slowest.dominant_bound(),
                )
        errors = np.abs(np.array(result.column("error_pct")))
        predicted = np.array(result.column("predicted"), dtype=float)
        simulated = np.array(result.column("simulated"), dtype=float)
        correlation = float(np.corrcoef(predicted, simulated)[0, 1])
        result.extras = {
            "mean_abs_error_pct": float(errors.mean()),
            "max_abs_error_pct": float(errors.max()),
            "correlation": correlation,
        }
        result.notes = (
            f"Mean |error| {errors.mean():.0f}%, max {errors.max():.0f}%, "
            f"prediction-simulation correlation {correlation:.2f}.  A "
            "first-order bound model cannot capture queuing and overlap, "
            "but it ranks mappings correctly at ~1000x less cost — "
            "enough to explore placements at the paper's 4096-tile scale "
            "where simulation is impractical in Python."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, mappers=("round_robin", "azul"),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Predicted vs simulated iteration cycles per matrix/mapping."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale, mappers=mappers)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Fig. 1 analog: GPU throughput and utilization on PCG.

The paper's Fig. 1 shows a V100 running Ginkgo PCG achieving at most
0.6% of its 7 TFLOP/s peak across six representative matrices.  Here
the calibrated GPU model reports GFLOP/s and fraction-of-peak for the
same (analog) matrices.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import GPUModel
from repro.perf import ExperimentResult


@register("fig01", title="GPU PCG throughput and utilization",
          tags=("paper", "figure", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Evaluate the GPU model on the representative matrices."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(scale=scale)

    def reduce(sims) -> ExperimentResult:
        model = GPUModel()
        result = ExperimentResult(
            experiment="fig01",
            title="GPU (V100 + Ginkgo PCG model): GFLOP/s and % of peak",
            columns=["matrix", "gflops", "pct_of_peak"],
        )
        for name in matrices:
            prepared = session.prepare(name)
            gflops = model.gflops(prepared.matrix, prepared.lower)
            result.add_row(
                matrix=name,
                gflops=gflops,
                pct_of_peak=100.0 * gflops * 1e9 / model.peak_flops,
            )
        worst = max(result.column("pct_of_peak"))
        result.notes = (
            f"Max utilization {worst:.3f}% of peak — the paper observes "
            "<= 0.6% (Fig. 1); small analog matrices are launch-overhead "
            "dominated, pushing utilization lower still."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Evaluate the GPU model on the representative matrices."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

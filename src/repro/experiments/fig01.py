"""Fig. 1 analog: GPU throughput and utilization on PCG.

The paper's Fig. 1 shows a V100 running Ginkgo PCG achieving at most
0.6% of its 7 TFLOP/s peak across six representative matrices.  Here
the calibrated GPU model reports GFLOP/s and fraction-of-peak for the
same (analog) matrices.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentSession, default_matrices
from repro.models import GPUModel
from repro.perf import ExperimentResult


def run(matrices=None, scale: int = 1) -> ExperimentResult:
    """Evaluate the GPU model on the representative matrices."""
    matrices = matrices or default_matrices()
    session = ExperimentSession(scale=scale)
    model = GPUModel()
    result = ExperimentResult(
        experiment="fig01",
        title="GPU (V100 + Ginkgo PCG model): GFLOP/s and % of peak",
        columns=["matrix", "gflops", "pct_of_peak"],
    )
    for name in matrices:
        prepared = session.prepare(name)
        gflops = model.gflops(prepared.matrix, prepared.lower)
        result.add_row(
            matrix=name,
            gflops=gflops,
            pct_of_peak=100.0 * gflops * 1e9 / model.peak_flops,
        )
    worst = max(result.column("pct_of_peak"))
    result.notes = (
        f"Max utilization {worst:.3f}% of peak — the paper observes "
        "<= 0.6% (Fig. 1); small analog matrices are launch-overhead "
        "dominated, pushing utilization lower still."
    )
    return result


def main():
    print(run())


if __name__ == "__main__":
    main()

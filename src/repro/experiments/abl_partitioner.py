"""Ablation: partitioner quality presets (Sec. VI-D, last paragraph).

"Azul uses PaToH's quality preset. If mapping time is important, users
could opt for a lower quality mapping by using the default or speed
presets."  This ablation sweeps our partitioner's presets and reports
mapping time, connectivity cut, traffic, and end-to-end throughput.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import analyze_traffic, build_pcg_hypergraph, map_azul
from repro.experiments.common import ExperimentSession
from repro.experiments.spec import ExperimentPlan, register
from repro.hypergraph import PartitionerOptions, connectivity_cut
from repro.perf import ExperimentResult


PRESETS = (
    ("speed", PartitionerOptions.speed),
    ("default", lambda seed=0: PartitionerOptions(seed=seed)),
    ("quality", PartitionerOptions.quality),
)


@register("abl_partitioner", title="Partitioner preset ablation",
          tags=("extension", "ablation", "sim"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep partitioner presets on one matrix."""
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        prepared = session.prepare(matrix)
        hypergraph = build_pcg_hypergraph(prepared.matrix, prepared.lower)
        result = ExperimentResult(
            experiment="abl_partitioner",
            title=f"Partitioner preset ablation on {matrix}",
            columns=[
                "preset", "mapping_s", "connectivity_cut",
                "link_activations", "gflops",
            ],
        )
        placements = []
        mapping_times = []
        for label, make_options in PRESETS:
            start = time.perf_counter()
            placements.append(map_azul(
                prepared.matrix, prepared.lower, config.num_tiles,
                options=make_options(seed=0), jobs=jobs,
            ))
            mapping_times.append(time.perf_counter() - start)
        timings = session.simulate_placements(
            matrix, placements, check=False, jobs=jobs,
        )
        for (label, _), placement, mapping_seconds, timing in zip(
                PRESETS, placements, mapping_times, timings):
            assignment = np.concatenate([
                placement.a_tile, placement.l_tile, placement.vec_tile,
            ])
            traffic = analyze_traffic(
                placement, prepared.matrix, prepared.lower, torus
            )
            result.add_row(
                preset=label,
                mapping_s=mapping_seconds,
                connectivity_cut=connectivity_cut(hypergraph, assignment),
                link_activations=traffic.total_link_activations,
                gflops=timing.gflops(),
            )
        result.extras = {
            "speed_s": result.rows[0]["mapping_s"],
            "quality_s": result.rows[-1]["mapping_s"],
            "speed_cut": result.rows[0]["connectivity_cut"],
            "quality_cut": result.rows[-1]["connectivity_cut"],
        }
        result.notes = (
            "Higher-effort presets spend more mapping time for lower cut "
            "and traffic — the PaToH preset tradeoff of Sec. VI-D."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep partitioner presets on one matrix."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Ablation: number of temporal balance quantiles (Sec. IV-C).

The paper uses q = 5 quantiles for time balancing (Fig. 17).  This
ablation sweeps q on a dependence-limited SpTRSV, reporting kernel
cycles: q = 0 is the nonzero-balancing baseline, larger q approximates
per-level balancing at growing partitioning cost.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import map_azul
from repro.dataflow import build_sptrsv_program
from repro.experiments.common import ExperimentSession, mapper_options
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.sim import AZUL_PE, KernelSimulator


@register("abl_quantiles", title="Temporal balance quantile sweep",
          tags=("extension", "ablation", "sim"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, quantile_counts=(0, 2, 5, 10),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep the quantile count on one matrix's forward SpTRSV."""
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        prepared = session.prepare(matrix)
        result = ExperimentResult(
            experiment="abl_quantiles",
            title=f"Time-balancing quantile sweep on {matrix} (fwd SpTRSV)",
            columns=["q", "sptrsv_cycles", "speedup_vs_q0", "mapping_s"],
        )
        baseline_cycles = None
        for q in quantile_counts:
            start = time.perf_counter()
            placement = map_azul(
                prepared.matrix, prepared.lower, config.num_tiles,
                q=q, options=mapper_options("speed"),
            )
            mapping_seconds = time.perf_counter() - start
            program = build_sptrsv_program(
                prepared.lower, placement.l_tile, placement.vec_tile,
                torus,
            )
            kernel = KernelSimulator(program, torus, config, AZUL_PE).run(
                b=prepared.b
            )
            if baseline_cycles is None:
                baseline_cycles = kernel.cycles
            result.add_row(
                q=q,
                sptrsv_cycles=kernel.cycles,
                speedup_vs_q0=baseline_cycles / max(kernel.cycles, 1),
                mapping_s=mapping_seconds,
            )
        best = max(result.column("speedup_vs_q0"))
        result.extras = {"best_speedup": best}
        result.notes = (
            f"Best time-balancing speedup {best:.2f}x over nonzero-only "
            "balancing (the paper reports 3.5x at 4096 tiles with q=5)."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, quantile_counts=(0, 2, 5, 10),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the quantile count on one matrix's forward SpTRSV."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale,
                    quantile_counts=quantile_counts)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Extension: the whole Table II solver family timed on Azul.

Sec. II-B argues Azul's kernels generalize beyond PCG; this experiment
times one iteration of each Table II solver on the same mapped operands
and shows they all achieve comparable throughput — the machine
accelerates the kernels, not one specific algorithm.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession
from repro.experiments.spec import ExperimentPlan, register
from repro.parallel import SimPoint
from repro.perf import ExperimentResult
from repro.sim import AzulMachine
from repro.sim.solver_timing import RECIPES, solver_iteration_cycles


@register("tab2_sim", title="Table II solver family on Azul",
          tags=("extension", "table", "sim", "sweep"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """Per-solver iteration cycles and GFLOP/s on one mapped matrix."""
    session = ExperimentSession(config, scale=scale)

    # The base PCG iteration is a standard sweep point: routed through
    # the executor it shares the artifact cache and the global sweep
    # with every other experiment that simulates this matrix.
    points = {"pcg": SimPoint(matrix, check=False)}

    def reduce(sims) -> ExperimentResult:
        config = session.config
        prepared = session.prepare(matrix)
        placement = session.placement(matrix, "azul")
        machine = AzulMachine(config)
        program = machine.compile(prepared.matrix, prepared.lower,
                                  placement)
        base = sims["pcg"]

        result = ExperimentResult(
            experiment="tab2_sim",
            title=f"Table II solver family on Azul ({matrix})",
            columns=["solver", "cycles_per_iter", "gflops"],
        )
        for recipe in RECIPES:
            timing = solver_iteration_cycles(machine, program, base,
                                             recipe)
            result.add_row(
                solver=timing["solver"],
                cycles_per_iter=timing["cycles"],
                gflops=timing["gflops"],
            )
        values = result.column("gflops")
        result.extras = {
            "min_gflops": min(values),
            "max_gflops": max(values),
        }
        result.notes = (
            "All Table II solvers run within a narrow throughput band on "
            "the same mapped operands — Azul accelerates the kernels, "
            "not one algorithm (Sec. II-B)."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """Per-solver iteration cycles and GFLOP/s on one mapped matrix."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

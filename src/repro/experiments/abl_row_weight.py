"""Ablation: row-hyperedge overweighting (Sec. IV-C, last paragraph).

The paper assigns row (reduction) hyperedges a larger weight than
column (multicast) hyperedges because splitting a reduction costs a
standalone Add and can delay variable eliminations.  This ablation
sweeps the row/column weight ratio and reports reduction messages,
total traffic, and simulated cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import analyze_traffic, map_azul
from repro.experiments.common import ExperimentSession, mapper_options
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult


@register("abl_row_weight", title="Row-hyperedge overweighting ablation",
          tags=("extension", "ablation", "sim"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, weights=(1.0, 2.0, 4.0),
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Sweep the row-edge weight on one matrix."""
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        prepared = session.prepare(matrix)
        result = ExperimentResult(
            experiment="abl_row_weight",
            title=f"Row-edge weight ablation on {matrix}",
            columns=[
                "row_weight", "reduction_msgs", "multicast_msgs",
                "link_activations", "cycles",
            ],
        )
        placements = [
            map_azul(
                prepared.matrix, prepared.lower, config.num_tiles,
                row_weight=weight, options=mapper_options("speed"),
            )
            for weight in weights
        ]
        timings = session.simulate_placements(
            matrix, placements, check=False, jobs=jobs,
        )
        for weight, placement, timing in zip(weights, placements,
                                             timings):
            traffic = analyze_traffic(
                placement, prepared.matrix, prepared.lower, torus
            )
            result.add_row(
                row_weight=weight,
                reduction_msgs=sum(
                    k.reduction_messages for k in traffic.kernels
                ),
                multicast_msgs=sum(
                    k.multicast_messages for k in traffic.kernels
                ),
                link_activations=traffic.total_link_activations,
                cycles=timing.total_cycles,
            )
        baseline = result.rows[0]["reduction_msgs"]
        weighted = min(row["reduction_msgs"] for row in result.rows[1:])
        result.extras = {
            "reduction_msg_change": weighted / max(baseline, 1),
        }
        result.notes = (
            "Raising the row weight trades multicast traffic for fewer "
            "split reductions (Sec. IV-C's rationale); the paper uses a "
            "fixed overweight."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, weights=(1.0, 2.0, 4.0),
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the row-edge weight on one matrix."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale,
                    weights=weights)


def main():
    print(run())


if __name__ == "__main__":
    main()

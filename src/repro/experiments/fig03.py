"""Fig. 3 analog: GPU PCG runtime breakdown by kernel.

The paper shows SpTRSV and SpMV dominating Ginkgo PCG runtime on a
V100, with SpTRSV the largest share on most matrices.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import GPUModel
from repro.perf import ExperimentResult


@register("fig03", title="GPU PCG runtime breakdown by kernel",
          tags=("paper", "figure", "analytic"))
def spec(matrices=None, scale: int = 1,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Per-kernel GPU runtime fractions for the representative set."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(scale=scale)

    def reduce(sims) -> ExperimentResult:
        model = GPUModel()
        result = ExperimentResult(
            experiment="fig03",
            title="GPU PCG runtime breakdown by kernel (normalized)",
            columns=["matrix", "sptrsv", "spmv", "vector"],
        )
        for name in matrices:
            prepared = session.prepare(name)
            fractions = model.pcg_iteration_time(
                prepared.matrix, prepared.lower
            ).fractions()
            result.add_row(
                matrix=name,
                sptrsv=fractions["sptrsv"],
                spmv=fractions["spmv"],
                vector=fractions["vector"],
            )
        result.notes = (
            "Paper shape: SpMV + SpTRSV dominate, SpTRSV largest on most "
            "matrices (Fig. 3)."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrices=None, scale: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Per-kernel GPU runtime fractions for the representative set."""
    return spec.run(jobs=jobs, matrices=matrices, scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

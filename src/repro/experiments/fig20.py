"""Fig. 20 analog: end-to-end PCG speedup over the GPU baseline.

The headline comparison: GPU (analytic model), ALRESCHA (bandwidth-
bound model), Dalorex (simulated: round-robin mapping + in-order
cores), and Azul (simulated: hypergraph mapping + specialized PEs).
Speedups are per-iteration-time ratios; all architectures execute the
same algorithm so iteration counts cancel.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AzulConfig
from repro.experiments.common import ExperimentSession, default_matrices
from repro.experiments.spec import ExperimentPlan, register
from repro.models import AlreschaModel, GPUModel
from repro.parallel import SimPoint
from repro.perf import ExperimentResult, gmean


@register("fig20", title="End-to-end PCG speedup over the GPU",
          tags=("paper", "figure", "sim", "sweep"))
def spec(matrices=None, config: Optional[AzulConfig] = None,
         scale: int = 1, jobs: Optional[int] = None) -> ExperimentPlan:
    """End-to-end comparison across the four architectures."""
    matrices = list(matrices or default_matrices())
    session = ExperimentSession(config, scale=scale)

    points = {}
    for name in matrices:
        points[f"{name}/dalorex"] = SimPoint(
            name, mapper="round_robin", pe="dalorex"
        )
        points[f"{name}/azul"] = SimPoint(name, mapper="azul", pe="azul")

    def reduce(sims) -> ExperimentResult:
        config = session.config
        gpu = GPUModel()
        alrescha = AlreschaModel()
        result = ExperimentResult(
            experiment="fig20",
            title="PCG speedup over GPU (matrices sorted by parallelism)",
            columns=[
                "matrix", "alrescha_speedup", "dalorex_speedup",
                "azul_speedup", "azul_gflops",
            ],
        )
        for name in matrices:
            prepared = session.prepare(name)
            gpu_time = gpu.pcg_iteration_time(
                prepared.matrix, prepared.lower
            ).total
            alrescha_time = alrescha.pcg_iteration_time(
                prepared.matrix, prepared.lower
            )
            dalorex_sim = sims[f"{name}/dalorex"]
            azul_sim = sims[f"{name}/azul"]
            dalorex_time = dalorex_sim.total_cycles / config.frequency_hz
            azul_time = azul_sim.total_cycles / config.frequency_hz
            result.add_row(
                matrix=name,
                alrescha_speedup=gpu_time / alrescha_time,
                dalorex_speedup=gpu_time / dalorex_time,
                azul_speedup=gpu_time / azul_time,
                azul_gflops=azul_sim.gflops(),
            )
        result.extras = {
            "alrescha": gmean(result.column("alrescha_speedup")),
            "dalorex": gmean(result.column("dalorex_speedup")),
            "azul": gmean(result.column("azul_speedup")),
        }
        result.notes = (
            "gmean speedup over GPU: "
            f"ALRESCHA {gmean(result.column('alrescha_speedup')):.1f}x, "
            f"Dalorex {gmean(result.column('dalorex_speedup')):.1f}x, "
            f"Azul {gmean(result.column('azul_speedup')):.1f}x "
            "(paper at 4096 tiles: 1.4x / 2.3x / 217x). Reproduced shape: "
            "Azul wins on every matrix and the GPU loses everywhere. "
            "Scale caveat: at ~1e4-nnz matrices the GPU and Dalorex pay "
            "fixed overheads (kernel launches; per-row control) that the "
            "launch-free ALRESCHA model does not, so ALRESCHA's relative "
            "position is inflated versus the paper's 1e7-nnz inputs."
        )
        return result

    return ExperimentPlan(session=session, points=points, reduce=reduce)


def run(matrices=None, config: Optional[AzulConfig] = None,
        scale: int = 1, jobs: Optional[int] = None) -> ExperimentResult:
    """End-to-end comparison across the four architectures."""
    return spec.run(jobs=jobs, matrices=matrices, config=config,
                    scale=scale)


def main():
    print(run())


if __name__ == "__main__":
    main()

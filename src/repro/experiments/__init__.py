"""Experiment harness: one declarative spec per paper table/figure.

Each module registers an :class:`~repro.experiments.spec.ExperimentSpec`
(keyed simulation points + a ``reduce`` into an ``ExperimentResult``)
and keeps a thin ``run(...)`` shim for standalone use.  The staged
executor (:mod:`repro.experiments.executor`) deduplicates points
globally across experiments, checkpoints results for ``--resume``, and
isolates failures; drive it via ``python -m repro.experiments.runner``.
See DESIGN.md for the experiment index and docs/experiments.md for the
spec/executor contract.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    load_spec,
    load_specs,
    run_experiment,
)
from repro.experiments.spec import ExperimentPlan, ExperimentSpec, register

__all__ = [
    "EXPERIMENTS",
    "ExperimentPlan",
    "ExperimentSpec",
    "load_spec",
    "load_specs",
    "register",
    "run_experiment",
]

"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> ExperimentResult`` reproducing the
rows/series of one artifact from the paper's evaluation, and can be run
standalone via ``python -m repro.experiments.runner <id>``.  See
DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured records.
"""

from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]

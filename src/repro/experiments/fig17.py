"""Fig. 17 analog: temporal load balancing of SpTRSV.

The paper shows that balancing only nonzeros leaves some tiles loaded
with late-dataflow work, creating a long serial tail in the consph
SpTRSV; adding depth-quantile balance constraints (q=5) removes the
tail and yields a 3.5x kernel speedup.  This experiment simulates the
forward SpTRSV of the consph analog with q=0 and q=5 mappings and
reports the issue-timeline plus the speedup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core import map_azul
from repro.dataflow import build_sptrsv_program
from repro.experiments.common import ExperimentSession, mapper_options
from repro.experiments.spec import ExperimentPlan, register
from repro.perf import ExperimentResult
from repro.sim import AZUL_PE, KernelSimulator


def _simulate_sptrsv(prepared, placement, config, torus):
    program = build_sptrsv_program(
        prepared.lower, placement.l_tile, placement.vec_tile, torus
    )
    simulator = KernelSimulator(
        program, torus, config, AZUL_PE, record_issue_trace=True
    )
    return simulator.run(b=prepared.b)


@register("fig17", title="Temporal load balancing of SpTRSV",
          tags=("paper", "figure", "sim"))
def spec(matrix: str = "consph", config: Optional[AzulConfig] = None,
         scale: int = 1, n_buckets: int = 10, q: int = 5,
         jobs: Optional[int] = None) -> ExperimentPlan:
    """Compare nonzero-balanced (q=0) vs time-balanced (q) mappings."""
    session = ExperimentSession(config, scale=scale)

    def reduce(sims) -> ExperimentResult:
        config = session.config
        torus = make_geometry(config)
        prepared = session.prepare(matrix)
        options = mapper_options("speed")

        results = {}
        for label, quantiles in (("nonzero_balanced", 0),
                                 ("time_balanced", q)):
            placement = map_azul(
                prepared.matrix, prepared.lower, config.num_tiles,
                q=quantiles, options=options,
            )
            results[label] = _simulate_sptrsv(
                prepared, placement, config, torus
            )

        result = ExperimentResult(
            experiment="fig17",
            title=(f"SpTRSV issue timeline on {matrix}: "
                   "nonzero vs time balancing"),
            columns=["cycle_bucket", "nonzero_balanced", "time_balanced"],
        )
        horizon = max(r.cycles for r in results.values())
        edges = np.linspace(0, horizon, n_buckets + 1)
        histograms = {
            label: np.histogram(
                np.array([entry[0] for entry in r.issue_trace]), bins=edges
            )[0]
            for label, r in results.items()
        }
        for bucket in range(n_buckets):
            result.add_row(
                cycle_bucket=(
                    f"{int(edges[bucket])}-{int(edges[bucket + 1])}"
                ),
                nonzero_balanced=int(
                    histograms["nonzero_balanced"][bucket]
                ),
                time_balanced=int(histograms["time_balanced"][bucket]),
            )
        speedup = (
            results["nonzero_balanced"].cycles
            / max(results["time_balanced"].cycles, 1)
        )
        result.extras = {
            "speedup": speedup,
            "nonzero_balanced_cycles": results["nonzero_balanced"].cycles,
            "time_balanced_cycles": results["time_balanced"].cycles,
        }
        result.notes = (
            f"Time balancing (q={q}) speeds up this SpTRSV by "
            f"{speedup:.2f}x (paper: 3.5x on consph, Fig. 17); the "
            "timeline shows the long tail of late issues shrinking."
        )
        return result

    return ExperimentPlan(session=session, reduce=reduce)


def run(matrix: str = "consph", config: Optional[AzulConfig] = None,
        scale: int = 1, n_buckets: int = 10, q: int = 5,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Compare nonzero-balanced (q=0) vs time-balanced (q) mappings."""
    return spec.run(jobs=jobs, matrix=matrix, config=config, scale=scale,
                    n_buckets=n_buckets, q=q)


def main():
    print(run())


if __name__ == "__main__":
    main()

"""Process-local metrics registry: counters, gauges, histograms.

The registry is deliberately tiny and dependency-free (standard
library only — ``repro.obs`` is a leaf package every other layer may
import).  It is *not* a sampling profiler: instrumentation sites call
:meth:`MetricsRegistry.counter_inc` / :meth:`gauge_set` /
:meth:`observe` explicitly, and the module facade (:mod:`repro.obs`)
short-circuits every call when observability is disabled, so the
registry only ever runs when someone asked for telemetry.

Histograms keep streaming aggregates (count/sum/min/max) plus a
bounded reservoir of raw samples — enough for the metrics artifact to
report means and tails without unbounded memory on long sweeps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Raw samples kept per histogram (aggregates are exact regardless).
HISTOGRAM_SAMPLE_CAP = 512


@dataclass
class Histogram:
    """Streaming aggregate of observed values (e.g. phase seconds)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe name -> value store for one process.

    Metric names are dotted paths grouped by subsystem
    (``cache.hits_disk``, ``partition.coarsen.seconds``,
    ``sweep.points``); see ``docs/observability.md`` for the taxonomy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writes --------------------------------------------------------
    def counter_inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(float(value))

    # -- reads ---------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        """The histogram for ``name`` (empty if never observed)."""
        with self._lock:
            return self._histograms.get(name, Histogram())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests / between runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

"""``repro.obs`` — the pipeline-wide observability leaf library.

One process-local metrics registry (counters, gauges, histograms,
timers), one span tracer, and two exporters (JSON metrics artifact,
Chrome-trace / Perfetto file) behind a module-level facade:

    import repro.obs as obs

    obs.enable()                        # off by default
    obs.counter("cache.hits_disk")
    with obs.span("pipeline.simulate", matrix="tmt_sym"):
        ...
    with obs.timer("partition.coarsen"):     # histogram + span
        ...
    obs.write_metrics("metrics.json", extra={"overrides": ...})
    obs.write_chrome_trace("trace.json")

Design constraints (see ``docs/observability.md``):

* **Leaf library.**  ``repro.obs`` imports nothing from ``repro``
  outside itself (standard library only), so every layer — simulator,
  partitioner, cache, sweep executor, experiments — may instrument
  itself without creating cycles.  Enforced by
  ``tools/check_layers.py`` and ``.importlinter``.
* **Near-zero cost when disabled.**  Observability is *off* by
  default; every facade call short-circuits on one module-global flag
  and ``span``/``timer`` return a shared no-op handle.  The simulator
  engines' hot loops carry **no** instrumentation at all — their issue
  traces are bridged post-hoc from ``KernelResult.issue_trace`` — so
  the disabled-path overhead is bounded by a handful of flag checks
  per pipeline stage (guarded by the ``sim_engine`` benchmark suite).
* **Process-local.**  Worker processes spawned by ``repro.parallel``
  or the partitioner do not inherit enablement; recorded facts that
  must survive the fan-out travel in the returned results (e.g. issue
  traces), and the parent records them.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Union

from repro.obs.export import (
    METRICS_SCHEMA,
    write_chrome_trace as _write_chrome_trace_file,
    write_metrics as _write_metrics_file,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.spans import (
    NOOP_SPAN,
    NoopSpan,
    PIPELINE_PID,
    Span,
    SpanHandle,
    Tracer,
)

__all__ = [
    "METRICS_SCHEMA", "PIPELINE_PID", "Histogram", "MetricsRegistry",
    "NoopSpan", "Span", "SpanHandle", "Tracer",
    "enable", "disable", "enabled", "metrics_enabled", "tracing_enabled",
    "counter", "gauge", "observe", "span", "timer",
    "registry", "tracer", "snapshot", "reset",
    "allocate_pid", "add_trace_events",
    "write_metrics", "write_chrome_trace",
]


class _State:
    """Module-global enablement flags (one attribute read per call)."""

    __slots__ = ("metrics", "tracing")

    def __init__(self) -> None:
        self.metrics = False
        self.tracing = False


_STATE = _State()
_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def enable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn observability on (both facets by default)."""
    _STATE.metrics = bool(metrics)
    _STATE.tracing = bool(tracing)


def disable() -> None:
    """Turn every facet off; the no-op fast paths take over."""
    _STATE.metrics = False
    _STATE.tracing = False


def enabled() -> bool:
    """True when either facet is on."""
    return _STATE.metrics or _STATE.tracing


def metrics_enabled() -> bool:
    return _STATE.metrics


def tracing_enabled() -> bool:
    return _STATE.tracing


def registry() -> MetricsRegistry:
    """The process-local registry (live object, not a copy)."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-local tracer (live object, not a copy)."""
    return _TRACER


def reset() -> None:
    """Drop all collected metrics, spans, and events (tests / reruns)."""
    _REGISTRY.reset()
    _TRACER.reset()


def snapshot() -> Dict[str, Dict[str, Any]]:
    """JSON-ready copy of every metric."""
    return _REGISTRY.snapshot()


# ----------------------------------------------------------------------
# Recording facade (each call short-circuits when disabled)
# ----------------------------------------------------------------------
def counter(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` by ``value`` (no-op when disabled)."""
    if _STATE.metrics:
        _REGISTRY.counter_inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    if _STATE.metrics:
        _REGISTRY.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram sample (no-op when disabled)."""
    if _STATE.metrics:
        _REGISTRY.observe(name, value)


def span(name: str, **args: Any) -> Union[SpanHandle, NoopSpan]:
    """A traced region; returns the shared no-op handle when disabled."""
    if _STATE.tracing:
        return _TRACER.span(name, **args)
    return NOOP_SPAN


class _TimerSpan(SpanHandle):
    """A span that also records its duration as a histogram sample."""

    __slots__ = ("_metric",)

    def __init__(self, tracer_: Tracer, name: str, args: Dict[str, Any],
                 metric: str) -> None:
        super().__init__(tracer_, name, args)
        self._metric = metric

    def __exit__(self, *exc_info: object) -> None:
        SpanHandle.__exit__(self, *exc_info)
        if _STATE.metrics:
            _REGISTRY.observe(self._metric, self._span.duration_us / 1e6)


class _MetricTimer:
    """Histogram-only timer used when tracing is off but metrics on."""

    __slots__ = ("_metric", "_start")

    def __init__(self, metric: str) -> None:
        self._metric = metric
        self._start = 0.0

    def set(self, **kwargs: Any) -> None:
        pass

    def __enter__(self) -> "_MetricTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        _REGISTRY.observe(self._metric, time.perf_counter() - self._start)


def timer(name: str, **args: Any) -> Union[SpanHandle, _MetricTimer,
                                           NoopSpan]:
    """Timed phase: a ``<name>.seconds`` histogram sample *and* a span.

    The workhorse of phase instrumentation — one ``with obs.timer(...)``
    feeds both the metrics artifact (per-phase timer histograms) and
    the Chrome trace (a span), whichever facets are enabled.
    """
    if _STATE.tracing:
        return _TimerSpan(_TRACER, name, dict(args), f"{name}.seconds")
    if _STATE.metrics:
        return _MetricTimer(f"{name}.seconds")
    return NOOP_SPAN


# ----------------------------------------------------------------------
# Foreign timelines (simulator issue traces)
# ----------------------------------------------------------------------
def allocate_pid(label: str) -> int:
    """Reserve a Chrome-trace pid for a foreign timeline (0 if off)."""
    if _STATE.tracing:
        return _TRACER.allocate_pid(label)
    return 0


def add_trace_events(events: List[Dict[str, Any]]) -> None:
    """Merge pre-formed Chrome-trace events (no-op when disabled)."""
    if _STATE.tracing and events:
        _TRACER.add_events(events)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def write_metrics(path: str,
                  extra: Optional[Dict[str, Any]] = None) -> str:
    """Write the JSON metrics artifact from the live registry."""
    return _write_metrics_file(path, _REGISTRY.snapshot(), extra=extra)


def write_chrome_trace(path: str,
                       metadata: Optional[Dict[str, Any]] = None) -> str:
    """Write the Chrome-trace file from the live tracer."""
    return _write_chrome_trace_file(
        path, _TRACER.trace_events(), metadata=metadata
    )

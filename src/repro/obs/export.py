"""Exporters: JSON metrics artifact + Chrome-trace (Perfetto) file.

Both writers take plain data (a registry snapshot, a list of
Chrome-trace event dicts) so they stay decoupled from the live
:mod:`repro.obs` globals — the module facade wires them together, and
tests can exercise them with synthetic inputs.

The Chrome-trace output follows the Trace Event Format (the JSON
object form): a ``traceEvents`` list of ``"X"`` complete events and
``"M"`` metadata events, loadable directly at https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

#: Schema tag stamped into every metrics artifact.
METRICS_SCHEMA = "repro-metrics-v1"


def _atomic_write_json(path: str, payload: Dict[str, Any],
                       compact: bool = False) -> None:
    """Write JSON via a temp file + rename (never a torn artifact).

    ``compact`` drops whitespace — traces carry hundreds of thousands
    of issue events, and pretty-printing triples the file size.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        if compact:
            json.dump(payload, handle, separators=(",", ":"), default=str)
        else:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=str)
        handle.write("\n")
    os.replace(tmp, path)


def write_metrics(path: str, snapshot: Dict[str, Any],
                  extra: Optional[Dict[str, Any]] = None) -> str:
    """Write the metrics artifact next to an experiment's outputs.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (counters /
    gauges / histograms); ``extra`` adds top-level sections — the
    callers inject ``overrides`` (effective environment escape
    hatches, :func:`repro.config.overrides`) and cumulative cache
    counters so every artifact is self-describing.
    """
    payload: Dict[str, Any] = {"schema": METRICS_SCHEMA}
    payload.update(snapshot)
    if extra:
        for key, value in extra.items():
            payload[key] = value
    _atomic_write_json(path, payload)
    return path


def write_chrome_trace(path: str, events: List[Dict[str, Any]],
                       metadata: Optional[Dict[str, Any]] = None) -> str:
    """Write a Chrome-trace JSON file from collected events.

    ``events`` is the merged span + foreign-event list
    (:meth:`Tracer.trace_events`); ``metadata`` lands in ``otherData``.
    """
    payload: Dict[str, Any] = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = dict(metadata)
    _atomic_write_json(path, payload, compact=True)
    return path

"""Span-based tracing with Chrome-trace-compatible records.

A *span* is one named, timed region of the pipeline
(``pipeline.simulate``, ``partition.coarsen``, ...).  Spans nest: each
thread keeps its own stack, so a span opened while another is active
records its depth and parent name.  Finished spans accumulate on the
:class:`Tracer` and are exported as Chrome-trace ``"X"`` (complete)
events by :mod:`repro.obs.export`.

Timestamps come from :func:`time.perf_counter` relative to the
tracer's epoch, converted to microseconds (the Chrome-trace unit).
The tracer also accepts pre-formed event dicts
(:meth:`Tracer.add_events`) so callers can merge foreign timelines —
the simulator's per-cycle issue traces — into the same file under
their own process ids (:meth:`Tracer.allocate_pid`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

#: Chrome-trace process id of the wall-clock pipeline spans.
PIPELINE_PID = 1


class Span:
    """One finished (or in-flight) traced region."""

    __slots__ = ("name", "args", "start_us", "duration_us", "tid",
                 "depth", "parent")

    def __init__(self, name: str, args: Dict[str, Any], start_us: float,
                 tid: int, depth: int, parent: Optional[str]) -> None:
        self.name = name
        self.args = args
        self.start_us = start_us
        self.duration_us = 0.0
        self.tid = tid
        self.depth = depth
        self.parent = parent

    def to_event(self) -> Dict[str, Any]:
        """This span as a Chrome-trace complete event."""
        event: Dict[str, Any] = {
            "name": self.name,
            "ph": "X",
            "cat": "pipeline",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": PIPELINE_PID,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = dict(self.args)
        return event


class SpanHandle:
    """Context manager recording one span on enter/exit.

    ``set(**kwargs)`` attaches arguments mid-flight (e.g. counters
    known only at the end of the region).
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(name, args, 0.0, 0, 0, None)

    def set(self, **kwargs: Any) -> None:
        self._span.args.update(kwargs)

    def __enter__(self) -> "SpanHandle":
        tracer = self._tracer
        span = self._span
        stack = tracer._stack()
        span.depth = len(stack)
        span.parent = stack[-1].name if stack else None
        span.tid = tracer._tid()
        span.start_us = (time.perf_counter() - tracer.epoch) * 1e6
        stack.append(span)
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        span = self._span
        now_us = (time.perf_counter() - tracer.epoch) * 1e6
        span.duration_us = now_us - span.start_us
        stack = tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: mismatched exit order
            stack.remove(span)
        tracer.record(span)


class NoopSpan:
    """The shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NOOP_SPAN = NoopSpan()


class Tracer:
    """Collects finished spans and foreign Chrome-trace events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self._next_pid = PIPELINE_PID + 1

    # -- span plumbing -------------------------------------------------
    def span(self, name: str, **args: Any) -> SpanHandle:
        return SpanHandle(self, name, args)

    def record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        """Small stable per-thread id (0 = the first thread seen)."""
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
            return tid

    def active_span(self) -> Optional[Span]:
        """The innermost in-flight span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- foreign events ------------------------------------------------
    def allocate_pid(self, label: str) -> int:
        """Reserve a Chrome-trace process id for a foreign timeline.

        Emits the ``process_name`` metadata event so the timeline shows
        up under ``label`` in Perfetto.
        """
        with self._lock:
            pid = self._next_pid
            self._next_pid += 1
            self.events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            })
            return pid

    def add_events(self, events: List[Dict[str, Any]]) -> None:
        """Append pre-formed Chrome-trace event dicts."""
        with self._lock:
            self.events.extend(events)

    # -- export / lifecycle --------------------------------------------
    def trace_events(self) -> List[Dict[str, Any]]:
        """Every collected event, spans first, Chrome-trace-ready.

        Empty when nothing was recorded — the pipeline process_name
        metadata is only emitted alongside actual content.
        """
        with self._lock:
            if not self.spans and not self.events:
                return []
            pipeline_meta: List[Dict[str, Any]] = [{
                "name": "process_name",
                "ph": "M",
                "pid": PIPELINE_PID,
                "tid": 0,
                "args": {"name": "repro pipeline (wall clock)"},
            }]
            return (
                pipeline_meta
                + [span.to_event() for span in self.spans]
                + list(self.events)
            )

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self.events.clear()
            self._tids.clear()
            self._next_pid = PIPELINE_PID + 1
            self.epoch = time.perf_counter()
        self._local = threading.local()

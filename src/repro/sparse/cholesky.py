"""Symbolic sparse Cholesky factorization (direct-solver fill analysis).

The paper motivates iterative solvers by the fill-in of direct methods
(Sec. II): factors are much denser than A — sometimes 1000x — causing
"enormous storage and computation overheads".  This module computes the
exact nonzero structure of the Cholesky factor L (zero fill-in *not*
assumed, unlike IC(0)) via Liu's elimination-tree algorithm, plus the
factorization FLOP count, so the iterative-vs-direct tradeoff can be
quantified on any matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotSymmetricError
from repro.sparse.csr import CSRMatrix


def elimination_tree(matrix: CSRMatrix) -> np.ndarray:
    """Elimination tree of a symmetric matrix (Liu's algorithm).

    Returns ``parent`` where ``parent[i]`` is i's parent in the etree
    (-1 for roots).  Uses path compression via virtual ancestors for
    near-linear runtime.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise NotSymmetricError("elimination tree requires a square matrix")
    n = matrix.n_rows
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = matrix.indptr, matrix.indices
    for i in range(n):
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            # Walk from j up to the current root, compressing the path.
            while j != -1 and j < i:
                next_ancestor = ancestor[j]
                ancestor[j] = i
                if next_ancestor == -1:
                    parent[j] = i
                    break
                j = int(next_ancestor)
    return parent


@dataclass(frozen=True)
class SymbolicFactor:
    """Structure of the Cholesky factor (no numeric values).

    Attributes
    ----------
    row_counts:
        Nonzeros in each row of L (including the diagonal).
    nnz:
        Total nonzeros of L.
    parent:
        The elimination tree.
    """

    row_counts: np.ndarray
    nnz: int
    parent: np.ndarray

    def fill_ratio(self, matrix: CSRMatrix) -> float:
        """nnz(L) / nnz(tril(A)): how much denser the factor is."""
        lower_nnz = matrix.lower_triangle().nnz
        return self.nnz / lower_nnz if lower_nnz else 0.0


def symbolic_cholesky(matrix: CSRMatrix) -> SymbolicFactor:
    """Compute the exact row structure of the Cholesky factor.

    Row i of L contains j iff j is on an etree path from some
    ``k in pattern(A_i, k < i)`` up to i; computed by marking walks up
    the elimination tree (the standard row-subtree characterization).
    """
    n = matrix.n_rows
    parent = elimination_tree(matrix)
    indptr, indices = matrix.indptr, matrix.indices
    marker = np.full(n, -1, dtype=np.int64)
    row_counts = np.ones(n, dtype=np.int64)  # the diagonal
    for i in range(n):
        marker[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            while j != -1 and j < i and marker[j] != i:
                marker[j] = i
                row_counts[i] += 1
                j = int(parent[j])
    return SymbolicFactor(
        row_counts=row_counts,
        nnz=int(row_counts.sum()),
        parent=parent,
    )


def cholesky_flops(matrix: CSRMatrix) -> int:
    """FLOPs of the numeric Cholesky factorization.

    ``sum_j c_j^2`` where ``c_j`` is column j's below-diagonal count —
    the standard operation count (up to constant factors) — computed by
    replaying the symbolic row walks.
    """
    n = matrix.n_rows
    parent = elimination_tree(matrix)
    indptr, indices = matrix.indptr, matrix.indices
    marker = np.full(n, -1, dtype=np.int64)
    col_counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        marker[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            while j != -1 and j < i and marker[j] != i:
                marker[j] = i
                col_counts[j] += 1  # L[i, j] is below-diagonal in col j
                j = int(parent[j])
    return int(np.sum(col_counts.astype(np.int64) ** 2) + col_counts.sum())


def direct_vs_iterative_flops(matrix: CSRMatrix, lower_ic0: CSRMatrix,
                              pcg_iterations: int) -> dict:
    """Compare direct-factorization cost against a full PCG solve.

    Returns FLOP counts for the one-time Cholesky factorization and for
    ``pcg_iterations`` PCG iterations (SpMV + two IC(0) solves each) —
    the Sec. II tradeoff.
    """
    from repro.sparse.ops import spmv_flops, sptrsv_flops

    per_iteration = (
        spmv_flops(matrix)
        + 2 * sptrsv_flops(lower_ic0)
        + 2 * matrix.n_rows * 6
    )
    return {
        "direct_factorization": cholesky_flops(matrix),
        "pcg_total": per_iteration * pcg_iterations,
        "pcg_per_iteration": per_iteration,
    }

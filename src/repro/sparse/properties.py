"""Structural and storage properties of sparse matrices.

Includes the SRAM footprint accounting used to size matrices against the
machine's distributed memory (paper Table IV reports per-matrix A and b
footprints in MB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix


def is_symmetric(matrix: CSRMatrix, rtol: float = 1e-10) -> bool:
    """Check numeric symmetry (pattern and values) of a square matrix."""
    if matrix.shape[0] != matrix.shape[1]:
        return False
    transpose = matrix.transpose()
    return (
        np.array_equal(matrix.indptr, transpose.indptr)
        and np.array_equal(matrix.indices, transpose.indices)
        and np.allclose(matrix.data, transpose.data, rtol=rtol, atol=1e-14)
    )


def is_lower_triangular(matrix: CSRMatrix) -> bool:
    """True if all stored entries lie on or below the main diagonal."""
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    return bool(np.all(matrix.indices <= rows))


def is_upper_triangular(matrix: CSRMatrix) -> bool:
    """True if all stored entries lie on or above the main diagonal."""
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    return bool(np.all(matrix.indices >= rows))


def has_full_diagonal(matrix: CSRMatrix) -> bool:
    """True if every diagonal position is explicitly stored and nonzero."""
    diag = matrix.diagonal()
    return bool(np.all(diag != 0.0))


def is_diagonally_dominant(matrix: CSRMatrix, strict: bool = True) -> bool:
    """Check (strict) diagonal dominance row-wise.

    Strict dominance of a symmetric matrix implies positive
    definiteness (Gershgorin), which is how the suite generators
    guarantee SPD without an eigendecomposition — this check scales to
    matrices too large for dense eigenvalue tests.
    """
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    off_diag = rows != matrix.indices
    off_sums = np.zeros(matrix.n_rows)
    np.add.at(off_sums, rows[off_diag], np.abs(matrix.data[off_diag]))
    diag = matrix.diagonal()
    if strict:
        return bool(np.all(diag > off_sums))
    return bool(np.all(diag >= off_sums))


def bandwidth(matrix: CSRMatrix) -> int:
    """Maximum distance of any stored entry from the main diagonal."""
    if matrix.nnz == 0:
        return 0
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    return int(np.max(np.abs(matrix.indices - rows)))


@dataclass(frozen=True)
class RowStats:
    """Summary statistics of nonzeros-per-row."""

    min: int
    max: int
    mean: float
    std: float


def nnz_per_row_stats(matrix: CSRMatrix) -> RowStats:
    """Distribution of nonzeros per row (drives per-row fixed costs)."""
    counts = matrix.row_nnz()
    return RowStats(
        min=int(counts.min()) if len(counts) else 0,
        max=int(counts.max()) if len(counts) else 0,
        mean=float(counts.mean()) if len(counts) else 0.0,
        std=float(counts.std()) if len(counts) else 0.0,
    )


def matrix_footprint_bytes(matrix: CSRMatrix, nnz_bytes: int = 12) -> int:
    """SRAM footprint of a sparse matrix.

    Matches the paper's storage model: each nonzero occupies one 96-bit
    word (64-bit value + 32-bit metadata), i.e. 12 bytes.
    """
    return matrix.nnz * nnz_bytes


def vector_footprint_bytes(n: int, vector_bytes: int = 8) -> int:
    """SRAM footprint of one dense vector of length ``n``."""
    return n * vector_bytes


def pcg_working_set_bytes(matrix: CSRMatrix, lower: CSRMatrix,
                          n_vectors: int = 6, nnz_bytes: int = 12,
                          vector_bytes: int = 8) -> int:
    """Total on-chip working set of PCG: A, L, and the solver vectors.

    PCG keeps roughly six dense vectors live (x, r, z, p, Ap and a
    scratch vector for the two-stage triangular solve).
    """
    return (
        matrix_footprint_bytes(matrix, nnz_bytes)
        + matrix_footprint_bytes(lower, nnz_bytes)
        + n_vectors * vector_footprint_bytes(matrix.n_rows, vector_bytes)
    )

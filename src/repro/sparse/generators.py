"""Synthetic SPD matrix generators.

The paper evaluates on SuiteSparse SPD matrices (Table IV).  Without
access to those files, each generator here produces a matrix class whose
*performance-relevant* characteristics match a family of paper matrices:
nonzeros per row, spatial correlation of the sparsity pattern, and
available SpTRSV parallelism (work / critical path).  All generators
return diagonally dominant symmetric matrices, which are SPD by the
Gershgorin circle theorem, so PCG with an IC(0) preconditioner converges
on every suite member.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr
from repro.sparse.csr import CSRMatrix


def _symmetrize_and_dominate(rows, cols, vals, n, shift=1.0) -> CSRMatrix:
    """Build an SPD CSR matrix from off-diagonal COO triplets.

    The pattern is symmetrized (A + A^T pattern with averaged values) and
    the diagonal is set to ``shift + sum(|off-diagonal row entries|)`` so
    the result is strictly diagonally dominant, hence SPD.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    off = rows != cols
    rows, cols, vals = rows[off], cols[off], vals[off]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    all_vals = np.concatenate([vals, vals]) * 0.5
    coo = COOMatrix(all_rows, all_cols, all_vals, (n, n)).sum_duplicates()
    row_abs = np.zeros(n)
    np.add.at(row_abs, coo.rows, np.abs(coo.data))
    diag_rows = np.arange(n)
    full = COOMatrix(
        np.concatenate([coo.rows, diag_rows]),
        np.concatenate([coo.cols, diag_rows]),
        np.concatenate([coo.data, row_abs + shift]),
        (n, n),
    )
    return coo_to_csr(full)


def tridiagonal_spd(n: int) -> CSRMatrix:
    """A tridiagonal SPD matrix (the fully-sequential SpTRSV case, Fig. 6)."""
    idx = np.arange(n - 1)
    return _symmetrize_and_dominate(idx, idx + 1, -np.ones(n - 1), n)


def grid_laplacian_2d(nx: int, ny: int, shift: float = 0.05) -> CSRMatrix:
    """5-point Laplacian on an ``nx x ny`` grid.

    Analog of the paper's grid-like matrices (thermal2, ecology2,
    tmt_sym): ~5 nonzeros/row, strong spatial correlation, high SpTRSV
    parallelism after coloring.
    """
    n = nx * ny
    ids = np.arange(n).reshape(nx, ny)
    right = (ids[:, :-1].ravel(), ids[:, 1:].ravel())
    down = (ids[:-1, :].ravel(), ids[1:, :].ravel())
    rows = np.concatenate([right[0], down[0]])
    cols = np.concatenate([right[1], down[1]])
    vals = -np.ones(len(rows))
    return _symmetrize_and_dominate(rows, cols, vals, n, shift=shift)


def grid_laplacian_3d(nx: int, ny: int, nz: int, shift: float = 0.05) -> CSRMatrix:
    """7-point Laplacian on an ``nx x ny x nz`` grid (apache2 analog)."""
    n = nx * ny * nz
    ids = np.arange(n).reshape(nx, ny, nz)
    pairs = [
        (ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel()),
        (ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel()),
        (ids[:-1, :, :].ravel(), ids[1:, :, :].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    vals = -np.ones(len(rows))
    return _symmetrize_and_dominate(rows, cols, vals, n, shift=shift)


def banded_spd(n: int, half_bandwidth: int, density: float = 0.5,
               seed: int = 0) -> CSRMatrix:
    """Random banded SPD matrix.

    Dense rows with a wide band mimic structural-analysis matrices with
    low SpTRSV parallelism (thread, crankseg_1): long dependence chains
    down the band resist coloring.
    """
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for offset in range(1, half_bandwidth + 1):
        count = n - offset
        keep = rng.random(count) < density
        idx = np.arange(count)[keep]
        rows_list.append(idx + offset)
        cols_list.append(idx)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = -rng.random(len(rows))
    return _symmetrize_and_dominate(rows, cols, vals, n)


def random_geometric_fem(n_points: int, avg_degree: int = 8, dim: int = 3,
                         dofs_per_node: int = 1, seed: int = 0) -> CSRMatrix:
    """Unstructured-mesh stiffness-matrix analog.

    Random points in the unit cube are connected to their nearest
    neighbors (a proxy for FEM mesh adjacency); each mesh node carries
    ``dofs_per_node`` degrees of freedom coupled densely within an edge,
    mimicking the dense node blocks of matrices like shipsec1, consph
    and bmwcra_1.
    """
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    points = rng.random((n_points, dim))
    tree = cKDTree(points)
    k = min(avg_degree + 1, n_points)
    _, neighbors = tree.query(points, k=k)
    src = np.repeat(np.arange(n_points), k - 1)
    dst = neighbors[:, 1:].ravel()
    d = dofs_per_node
    n = n_points * d
    if d == 1:
        rows, cols = src, dst
    else:
        # Expand each mesh edge into a dense d x d block of couplings.
        di, dj = np.meshgrid(np.arange(d), np.arange(d), indexing="ij")
        di, dj = di.ravel(), dj.ravel()
        rows = (src[:, None] * d + di[None, :]).ravel()
        cols = (dst[:, None] * d + dj[None, :]).ravel()
    vals = -rng.random(len(rows))
    return _symmetrize_and_dominate(rows, cols, vals, n)


def block_dense_spd(n_blocks: int, block_size: int, coupling_per_block: int = 4,
                    seed: int = 0) -> CSRMatrix:
    """Dense diagonal blocks with sparse inter-block coupling.

    Mimics matrices with very dense rows and low parallelism (nd12k,
    pdb1HYS): within a block every row depends on every earlier row, so
    the SpTRSV critical path is long even after coloring.
    """
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    rows_list = []
    cols_list = []
    for b in range(n_blocks):
        base = b * block_size
        local_i, local_j = np.tril_indices(block_size, k=-1)
        rows_list.append(base + local_i)
        cols_list.append(base + local_j)
        if b > 0:
            src = base + rng.integers(0, block_size, coupling_per_block)
            prev = rng.integers(0, base, coupling_per_block)
            rows_list.append(src)
            cols_list.append(prev)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = -rng.random(len(rows))
    return _symmetrize_and_dominate(rows, cols, vals, n)


def random_spd(n: int, nnz_per_row: int = 5, seed: int = 0) -> CSRMatrix:
    """Random sparse SPD matrix with no spatial correlation.

    Analog of circuit matrices (G3_circuit): few nonzeros per row at
    effectively random coordinates, which defeats position-based
    mappings (Sec. VI-C).
    """
    rng = np.random.default_rng(seed)
    n_edges = max(1, (n * max(nnz_per_row - 1, 1)) // 2)
    rows = rng.integers(0, n, n_edges)
    cols = rng.integers(0, n, n_edges)
    vals = -rng.random(n_edges)
    return _symmetrize_and_dominate(rows, cols, vals, n)


def make_rhs(matrix: CSRMatrix, seed: int = 0) -> np.ndarray:
    """Right-hand side ``b = A @ x_true`` for a random smooth ``x_true``.

    Building ``b`` from a known solution keeps solver tests exact: the
    converged answer can be compared against ``x_true`` directly.
    """
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(matrix.n_cols)
    return matrix.spmv(x_true)


def make_rhs_with_solution(matrix: CSRMatrix, seed: int = 0):
    """Like :func:`make_rhs` but also returns the generating solution."""
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(matrix.n_cols)
    return matrix.spmv(x_true), x_true

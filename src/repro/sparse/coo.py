"""Coordinate (COO) sparse matrix format.

COO is the interchange format of this package: generators build COO,
the Matrix Market reader produces COO, and the compressed formats (CSR,
CSC) are constructed from it.  Entries may be unsorted; duplicate
coordinates are summed on conversion, matching common sparse-library
semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    rows, cols:
        Integer arrays of row/column indices, one entry per nonzero.
    data:
        Float array of nonzero values, aligned with ``rows``/``cols``.
    shape:
        ``(n_rows, n_cols)`` of the matrix.
    """

    def __init__(self, rows, cols, data, shape):
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.data)):
            raise MatrixFormatError(
                "rows, cols and data must have equal length; got "
                f"{len(self.rows)}, {len(self.cols)}, {len(self.data)}"
            )
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise MatrixFormatError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        if len(self.rows) > 0:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise MatrixFormatError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise MatrixFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (before duplicate summing)."""
        return len(self.data)

    def __repr__(self):
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps row and column indices)."""
        return COOMatrix(
            self.cols.copy(),
            self.rows.copy(),
            self.data.copy(),
            (self.shape[1], self.shape[0]),
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (duplicates are summed)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate coordinates summed into one entry."""
        if self.nnz == 0:
            return COOMatrix(self.rows, self.cols, self.data, self.shape)
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        data = self.data[order]
        unique_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(data, start)
        rows = unique_keys // self.shape[1]
        cols = unique_keys % self.shape[1]
        return COOMatrix(rows, cols, summed, self.shape)

    def prune_zeros(self, tol: float = 0.0) -> "COOMatrix":
        """Return a copy with entries of magnitude <= ``tol`` removed."""
        keep = np.abs(self.data) > tol
        return COOMatrix(
            self.rows[keep], self.cols[keep], self.data[keep], self.shape
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense, tol: float = 0.0) -> "COOMatrix":
        """Build a COO matrix from a dense array, dropping near-zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls(rows, cols, dense[rows, cols], dense.shape)

"""Sparsity-pattern analysis: spatial correlation and structure metrics.

Sec. VI-C explains *why* position-based mappings sometimes work:
"they only effectively minimize inter-partition communication if a
matrix is spatially correlated, i.e., adjacent rows contain similar
nonzero column coordinates.  In some cases, this assumption holds ...
However, this assumption does not hold universally."  These metrics
quantify that property so the claim can be tested empirically
(experiment ``corr_study``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix


def row_jaccard(matrix: CSRMatrix, i: int, j: int) -> float:
    """Jaccard similarity of two rows' column-coordinate sets."""
    cols_i, _ = matrix.row(i)
    cols_j, _ = matrix.row(j)
    if len(cols_i) == 0 and len(cols_j) == 0:
        return 1.0
    intersection = len(np.intersect1d(cols_i, cols_j, assume_unique=True))
    union = len(cols_i) + len(cols_j) - intersection
    return intersection / union if union else 0.0


def spatial_correlation(matrix: CSRMatrix, lag: int = 1) -> float:
    """Mean Jaccard similarity of rows ``lag`` apart.

    High values mean adjacent rows touch similar columns (grids, banded
    matrices); near-zero values mean coordinates are uncorrelated
    (circuit matrices, permuted matrices) — the regime where Block and
    SparseP mappings break down.
    """
    n = matrix.n_rows
    if n <= lag:
        return 0.0
    similarities = [
        row_jaccard(matrix, i, i + lag) for i in range(n - lag)
    ]
    return float(np.mean(similarities))


def correlation_decay(matrix: CSRMatrix, max_lag: int = 8) -> np.ndarray:
    """Spatial correlation as a function of row distance."""
    return np.array([
        spatial_correlation(matrix, lag) for lag in range(1, max_lag + 1)
    ])


@dataclass(frozen=True)
class PatternProfile:
    """Summary of a sparsity pattern's structure."""

    n: int
    nnz: int
    nnz_per_row: float
    bandwidth: int
    spatial_correlation: float
    diagonal_fraction: float

    def is_spatially_correlated(self, threshold: float = 0.2) -> bool:
        """Whether position-based mappings can exploit this pattern."""
        return self.spatial_correlation >= threshold


def pattern_profile(matrix: CSRMatrix) -> PatternProfile:
    """Compute the full structural profile of a matrix."""
    from repro.sparse.properties import bandwidth as bandwidth_of

    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    near_diagonal = np.abs(matrix.indices - rows) <= max(
        1, matrix.n_rows // 100
    )
    return PatternProfile(
        n=matrix.n_rows,
        nnz=matrix.nnz,
        nnz_per_row=matrix.nnz / max(matrix.n_rows, 1),
        bandwidth=bandwidth_of(matrix),
        spatial_correlation=spatial_correlation(matrix),
        diagonal_fraction=float(near_diagonal.mean()) if matrix.nnz else 0.0,
    )

"""Conversions between sparse formats (and to/from SciPy for testing).

All conversions sum duplicate COO entries and produce sorted indices in
the compressed formats, so downstream kernels can rely on ordered rows
and columns.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert a COO matrix to CSR (duplicates summed, columns sorted)."""
    coo = coo.sum_duplicates()
    n_rows = coo.shape[0]
    order = np.lexsort((coo.cols, coo.rows))
    rows = coo.rows[order]
    counts = np.bincount(rows, minlength=n_rows)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CSRMatrix(indptr, coo.cols[order], coo.data[order], coo.shape)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert a COO matrix to CSC (duplicates summed, rows sorted)."""
    coo = coo.sum_duplicates()
    n_cols = coo.shape[1]
    order = np.lexsort((coo.rows, coo.cols))
    cols = coo.cols[order]
    counts = np.bincount(cols, minlength=n_cols)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CSCMatrix(indptr, coo.rows[order], coo.data[order], coo.shape)


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Expand a CSR matrix into coordinate form."""
    rows = np.repeat(np.arange(csr.n_rows), csr.row_nnz())
    return COOMatrix(rows, csr.indices.copy(), csr.data.copy(), csr.shape)


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Expand a CSC matrix into coordinate form."""
    cols = np.repeat(np.arange(csc.n_cols), csc.col_nnz())
    return COOMatrix(csc.indices.copy(), cols, csc.data.copy(), csc.shape)


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Convert CSR to CSC."""
    return coo_to_csc(csr_to_coo(csr))


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Convert CSC to CSR."""
    return coo_to_csr(csc_to_coo(csc))


def from_scipy(mat) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from any SciPy sparse matrix."""
    sp = mat.tocoo()
    coo = COOMatrix(sp.row, sp.col, sp.data, sp.shape)
    return coo_to_csr(coo)


def to_scipy(csr: CSRMatrix):
    """Convert a :class:`CSRMatrix` to a ``scipy.sparse.csr_matrix``."""
    import scipy.sparse as sps

    return sps.csr_matrix(
        (csr.data.copy(), csr.indices.copy(), csr.indptr.copy()),
        shape=csr.shape,
    )

"""Compressed Sparse Column (CSC) matrix format.

The column-oriented dataflow of Azul's SpMV and SpTRSV kernels (values
multicast down *columns*, Sec. IV-A) makes CSC the natural format for
building task graphs and for the column-substitution SpTRSV variant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError


class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Parameters
    ----------
    indptr:
        Column-pointer array of length ``n_cols + 1``.
    indices:
        Row indices, length ``nnz``, sorted within each column.
    data:
        Nonzero values aligned with ``indices``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()

    def _validate(self):
        n_rows, n_cols = self.shape
        if len(self.indptr) != n_cols + 1:
            raise MatrixFormatError(
                f"indptr length {len(self.indptr)} != n_cols + 1 ({n_cols + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise MatrixFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise MatrixFormatError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise MatrixFormatError("indices and data must have equal length")
        if len(self.indices) > 0:
            if self.indices.min() < 0 or self.indices.max() >= n_rows:
                raise MatrixFormatError("row index out of bounds")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return len(self.data)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def __repr__(self):
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    def col_slice(self, j: int) -> slice:
        """The slice of ``indices``/``data`` belonging to column ``j``."""
        return slice(int(self.indptr[j]), int(self.indptr[j + 1]))

    def col(self, j: int):
        """Return ``(row_indices, values)`` of column ``j`` as views."""
        sl = self.col_slice(j)
        return self.indices[sl], self.data[sl]

    def col_nnz(self) -> np.ndarray:
        """Number of nonzeros in each column."""
        return np.diff(self.indptr)

    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros where absent)."""
        diag = np.zeros(min(self.shape), dtype=np.float64)
        for j in range(min(self.shape)):
            rows, vals = self.col(j)
            hit = np.searchsorted(rows, j)
            if hit < len(rows) and rows[hit] == j:
                diag[j] = vals[hit]
        return diag

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray."""
        dense = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.n_cols), self.col_nnz())
        dense[self.indices, cols] = self.data
        return dense

    def spmv(self, x) -> np.ndarray:
        """Compute ``y = A @ x`` column-wise (reference implementation)."""
        x = np.asarray(x, dtype=np.float64)
        if len(x) != self.n_cols:
            raise MatrixFormatError(
                f"vector length {len(x)} != n_cols {self.n_cols}"
            )
        y = np.zeros(self.n_rows, dtype=np.float64)
        if self.nnz:
            cols = np.repeat(np.arange(self.n_cols), self.col_nnz())
            np.add.at(y, self.indices, self.data * x[cols])
        return y

    def __matmul__(self, x):
        return self.spmv(x)

"""Cached level schedules for sparse triangular kernels.

SpTRSV's row-to-row dependences put it on the critical path of every
PCG iteration (Sec. II-A): row ``i`` cannot be solved before every row
``j < i`` it references.  Level-set (wavefront) scheduling is the
standard way to expose the parallelism that remains — rows at the same
dependence depth are independent, so each *level* can be executed as
one batched gather/segment-reduce instead of a Python row loop.

This module computes that structure **once per factor** and caches it
on the matrix object:

* :class:`TriangularSchedule` — validation (triangularity, stored
  diagonal), the dependence level sets, and a per-level execution plan
  (row sets, flat off-diagonal position/column arrays grouped by row,
  ``np.add.reduceat`` segment starts) for forward or backward
  substitution.
* :class:`IC0Schedule` — the symbolic side of a vectorized IC(0)
  factorization: every strict lower entry is grouped by
  ``(level, position-in-row)`` so entries with satisfied dependences
  are updated in one batched step, with flat update-pair position
  arrays replacing the reference implementation's per-entry merged row
  scans.

Schedules depend only on the matrix *structure* (``indptr`` /
``indices``); numeric values are gathered from ``data`` at execution
time, so in-place value updates never invalidate a cached schedule.
Replacing the structure arrays (or building a new matrix) does.

Error behavior matches the reference row loops in
:mod:`repro.sparse.ops` — same exception classes and messages, raised
for the first offending row in reference iteration order — with one
documented exception: structural problems (a non-triangular row, a
missing diagonal) are detected eagerly at schedule build, so they are
reported before any numeric zero-pivot error the reference sweep would
have hit in an earlier row.

Layer contract: ``schedule`` sits above ``csr`` and below ``ops``
(see ``tools/check_layers.py`` and ``.importlinter``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NotTriangularError, SingularMatrixError
from repro.sparse.csr import CSRMatrix

#: Attribute under which schedules are memoized on a CSRMatrix.
_CACHE_ATTR = "_kernel_schedules"


def _structure_token(matrix: CSRMatrix) -> Tuple[int, int, int]:
    """Identity of the matrix's *structure* arrays.

    Values (``data``) are deliberately excluded: schedules are purely
    structural and numeric values are re-gathered on every execution,
    so in-place value mutation stays coherent.  Replacing ``indptr`` or
    ``indices`` (any structural change built the normal way produces
    new arrays) invalidates the cached schedule.
    """
    return (id(matrix.indptr), id(matrix.indices), matrix.nnz)


def _cached(matrix: CSRMatrix, key: tuple, builder):
    """Memoize ``builder()`` on the matrix, keyed by structure identity."""
    cache: Dict[tuple, tuple] = getattr(matrix, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(matrix, _CACHE_ATTR, cache)
    token = _structure_token(matrix)
    hit = cache.get(key)
    if hit is not None and hit[0] == token:
        return hit[1]
    built = builder()
    cache[key] = (token, built)
    return built


# ----------------------------------------------------------------------
# Segment sums
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Segments:
    """Precomputed ``np.add.reduceat`` plan over variable-length segments.

    ``reduceat`` mishandles empty segments (it returns the element at
    the repeated start instead of 0 and rejects a start equal to the
    array length), so empty segments are dropped from ``starts`` at
    build time and their sums are defined to be zero; ``nonempty``
    scatters the reduced values back to the full segment list.
    """

    n_segments: int
    starts: np.ndarray          # reduceat starts of the non-empty segments
    nonempty: Optional[np.ndarray]  # segment ids of ``starts`` (None = all)

    def sums(self, values: np.ndarray) -> np.ndarray:
        """Per-segment sums of ``values`` (zeros for empty segments)."""
        if self.nonempty is None:
            if self.n_segments == 0:
                return np.zeros(0, dtype=np.float64)
            return np.add.reduceat(values, self.starts)
        out = np.zeros(self.n_segments, dtype=np.float64)
        if len(self.starts):
            out[self.nonempty] = np.add.reduceat(values, self.starts)
        return out


def _make_segments(starts: np.ndarray, counts: np.ndarray) -> _Segments:
    """Build a :class:`_Segments` plan from segment starts and lengths."""
    n_segments = len(counts)
    nonempty = np.nonzero(counts > 0)[0]
    if len(nonempty) == n_segments:
        return _Segments(n_segments, starts.astype(np.int64), None)
    return _Segments(
        n_segments, starts[nonempty].astype(np.int64), nonempty
    )


# ----------------------------------------------------------------------
# Triangular level schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LevelStep:
    """One wavefront of the substitution: rows solvable in parallel."""

    rows: np.ndarray       # row indices of this level
    nz_lo: int             # slice of the flat off-diagonal arrays
    nz_hi: int
    cols: np.ndarray       # off-diagonal columns, grouped by row
    segments: _Segments    # per-row segment sums over the slice
    diag: Optional[np.ndarray]  # data positions of the rows' diagonals


@dataclass(frozen=True)
class TriangularSchedule:
    """Dependence level sets plus a batched execution plan for SpTRSV.

    Built once per (factor structure, direction, diagonal mode) by
    :func:`triangular_schedule` and cached on the matrix; numeric
    values are gathered from ``data`` at :meth:`execute` time.
    """

    n: int
    is_lower: bool
    unit_diagonal: bool
    levels: np.ndarray          # dependence depth of each row
    n_levels: int
    off_pos: np.ndarray         # data positions of strict off-diag entries,
                                # grouped by row in execution order,
                                # ascending column within each row
    diag_pos: Optional[np.ndarray]  # data position of each row's diagonal
    plan: Tuple[_LevelStep, ...] = field(repr=False)

    def level_sizes(self) -> np.ndarray:
        """Rows per level (the solve's parallelism profile)."""
        return np.bincount(self.levels, minlength=self.n_levels)

    # ------------------------------------------------------------------
    def execute(self, data: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Run the substitution against the current ``data`` values.

        Raises :class:`SingularMatrixError` on a zero pivot, matching
        the reference row loop's message and row choice (the first
        zero-pivot row in reference iteration order).
        """
        values = data[self.off_pos]
        if not self.unit_diagonal:
            assert self.diag_pos is not None
            diag_all = data[self.diag_pos]
            if not np.all(diag_all):
                zero_rows = np.nonzero(diag_all == 0.0)[0]
                first = zero_rows[0] if self.is_lower else zero_rows[-1]
                raise SingularMatrixError(f"zero pivot in row {int(first)}")
        x = np.empty(self.n, dtype=np.float64)
        for step in self.plan:
            acc = b[step.rows]
            if step.nz_hi > step.nz_lo:
                products = values[step.nz_lo:step.nz_hi] * x[step.cols]
                acc = acc - step.segments.sums(products)
            if step.diag is None:
                x[step.rows] = acc
            else:
                x[step.rows] = acc / data[step.diag]
        return x


def _strict_structure(matrix: CSRMatrix, is_lower: bool,
                      unit_diagonal: bool):
    """Validate triangularity/diagonal; return the strict structure.

    Returns ``(off_pos, off_cols, row_ptr, diag_pos)`` where the
    off-diagonal arrays are in row-major, ascending-column order and
    ``diag_pos`` is None for unit-diagonal factors.
    """
    n = matrix.n_rows
    indptr, indices = matrix.indptr, matrix.indices
    rows_of = np.repeat(np.arange(n, dtype=np.int64), matrix.row_nnz())
    strict = indices < rows_of if is_lower else indices > rows_of
    wrong_side = indices > rows_of if is_lower else indices < rows_of
    on_diag = indices == rows_of

    bad_tri = np.zeros(n, dtype=bool)
    bad_tri[rows_of[wrong_side]] = True
    has_diag = np.zeros(n, dtype=bool)
    has_diag[rows_of[on_diag]] = True
    bad_diag = ~has_diag if not unit_diagonal else np.zeros(n, dtype=bool)
    bad = np.nonzero(bad_tri | bad_diag)[0]
    if len(bad):
        # Report the first offending row in reference iteration order.
        i = int(bad[0] if is_lower else bad[-1])
        if bad_tri[i]:
            row_cols = indices[indptr[i]:indptr[i + 1]]
            if is_lower:
                raise NotTriangularError(
                    f"row {i} has entry in column {int(row_cols[-1])} "
                    "above the diagonal"
                )
            raise NotTriangularError(
                f"row {i} has entry in column {int(row_cols[0])} "
                "below the diagonal"
            )
        raise SingularMatrixError(f"missing diagonal entry in row {i}")

    off_pos = np.nonzero(strict)[0].astype(np.int64)
    off_cols = indices[off_pos]
    counts = np.bincount(rows_of[strict], minlength=n)
    row_ptr = np.concatenate(
        ([0], np.cumsum(counts))
    ).astype(np.int64)
    if unit_diagonal:
        diag_pos = None
    else:
        diag_pos = np.nonzero(on_diag)[0].astype(np.int64)
    return off_pos, off_cols, row_ptr, diag_pos


def _row_levels(off_cols: np.ndarray, row_ptr: np.ndarray, n: int,
                is_lower: bool) -> np.ndarray:
    """Dependence depth of each row (longest chain ending at the row)."""
    levels = [0] * n
    cols = off_cols.tolist()
    ptr = row_ptr.tolist()
    order = range(n) if is_lower else range(n - 1, -1, -1)
    for i in order:
        depth = -1
        for k in range(ptr[i], ptr[i + 1]):
            level = levels[cols[k]]
            if level > depth:
                depth = level
        levels[i] = depth + 1
    return np.asarray(levels, dtype=np.int64)


def _gather_segments(src_ptr: np.ndarray, order: np.ndarray):
    """Flat gather indices that regroup row segments into ``order``.

    Returns ``(index, new_ptr)``: ``flat[new_ptr[k]:new_ptr[k+1]]`` of
    any array indexed by ``index`` is the segment of ``order[k]``.
    """
    lengths = (src_ptr[1:] - src_ptr[:-1])[order]
    new_ptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    total = int(new_ptr[-1])
    index = (
        np.repeat(src_ptr[order], lengths)
        + np.arange(total, dtype=np.int64)
        - np.repeat(new_ptr[:-1], lengths)
    )
    return index, new_ptr


def _build_triangular(matrix: CSRMatrix, is_lower: bool,
                      unit_diagonal: bool) -> TriangularSchedule:
    n = matrix.n_rows
    off_pos, off_cols, row_ptr, diag_pos = _strict_structure(
        matrix, is_lower, unit_diagonal
    )
    levels = _row_levels(off_cols, row_ptr, n, is_lower)
    n_levels = int(levels.max()) + 1 if n else 0
    order = np.argsort(levels, kind="stable").astype(np.int64)
    level_counts = np.bincount(levels, minlength=n_levels)
    level_ptr = np.concatenate(([0], np.cumsum(level_counts)))

    gather, ordered_ptr = _gather_segments(row_ptr, order)
    off_pos_ordered = off_pos[gather]
    off_cols_ordered = off_cols[gather]

    plan: List[_LevelStep] = []
    for level in range(n_levels):
        row_lo, row_hi = int(level_ptr[level]), int(level_ptr[level + 1])
        rows = order[row_lo:row_hi]
        nz_lo, nz_hi = int(ordered_ptr[row_lo]), int(ordered_ptr[row_hi])
        starts = ordered_ptr[row_lo:row_hi] - nz_lo
        counts = ordered_ptr[row_lo + 1:row_hi + 1] - ordered_ptr[row_lo:row_hi]
        plan.append(_LevelStep(
            rows=rows,
            nz_lo=nz_lo,
            nz_hi=nz_hi,
            cols=off_cols_ordered[nz_lo:nz_hi],
            segments=_make_segments(starts, counts),
            diag=None if diag_pos is None else diag_pos[rows],
        ))
    return TriangularSchedule(
        n=n,
        is_lower=is_lower,
        unit_diagonal=unit_diagonal,
        levels=levels,
        n_levels=n_levels,
        off_pos=off_pos_ordered,
        diag_pos=diag_pos,
        plan=tuple(plan),
    )


def triangular_schedule(matrix: CSRMatrix, is_lower: bool = True,
                        unit_diagonal: bool = False) -> TriangularSchedule:
    """The (cached) level schedule of a triangular matrix.

    Memoized on the matrix object, keyed by structure identity plus
    ``(is_lower, unit_diagonal)``; see the module docstring for the
    invalidation rules.
    """
    return _cached(
        matrix, ("tri", is_lower, unit_diagonal),
        lambda: _build_triangular(matrix, is_lower, unit_diagonal),
    )


# ----------------------------------------------------------------------
# IC(0) symbolic schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _IC0Step:
    """One batched update: all entries at ``(level, position-in-row)``.

    Each target entry ``(i, j)`` receives ``(A[i,j] - sum_k
    L[i,k] L[j,k]) / L[j,j]``; the pair arrays hold the data positions
    of every ``(L[i,k], L[j,k])`` product, grouped per target in
    ascending ``k`` order (the reference merge order).
    """

    targets: np.ndarray     # data positions of the entries to compute
    pivots: np.ndarray      # data positions of each target's L[j,j]
    pair_a: np.ndarray      # data positions of L[i,k]
    pair_b: np.ndarray      # data positions of L[j,k]
    segments: _Segments     # per-target sums over the pair products


@dataclass(frozen=True)
class IC0Schedule:
    """Symbolic plan for the level-batched IC(0) factorization.

    ``steps[level]`` is the in-row-position sequence of batched entry
    updates for that level; after a level's steps, its rows' diagonals
    are closed with one batched sqrt via the embedded triangular
    schedule's per-level slices.
    """

    tri: TriangularSchedule
    steps: Tuple[Tuple[_IC0Step, ...], ...] = field(repr=False)

    # ------------------------------------------------------------------
    def attempt(self, lower: CSRMatrix,
                diag_shift: float) -> Optional[np.ndarray]:
        """One numeric IC(0) attempt; None on breakdown (like reference).

        Breakdown — a zero pivot or a non-positive diagonal — returns
        ``None`` so the caller can retry with a larger diagonal shift,
        mirroring ``ReferenceKernels.ic0_attempt``.
        """
        tri = self.tri
        data = lower.data.copy()
        diag_pos = tri.diag_pos
        assert diag_pos is not None  # tri was built with a stored diagonal
        if diag_shift != 0.0:
            data[diag_pos] *= 1.0 + diag_shift
        for level, level_steps in enumerate(self.steps):
            for step in level_steps:
                pivots = data[step.pivots]
                if not np.all(pivots):
                    return None
                acc = data[step.targets]
                if len(step.pair_a):
                    products = data[step.pair_a] * data[step.pair_b]
                    acc = acc - step.segments.sums(products)
                data[step.targets] = acc / pivots
            # Close the level's diagonals: d_i = sqrt(A_ii - sum L_ik^2).
            tri_step = tri.plan[level]
            assert tri_step.diag is not None
            acc = data[tri_step.diag]
            if tri_step.nz_hi > tri_step.nz_lo:
                row_values = data[tri.off_pos[tri_step.nz_lo:tri_step.nz_hi]]
                acc = acc - tri_step.segments.sums(row_values * row_values)
            if np.any(acc <= 0.0):
                return None
            data[tri_step.diag] = np.sqrt(acc)
        return data


def _build_ic0(lower: CSRMatrix) -> IC0Schedule:
    tri = _build_triangular(lower, is_lower=True, unit_diagonal=False)
    n = lower.n_rows
    indptr, indices = lower.indptr, lower.indices
    rows_of = np.repeat(np.arange(n, dtype=np.int64), lower.row_nnz())
    strict = indices < rows_of
    ent_pos = np.nonzero(strict)[0].astype(np.int64)
    ent_row = rows_of[ent_pos]
    ent_col = indices[ent_pos]
    # Strict entries of a sorted lower-triangular row precede the
    # diagonal, so the in-row position is just the offset from indptr.
    ent_q = ent_pos - indptr[ent_row]
    ent_level = tri.levels[ent_row]
    diag_pos = tri.diag_pos
    assert diag_pos is not None  # tri was built with a stored diagonal

    # ---- update pairs, generated column by column ---------------------
    # Two strict entries (j, k) and (i, k) of the same column k with
    # j < i contribute the product L[i,k] * L[j,k] to entry (i, j) —
    # when (i, j) is in the pattern (IC(0) drops it otherwise).
    col_order = np.argsort(ent_col, kind="stable")
    c_pos = ent_pos[col_order]
    c_row = ent_row[col_order]
    col_counts = np.bincount(ent_col, minlength=n)
    col_ptr = np.concatenate(([0], np.cumsum(col_counts)))
    pair_chunks_a: List[np.ndarray] = []   # positions of L[i,k]
    pair_chunks_b: List[np.ndarray] = []   # positions of L[j,k]
    row_chunks_i: List[np.ndarray] = []
    row_chunks_j: List[np.ndarray] = []
    for k in range(n):
        lo, hi = int(col_ptr[k]), int(col_ptr[k + 1])
        if hi - lo < 2:
            continue
        # Rows are ascending within a column (stable sort of row-major
        # order), so index pairs (a < b) give j = rows[a] < i = rows[b].
        a_idx, b_idx = np.triu_indices(hi - lo, k=1)
        pair_chunks_a.append(c_pos[lo + b_idx])
        pair_chunks_b.append(c_pos[lo + a_idx])
        row_chunks_i.append(c_row[lo + b_idx])
        row_chunks_j.append(c_row[lo + a_idx])
    if pair_chunks_a:
        pair_a = np.concatenate(pair_chunks_a)
        pair_b = np.concatenate(pair_chunks_b)
        pair_i = np.concatenate(row_chunks_i)
        pair_j = np.concatenate(row_chunks_j)
        # Keep only pairs whose target entry (i, j) exists.  The keys
        # of all stored entries are ascending in row-major CSR order,
        # so one searchsorted resolves the target data positions.
        keys = rows_of * np.int64(n) + indices
        cand = pair_i * np.int64(n) + pair_j
        loc = np.searchsorted(keys, cand)
        valid = (loc < len(keys)) & (keys[np.minimum(loc, len(keys) - 1)]
                                     == cand)
        pair_a = pair_a[valid]
        pair_b = pair_b[valid]
        pair_target = loc[valid].astype(np.int64)
    else:
        pair_a = np.zeros(0, dtype=np.int64)
        pair_b = np.zeros(0, dtype=np.int64)
        pair_target = np.zeros(0, dtype=np.int64)

    # ---- group targets and pairs by (level, position-in-row) ----------
    ent_sort = np.lexsort((ent_pos, ent_q, ent_level))
    s_pos = ent_pos[ent_sort]
    s_col = ent_col[ent_sort]
    s_q = ent_q[ent_sort]
    s_level = ent_level[ent_sort]

    # Pairs follow their target's chunk; ascending k within a target
    # preserves the reference merge order (k = column of L[j,k], and
    # pair_b positions within one target row j are ascending in k).
    tgt_level = tri.levels[rows_of[pair_target]]
    tgt_q = pair_target - indptr[rows_of[pair_target]]
    pair_sort = np.lexsort((pair_b, pair_target, tgt_q, tgt_level))
    p_a = pair_a[pair_sort]
    p_b = pair_b[pair_sort]
    p_target = pair_target[pair_sort]
    p_level = tgt_level[pair_sort]
    p_q = tgt_q[pair_sort]

    max_q = int(ent_q.max()) + 1 if len(ent_q) else 0
    chunk_key = s_level * max_q + s_q if max_q else s_level
    pair_key = p_level * max_q + p_q if max_q else p_level
    steps: List[List[_IC0Step]] = [[] for _ in range(tri.n_levels)]
    if len(s_pos):
        boundaries = np.concatenate((
            [0], np.nonzero(np.diff(chunk_key))[0] + 1, [len(s_pos)]
        ))
        for c in range(len(boundaries) - 1):
            lo, hi = int(boundaries[c]), int(boundaries[c + 1])
            targets = s_pos[lo:hi]
            level = int(s_level[lo])
            key = int(chunk_key[lo])
            p_lo, p_hi = np.searchsorted(pair_key, [key, key + 1])
            chunk_pair_target = p_target[p_lo:p_hi]
            counts = (
                np.searchsorted(chunk_pair_target, targets, side="right")
                - np.searchsorted(chunk_pair_target, targets, side="left")
            )
            starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            steps[level].append(_IC0Step(
                targets=targets,
                pivots=diag_pos[s_col[lo:hi]],
                pair_a=p_a[p_lo:p_hi],
                pair_b=p_b[p_lo:p_hi],
                segments=_make_segments(starts, counts),
            ))
    return IC0Schedule(
        tri=tri, steps=tuple(tuple(level) for level in steps)
    )


def ic0_schedule(lower: CSRMatrix) -> IC0Schedule:
    """The (cached) symbolic IC(0) schedule of a lower factor pattern."""
    return _cached(lower, ("ic0",), lambda: _build_ic0(lower))

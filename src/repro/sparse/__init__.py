"""Sparse-matrix substrate: formats, kernels, generators, and the suite.

This subpackage provides the sparse linear-algebra foundation the paper's
solvers run on: COO/CSR/CSC storage, the SpMV/SpTRSV/IC(0) kernel
engines (level-scheduled and reference, behind the ``KERNELS``
registry), cached triangular schedules, Matrix Market I/O, synthetic
matrix generators, and the benchmark suite that stands in for the
paper's SuiteSparse selection (Table IV).
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import (
    coo_to_csr,
    coo_to_csc,
    csr_to_coo,
    csr_to_csc,
    csc_to_csr,
    from_scipy,
    to_scipy,
)
from repro.sparse.ops import (
    KERNELS,
    KernelEngine,
    LevelScheduledKernels,
    ReferenceKernels,
    default_kernels_name,
    register_kernels,
    resolve_kernels,
    spmv,
    sptrsv_lower,
    sptrsv_upper,
    spmv_flops,
    sptrsv_flops,
)
from repro.sparse.schedule import (
    IC0Schedule,
    TriangularSchedule,
    ic0_schedule,
    triangular_schedule,
)
from repro.sparse.properties import (
    is_symmetric,
    is_lower_triangular,
    is_upper_triangular,
    is_diagonally_dominant,
    has_full_diagonal,
    bandwidth,
    nnz_per_row_stats,
    matrix_footprint_bytes,
    vector_footprint_bytes,
)
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse import generators
from repro.sparse.suite import SuiteMatrix, azul_suite, get_suite_matrix

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "from_scipy",
    "to_scipy",
    "KERNELS",
    "KernelEngine",
    "LevelScheduledKernels",
    "ReferenceKernels",
    "default_kernels_name",
    "register_kernels",
    "resolve_kernels",
    "IC0Schedule",
    "TriangularSchedule",
    "ic0_schedule",
    "triangular_schedule",
    "spmv",
    "sptrsv_lower",
    "sptrsv_upper",
    "spmv_flops",
    "sptrsv_flops",
    "is_symmetric",
    "is_lower_triangular",
    "is_upper_triangular",
    "is_diagonally_dominant",
    "has_full_diagonal",
    "bandwidth",
    "nnz_per_row_stats",
    "matrix_footprint_bytes",
    "vector_footprint_bytes",
    "read_matrix_market",
    "write_matrix_market",
    "generators",
    "SuiteMatrix",
    "azul_suite",
    "get_suite_matrix",
]

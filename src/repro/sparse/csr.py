"""Compressed Sparse Row (CSR) matrix format.

CSR is the workhorse format for the row-oriented kernels (SpMV and
row-substitution SpTRSV) and for the dataflow program builders, which
need fast access to the nonzeros of a row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError


class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        Row-pointer array of length ``n_rows + 1``.
    indices:
        Column indices, length ``nnz``; must be sorted within each row
        (enforce via :meth:`sort_indices` if constructing manually).
    data:
        Nonzero values aligned with ``indices``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()

    def _validate(self):
        n_rows, n_cols = self.shape
        if len(self.indptr) != n_rows + 1:
            raise MatrixFormatError(
                f"indptr length {len(self.indptr)} != n_rows + 1 ({n_rows + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise MatrixFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise MatrixFormatError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise MatrixFormatError("indices and data must have equal length")
        if len(self.indices) > 0:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise MatrixFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return len(self.data)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def __repr__(self):
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row_slice(self, i: int) -> slice:
        """The slice of ``indices``/``data`` belonging to row ``i``."""
        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))

    def row(self, i: int):
        """Return ``(column_indices, values)`` of row ``i`` as views."""
        sl = self.row_slice(i)
        return self.indices[sl], self.data[sl]

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros in each row."""
        return np.diff(self.indptr)

    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros where absent)."""
        diag = np.zeros(min(self.shape), dtype=np.float64)
        for i in range(min(self.shape)):
            cols, vals = self.row(i)
            hit = np.searchsorted(cols, i)
            if hit < len(cols) and cols[hit] == i:
                diag[i] = vals[hit]
        return diag

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        indices = self.indices.copy()
        data = self.data.copy()
        for i in range(self.n_rows):
            sl = self.row_slice(i)
            order = np.argsort(indices[sl], kind="stable")
            indices[sl] = indices[sl][order]
            data[sl] = data[sl][order]
        return CSRMatrix(self.indptr.copy(), indices, data, self.shape)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, also in CSR form."""
        from repro.sparse.convert import coo_to_csr, csr_to_coo

        return coo_to_csr(csr_to_coo(self).transpose())

    def lower_triangle(self, include_diagonal: bool = True) -> "CSRMatrix":
        """Extract the lower triangle as a new CSR matrix."""
        return self._triangle(lower=True, include_diagonal=include_diagonal)

    def upper_triangle(self, include_diagonal: bool = True) -> "CSRMatrix":
        """Extract the upper triangle as a new CSR matrix."""
        return self._triangle(lower=False, include_diagonal=include_diagonal)

    def _triangle(self, lower: bool, include_diagonal: bool) -> "CSRMatrix":
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
        if lower:
            keep = self.indices <= rows if include_diagonal else self.indices < rows
        else:
            keep = self.indices >= rows if include_diagonal else self.indices > rows
        new_rows = rows[keep]
        counts = np.bincount(new_rows, minlength=self.n_rows)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return CSRMatrix(indptr, self.indices[keep], self.data[keep], self.shape)

    def scale_rows(self, scale) -> "CSRMatrix":
        """Return a copy with row ``i`` multiplied by ``scale[i]``."""
        scale = np.asarray(scale, dtype=np.float64)
        if len(scale) != self.n_rows:
            raise MatrixFormatError("scale vector length must equal n_rows")
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
        return CSRMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data * scale[rows],
            self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray."""
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
        dense[rows, self.indices] = self.data
        return dense

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def spmv(self, x) -> np.ndarray:
        """Compute ``y = A @ x`` (vectorized reference implementation)."""
        x = np.asarray(x, dtype=np.float64)
        if len(x) != self.n_cols:
            raise MatrixFormatError(
                f"vector length {len(x)} != n_cols {self.n_cols}"
            )
        products = self.data * x[self.indices]
        y = np.zeros(self.n_rows, dtype=np.float64)
        if self.nnz:
            rows = np.repeat(np.arange(self.n_rows), self.row_nnz())
            np.add.at(y, rows, products)
        return y

    def __matmul__(self, x):
        return self.spmv(x)

    def allclose(self, other: "CSRMatrix", rtol=1e-10, atol=1e-12) -> bool:
        """Structural and numerical equality within tolerances."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )

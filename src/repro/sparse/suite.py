"""The benchmark matrix suite (stand-in for paper Table IV).

The paper evaluates on the 20 largest SuiteSparse SPD matrices that fit
in the 4096-tile machine, plus larger sets for the scaled-up designs.
Those files are not available offline, so each paper matrix gets a
*synthetic analog* chosen to match its performance-relevant character:

* very dense rows and low SpTRSV parallelism (``thread``, ``nd12k``,
  ``pdb1HYS``, ``crankseg_1``) -> banded / block-dense generators;
* unstructured FEM meshes with medium parallelism (``shipsec1``,
  ``consph``, ``hood``, ...) -> random-geometric mesh generator with
  multi-DOF node blocks;
* grid-structured, ~5-nonzeros-per-row, high-parallelism matrices
  (``thermal2``, ``apache2``, ``G3_circuit``, ``ecology2``) -> 2D/3D
  Laplacians and random circuit graphs.

Suite order follows the paper's figures: matrices are listed from least
to most available parallelism.  Sizes are scaled down so the
operation-level cycle simulator is tractable in pure Python; the
``scale`` parameter grows matrices for the scaling study (Fig. 28).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse import generators as gen


@dataclass(frozen=True)
class SuiteMatrix:
    """One entry of the benchmark suite.

    Attributes
    ----------
    name:
        The paper matrix this entry stands in for (Table IV name).
    category:
        Structural family: ``"banded"``, ``"block-dense"``, ``"mesh"``,
        ``"grid"`` or ``"random"``.
    description:
        Human-readable provenance of the paper matrix and of the analog.
    section:
        Which machine size the paper places the matrix in: ``"small"``
        (fits 64x64 tiles), ``"medium"`` (16K tiles), ``"large"``
        (64K tiles).
    builder:
        Callable ``scale -> CSRMatrix`` producing the analog.
    """

    name: str
    category: str
    description: str
    section: str
    builder: Callable[[int], CSRMatrix]

    def build(self, scale: int = 1) -> CSRMatrix:
        """Generate the matrix at the given scale factor."""
        return self.builder(scale)


def _fem(points, degree, dofs, seed):
    def build(scale):
        return gen.random_geometric_fem(
            points * scale, avg_degree=degree, dim=3,
            dofs_per_node=dofs, seed=seed,
        )
    return build


_SUITE = [
    SuiteMatrix(
        "thread", "banded",
        "Threaded-connector stiffness; ~150 nnz/row, lowest parallelism. "
        "Analog: dense wide band (long dependence chains).",
        "small", lambda s: gen.banded_spd(420 * s, 36, density=0.65, seed=1),
    ),
    SuiteMatrix(
        "pdb1HYS", "block-dense",
        "Protein structure; dense clusters. Analog: dense diagonal blocks "
        "with sparse coupling.",
        "small", lambda s: gen.block_dense_spd(22 * s, 26, 6, seed=2),
    ),
    SuiteMatrix(
        "nd12k", "block-dense",
        "ND problem set; ~395 nnz/row, parallelism-bound even at 4096 PEs. "
        "Analog: large dense blocks.",
        "small", lambda s: gen.block_dense_spd(11 * s, 44, 4, seed=3),
    ),
    SuiteMatrix(
        "crankseg_1", "banded",
        "Crankshaft FEM; ~200 nnz/row, low parallelism. Analog: wide "
        "random band.",
        "small", lambda s: gen.banded_spd(560 * s, 28, density=0.7, seed=4),
    ),
    SuiteMatrix(
        "m_t1", "mesh",
        "Tubular joint FEM; ~100 nnz/row. Analog: 3D mesh, 3 DOF/node.",
        "small", _fem(200, 8, 3, seed=5),
    ),
    SuiteMatrix(
        "shipsec1", "mesh",
        "Ship section FEM; ~55 nnz/row. Analog: 3D mesh, 3 DOF/node.",
        "small", _fem(230, 7, 3, seed=6),
    ),
    SuiteMatrix(
        "cant", "mesh",
        "Cantilever FEM; ~64 nnz/row. Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(330, 10, 2, seed=7),
    ),
    SuiteMatrix(
        "s3dkt3m2", "mesh",
        "Cylindrical shell FEM; ~41 nnz/row. Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(380, 8, 2, seed=8),
    ),
    SuiteMatrix(
        "boneS01", "mesh",
        "Bone micro-FEM; ~53 nnz/row. Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(400, 9, 2, seed=9),
    ),
    SuiteMatrix(
        "consph", "mesh",
        "Concentric spheres FEM; ~72 nnz/row; the paper's time-balancing "
        "case study (Fig. 17). Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(420, 9, 2, seed=10),
    ),
    SuiteMatrix(
        "bmwcra_1", "mesh",
        "Automotive crankshaft FEM; ~71 nnz/row. Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(450, 10, 2, seed=11),
    ),
    SuiteMatrix(
        "hood", "mesh",
        "Car hood FEM; ~49 nnz/row. Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(500, 8, 2, seed=12),
    ),
    SuiteMatrix(
        "pwtk", "mesh",
        "Pressurized wind tunnel FEM; ~53 nnz/row. Analog: 3D mesh, "
        "2 DOF/node.",
        "small", _fem(520, 9, 2, seed=13),
    ),
    SuiteMatrix(
        "BenElechi1", "mesh",
        "FEM stiffness; ~54 nnz/row; the paper's peak-throughput matrix. "
        "Analog: 3D mesh, 2 DOF/node.",
        "small", _fem(560, 10, 2, seed=14),
    ),
    SuiteMatrix(
        "offshore", "grid",
        "Transient field in offshore structure; ~16 nnz/row. Analog: 3D "
        "grid Laplacian with mild randomization.",
        "small", lambda s: gen.grid_laplacian_3d(12 * s, 10, 9),
    ),
    SuiteMatrix(
        "tmt_sym", "grid",
        "Electromagnetics; ~7 nnz/row. Analog: 2D 5-point Laplacian.",
        "small", lambda s: gen.grid_laplacian_2d(36 * s, 34),
    ),
    SuiteMatrix(
        "thermal2", "grid",
        "Unstructured thermal FEM; ~7 nnz/row, high parallelism. Analog: "
        "2D 5-point Laplacian.",
        "small", lambda s: gen.grid_laplacian_2d(42 * s, 40),
    ),
    SuiteMatrix(
        "apache2", "grid",
        "3D structural problem; ~7 nnz/row. Analog: 3D 7-point Laplacian.",
        "small", lambda s: gen.grid_laplacian_3d(13 * s, 12, 11),
    ),
    SuiteMatrix(
        "G3_circuit", "random",
        "Circuit simulation; ~5 nnz/row at uncorrelated coordinates. "
        "Analog: random sparse graph.",
        "small", lambda s: gen.random_spd(1500 * s, nnz_per_row=5, seed=15),
    ),
    SuiteMatrix(
        "ecology2", "grid",
        "Landscape ecology; ~5 nnz/row, highest parallelism. Analog: 2D "
        "5-point Laplacian.",
        "small", lambda s: gen.grid_laplacian_2d(46 * s, 45),
    ),
    # ------------------------------------------------------------------
    # Scaled-up sections (paper Table IV mid/bottom; used in Fig. 28).
    # ------------------------------------------------------------------
    SuiteMatrix(
        "af_shell8", "mesh",
        "Sheet-metal forming FEM (16K-tile section). Analog: larger 3D "
        "mesh, 2 DOF/node.",
        "medium", _fem(1100, 9, 2, seed=16),
    ),
    SuiteMatrix(
        "StocF-1465", "grid",
        "Flow in porous medium (16K-tile section). Analog: larger 3D grid.",
        "medium", lambda s: gen.grid_laplacian_3d(20 * s, 18, 16),
    ),
    SuiteMatrix(
        "audikw_1", "mesh",
        "Automotive FEM (16K-tile section); dense rows. Analog: larger 3D "
        "mesh, 3 DOF/node.",
        "medium", _fem(520, 10, 3, seed=17),
    ),
    SuiteMatrix(
        "Flan_1565", "mesh",
        "3D steel-flange FEM (64K-tile section). Analog: largest mesh, "
        "2 DOF/node.",
        "large", _fem(2400, 9, 2, seed=18),
    ),
    SuiteMatrix(
        "Queen_4147", "mesh",
        "3D structural FEM, largest matrix (64K-tile section). Analog: "
        "largest mesh, 3 DOF/node.",
        "large", _fem(1400, 10, 3, seed=19),
    ),
]

_BY_NAME = {entry.name: entry for entry in _SUITE}

#: The six matrices the paper uses in its motivating figures
#: (Figs. 1, 3, 7, 9 and Table I).
REPRESENTATIVE = (
    "crankseg_1", "m_t1", "shipsec1", "consph", "thermal2", "apache2",
)


def azul_suite(section: str = "small") -> list:
    """Return the suite entries for a machine-size section.

    ``section="small"`` gives the 20-matrix analog of the paper's main
    evaluation set, in the paper's order (least to most parallelism);
    ``"medium"`` and ``"large"`` add the scaled-up entries of Fig. 28;
    ``"all"`` returns everything.
    """
    if section == "all":
        return list(_SUITE)
    if section == "small":
        return [m for m in _SUITE if m.section == "small"]
    if section == "medium":
        return [m for m in _SUITE if m.section in ("small", "medium")]
    if section == "large":
        return list(_SUITE)
    raise ValueError(f"unknown suite section {section!r}")


def representative_suite() -> list:
    """The six representative matrices used by the motivating figures."""
    return [_BY_NAME[name] for name in REPRESENTATIVE]


def suite_names(section: str = "small") -> list:
    """Names of the suite matrices in paper (parallelism) order."""
    return [m.name for m in azul_suite(section)]


@lru_cache(maxsize=64)
def _cached_build(name: str, scale: int) -> CSRMatrix:
    return _BY_NAME[name].build(scale)


def get_suite_matrix(name: str, scale: int = 1, with_rhs: bool = True):
    """Build (and cache) a suite matrix by name.

    Returns ``(matrix, b)`` when ``with_rhs`` is true, else just the
    matrix.  The right-hand side is derived from a known random solution
    (see :func:`repro.sparse.generators.make_rhs`).
    """
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown suite matrix {name!r}; choices: {sorted(_BY_NAME)}"
        )
    matrix = _cached_build(name, scale)
    if not with_rhs:
        return matrix
    b = gen.make_rhs(matrix, seed=hash(name) % (2**31))
    return matrix, b


def suite_inventory(section: str = "small", scale: int = 1):
    """Table IV analog: per-matrix n, nnz, and SRAM footprints.

    Returns a list of dicts with keys ``name, category, n, nnz,
    nnz_per_row, a_bytes, b_bytes``.
    """
    from repro.sparse.properties import (
        matrix_footprint_bytes,
        vector_footprint_bytes,
    )

    rows = []
    for entry in azul_suite(section):
        matrix = _cached_build(entry.name, scale)
        rows.append({
            "name": entry.name,
            "category": entry.category,
            "section": entry.section,
            "n": matrix.n_rows,
            "nnz": matrix.nnz,
            "nnz_per_row": matrix.nnz / matrix.n_rows,
            "a_bytes": matrix_footprint_bytes(matrix),
            "b_bytes": vector_footprint_bytes(matrix.n_rows),
        })
    return rows

"""Sparse kernels: SpMV, SpTRSV, and IC(0) numeric engines (Sec. II-A).

The per-row loops here are the functional ground truth against which
the dataflow simulator's results are validated (the paper checks its
simulator against Ginkgo the same way).  Mirroring the simulator's
issue layer (:mod:`repro.sim.issue`) and the partitioner's refinement
layer (:mod:`repro.hypergraph.refine`), the *numeric execution* of the
solver-facing kernels lives behind the :class:`KernelEngine`
interface:

* :class:`ReferenceKernels` — the golden per-row Python model: forward
  and backward substitution row by row, IC(0) by the classic
  up-looking merged row scan.  Selected by ``kernels="reference"`` or
  ``AZUL_SOLVER_REFERENCE=1``.
* :class:`LevelScheduledKernels` (the default) — level-set (wavefront)
  execution over a cached :class:`~repro.sparse.schedule.TriangularSchedule`:
  each dependence level is one batched numpy gather/segment-reduce, so
  a whole PCG solve re-uses the schedule computed once per factor.
  IC(0) is batched the same way via
  :class:`~repro.sparse.schedule.IC0Schedule`.

Both engines raise identical exception classes and messages; parity is
enforced by ``tests/test_kernel_equivalence.py``.  The module-level
:func:`sptrsv_lower`/:func:`sptrsv_upper` functions remain the plain
reference implementation (the simulator's validation oracle); solvers
reach the engines through
:class:`repro.solvers.kernels.KernelCounter`, preconditioners through
:func:`repro.precond.ic0.ic0`.

FLOP-counting helpers use the paper's convention: one fused
multiply-accumulate is two FLOPs.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.config import ENV_SOLVER_REFERENCE, env_truthy
from repro.errors import MatrixFormatError, NotTriangularError, SingularMatrixError
from repro.sparse.csr import CSRMatrix
from repro.sparse.schedule import ic0_schedule, triangular_schedule


def spmv(matrix: CSRMatrix, x) -> np.ndarray:
    """Sparse matrix-vector product ``y = A @ x``."""
    return matrix.spmv(x)


def _check_trsv_args(matrix: CSRMatrix, b: np.ndarray) -> None:
    if matrix.shape[0] != matrix.shape[1]:
        raise MatrixFormatError("triangular solve requires a square matrix")
    if len(b) != matrix.n_rows:
        raise MatrixFormatError(
            f"rhs length {len(b)} != n {matrix.n_rows}"
        )


def sptrsv_lower(lower: CSRMatrix, b, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` by forward substitution.

    Parameters
    ----------
    lower:
        Lower-triangular CSR matrix (columns sorted within rows).
    b:
        Right-hand-side vector.
    unit_diagonal:
        When ``True``, the diagonal is assumed to be all ones and any
        stored diagonal entries are ignored.
    """
    b = np.asarray(b, dtype=np.float64)
    n = lower.n_rows
    _check_trsv_args(lower, b)
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        cols = indices[start:end]
        vals = data[start:end]
        if len(cols) and cols[-1] > i:
            raise NotTriangularError(
                f"row {i} has entry in column {cols[-1]} above the diagonal"
            )
        if unit_diagonal:
            strictly = cols < i
            acc = float(np.dot(vals[strictly], x[cols[strictly]]))
            x[i] = b[i] - acc
        else:
            if len(cols) == 0 or cols[-1] != i:
                raise SingularMatrixError(f"missing diagonal entry in row {i}")
            acc = float(np.dot(vals[:-1], x[cols[:-1]]))
            pivot = vals[-1]
            if pivot == 0.0:
                raise SingularMatrixError(f"zero pivot in row {i}")
            x[i] = (b[i] - acc) / pivot
    return x


def sptrsv_upper(upper: CSRMatrix, b, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` by backward substitution."""
    b = np.asarray(b, dtype=np.float64)
    n = upper.n_rows
    _check_trsv_args(upper, b)
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        start, end = indptr[i], indptr[i + 1]
        cols = indices[start:end]
        vals = data[start:end]
        if len(cols) and cols[0] < i:
            raise NotTriangularError(
                f"row {i} has entry in column {cols[0]} below the diagonal"
            )
        if unit_diagonal:
            strictly = cols > i
            acc = float(np.dot(vals[strictly], x[cols[strictly]]))
            x[i] = b[i] - acc
        else:
            if len(cols) == 0 or cols[0] != i:
                raise SingularMatrixError(f"missing diagonal entry in row {i}")
            acc = float(np.dot(vals[1:], x[cols[1:]]))
            pivot = vals[0]
            if pivot == 0.0:
                raise SingularMatrixError(f"zero pivot in row {i}")
            x[i] = (b[i] - acc) / pivot
    return x


def _ic0_attempt_reference(lower: CSRMatrix,
                           diag_shift: float) -> Optional[np.ndarray]:
    """One up-looking IC(0) attempt; returns factor data or None on breakdown.

    Operates in-place on a copy of the lower triangle's data array,
    using the standard row-by-row update:

        L[i,j] = (A[i,j] - sum_k L[i,k] L[j,k]) / L[j,j]   for j < i
        L[i,i] = sqrt(A[i,i] - sum_k L[i,k]^2)
    """
    n = lower.n_rows
    indptr, indices = lower.indptr, lower.indices
    data = lower.data.copy()
    # Apply the diagonal shift before factoring.
    if diag_shift != 0.0:
        for i in range(n):
            end = indptr[i + 1]
            if end > indptr[i] and indices[end - 1] == i:
                data[end - 1] *= 1.0 + diag_shift
    # Row-major position of each row's diagonal entry (last in row).
    for i in range(n):
        row_start, row_end = indptr[i], indptr[i + 1]
        if row_end == row_start or indices[row_end - 1] != i:
            return None  # structurally missing diagonal
        for pos in range(row_start, row_end - 1):
            j = indices[pos]
            # data[pos] currently holds A[i,j] minus prior updates.
            # Subtract sum_k<j L[i,k] * L[j,k] using merged row scan.
            acc = data[pos]
            pi, pj = row_start, indptr[j]
            j_end = indptr[j + 1] - 1  # exclude L[j,j]
            while pi < pos and pj < j_end:
                ci, cj = indices[pi], indices[pj]
                if ci == cj:
                    acc -= data[pi] * data[pj]
                    pi += 1
                    pj += 1
                elif ci < cj:
                    pi += 1
                else:
                    pj += 1
            pivot = data[indptr[j + 1] - 1]
            if pivot == 0.0:
                return None
            data[pos] = acc / pivot
        # Diagonal entry.
        diag_pos = row_end - 1
        acc = data[diag_pos]
        for pos in range(row_start, diag_pos):
            acc -= data[pos] * data[pos]
        if acc <= 0.0:
            return None
        data[diag_pos] = np.sqrt(acc)
    return data


# ----------------------------------------------------------------------
# Kernel engines
# ----------------------------------------------------------------------
class KernelEngine:
    """Interface: numeric execution of the solver-facing sparse kernels.

    Engines are stateless (all per-factor state lives in the cached
    schedules), so the registry holds one shared instance per engine.
    """

    #: Engine name this class implements (``kernels=`` argument).
    name: str = ""

    def sptrsv_lower(self, lower: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        """Solve ``L x = b`` by forward substitution."""
        raise NotImplementedError

    def sptrsv_upper(self, upper: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        """Solve ``U x = b`` by backward substitution."""
        raise NotImplementedError

    def ic0_attempt(self, lower: CSRMatrix,
                    diag_shift: float = 0.0) -> Optional[np.ndarray]:
        """One IC(0) attempt on ``tril(A)``; None on breakdown."""
        raise NotImplementedError


#: Registered kernel engines by name (one shared instance each).
KERNELS: Dict[str, KernelEngine] = {}


def register_kernels(cls):
    """Class decorator: add an engine instance to :data:`KERNELS`."""
    KERNELS[cls.name] = cls()
    return cls


def default_kernels_name() -> str:
    """Engine used when ``kernels`` is unset: env override or fast."""
    return (
        "reference"
        if env_truthy(os.environ.get(ENV_SOLVER_REFERENCE))
        else "level"
    )


def resolve_kernels(name: Optional[str] = None) -> KernelEngine:
    """Map a ``kernels`` name (or ``None`` = default) to its engine."""
    if name is None:
        name = default_kernels_name()
    try:
        return KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel engine {name!r}; "
            f"choices: {', '.join(sorted(KERNELS))}"
        ) from None


@register_kernels
class ReferenceKernels(KernelEngine):
    """The golden per-row Python kernels (reference ground truth)."""

    name = "reference"

    def sptrsv_lower(self, lower: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        return sptrsv_lower(lower, b, unit_diagonal=unit_diagonal)

    def sptrsv_upper(self, upper: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        return sptrsv_upper(upper, b, unit_diagonal=unit_diagonal)

    def ic0_attempt(self, lower: CSRMatrix,
                    diag_shift: float = 0.0) -> Optional[np.ndarray]:
        return _ic0_attempt_reference(lower, diag_shift)


@register_kernels
class LevelScheduledKernels(KernelEngine):
    """Level-set batched kernels over cached triangular schedules.

    Each dependence level executes as one numpy gather / segment-sum;
    the schedule (validation, level sets, per-level CSR slices) is
    computed once per factor and memoized on the matrix (see
    :mod:`repro.sparse.schedule`).  Row sums accumulate in a different
    association order than the reference's per-row ``np.dot``, so
    results agree to rounding (bit-identical for rows with at most one
    off-diagonal entry); error classes, messages, and offending-row
    choices match the reference loops.
    """

    name = "level"

    def sptrsv_lower(self, lower: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        _check_trsv_args(lower, b)
        schedule = triangular_schedule(
            lower, is_lower=True, unit_diagonal=unit_diagonal
        )
        return schedule.execute(lower.data, b)

    def sptrsv_upper(self, upper: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        _check_trsv_args(upper, b)
        schedule = triangular_schedule(
            upper, is_lower=False, unit_diagonal=unit_diagonal
        )
        return schedule.execute(upper.data, b)

    def ic0_attempt(self, lower: CSRMatrix,
                    diag_shift: float = 0.0) -> Optional[np.ndarray]:
        try:
            schedule = ic0_schedule(lower)
        except SingularMatrixError:
            # Reference reports a structurally missing diagonal as a
            # breakdown (None), not an exception; match that.
            return None
        return schedule.attempt(lower, diag_shift)


# ----------------------------------------------------------------------
# FLOP accounting (paper convention: FMAC = 2 FLOPs)
# ----------------------------------------------------------------------
def spmv_flops(matrix: CSRMatrix) -> int:
    """Useful FLOPs of one SpMV: one FMAC per stored nonzero."""
    return 2 * matrix.nnz


def sptrsv_flops(lower: CSRMatrix, unit_diagonal: bool = False) -> int:
    """Useful FLOPs of one SpTRSV.

    Each strictly-off-diagonal nonzero contributes an FMAC (2 FLOPs)
    and each row contributes one multiply by the stored reciprocal
    diagonal (the paper stores ``1/d`` to avoid divisions on the
    critical path).  Unit-diagonal factors skip the diagonal multiply —
    and may store their unit diagonal explicitly or not, so the strict
    off-diagonal count is taken from the actual structure rather than
    assuming ``nnz - n``.
    """
    n = lower.n_rows
    if unit_diagonal:
        rows = np.repeat(np.arange(n, dtype=np.int64), lower.row_nnz())
        strictly_off = int(np.count_nonzero(lower.indices != rows))
        return 2 * strictly_off
    off_diagonal = lower.nnz - n
    return 2 * off_diagonal + n


def dot_flops(n: int) -> int:
    """FLOPs of a length-``n`` dot product (n multiplies + n-1 adds ~ 2n)."""
    return 2 * n


def axpy_flops(n: int) -> int:
    """FLOPs of ``y += alpha * x`` (one FMAC per element)."""
    return 2 * n

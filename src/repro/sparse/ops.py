"""Reference sparse kernels: SpMV and SpTRSV (Sec. II-A of the paper).

These are the functional ground truth against which the dataflow
simulator's results are validated (the paper checks its simulator
against Ginkgo the same way).  FLOP-counting helpers use the paper's
convention: one fused multiply-accumulate is two FLOPs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError, NotTriangularError, SingularMatrixError
from repro.sparse.csr import CSRMatrix


def spmv(matrix: CSRMatrix, x) -> np.ndarray:
    """Sparse matrix-vector product ``y = A @ x``."""
    return matrix.spmv(x)


def sptrsv_lower(lower: CSRMatrix, b, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` by forward substitution.

    Parameters
    ----------
    lower:
        Lower-triangular CSR matrix (columns sorted within rows).
    b:
        Right-hand-side vector.
    unit_diagonal:
        When ``True``, the diagonal is assumed to be all ones and any
        stored diagonal entries are ignored.
    """
    b = np.asarray(b, dtype=np.float64)
    n = lower.n_rows
    if lower.shape[0] != lower.shape[1]:
        raise MatrixFormatError("triangular solve requires a square matrix")
    if len(b) != n:
        raise MatrixFormatError(f"rhs length {len(b)} != n {n}")
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        cols = indices[start:end]
        vals = data[start:end]
        if len(cols) and cols[-1] > i:
            raise NotTriangularError(
                f"row {i} has entry in column {cols[-1]} above the diagonal"
            )
        if unit_diagonal:
            strictly = cols < i
            acc = float(np.dot(vals[strictly], x[cols[strictly]]))
            x[i] = b[i] - acc
        else:
            if len(cols) == 0 or cols[-1] != i:
                raise SingularMatrixError(f"missing diagonal entry in row {i}")
            acc = float(np.dot(vals[:-1], x[cols[:-1]]))
            pivot = vals[-1]
            if pivot == 0.0:
                raise SingularMatrixError(f"zero pivot in row {i}")
            x[i] = (b[i] - acc) / pivot
    return x


def sptrsv_upper(upper: CSRMatrix, b, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` by backward substitution."""
    b = np.asarray(b, dtype=np.float64)
    n = upper.n_rows
    if upper.shape[0] != upper.shape[1]:
        raise MatrixFormatError("triangular solve requires a square matrix")
    if len(b) != n:
        raise MatrixFormatError(f"rhs length {len(b)} != n {n}")
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        start, end = indptr[i], indptr[i + 1]
        cols = indices[start:end]
        vals = data[start:end]
        if len(cols) and cols[0] < i:
            raise NotTriangularError(
                f"row {i} has entry in column {cols[0]} below the diagonal"
            )
        if unit_diagonal:
            strictly = cols > i
            acc = float(np.dot(vals[strictly], x[cols[strictly]]))
            x[i] = b[i] - acc
        else:
            if len(cols) == 0 or cols[0] != i:
                raise SingularMatrixError(f"missing diagonal entry in row {i}")
            acc = float(np.dot(vals[1:], x[cols[1:]]))
            pivot = vals[0]
            if pivot == 0.0:
                raise SingularMatrixError(f"zero pivot in row {i}")
            x[i] = (b[i] - acc) / pivot
    return x


# ----------------------------------------------------------------------
# FLOP accounting (paper convention: FMAC = 2 FLOPs)
# ----------------------------------------------------------------------
def spmv_flops(matrix: CSRMatrix) -> int:
    """Useful FLOPs of one SpMV: one FMAC per stored nonzero."""
    return 2 * matrix.nnz

def sptrsv_flops(lower: CSRMatrix) -> int:
    """Useful FLOPs of one SpTRSV.

    Each off-diagonal nonzero contributes an FMAC (2 FLOPs) and each row
    contributes one multiply by the stored reciprocal diagonal (the paper
    stores ``1/d`` to avoid divisions on the critical path).
    """
    n = lower.n_rows
    off_diagonal = lower.nnz - n
    return 2 * off_diagonal + n


def dot_flops(n: int) -> int:
    """FLOPs of a length-``n`` dot product (n multiplies + n-1 adds ~ 2n)."""
    return 2 * n


def axpy_flops(n: int) -> int:
    """FLOPs of ``y += alpha * x`` (one FMAC per element)."""
    return 2 * n

"""Matrix Market (.mtx) coordinate-format I/O.

Supports the subset used by SuiteSparse SPD matrices: real values,
``general`` or ``symmetric`` symmetry, and the ``pattern`` field (read
as all-ones).  Symmetric files are expanded to full storage on read,
matching how the paper's solvers consume SuiteSparse matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix


def read_matrix_market(path) -> CSRMatrix:
    """Read a Matrix Market coordinate file into a CSR matrix."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise MatrixFormatError(f"{path}: missing MatrixMarket header")
        _, obj, fmt, field, symmetry = header[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise MatrixFormatError(
                f"{path}: only coordinate-format matrices are supported"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise MatrixFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise MatrixFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        parts = line.split()
        if len(parts) != 3:
            raise MatrixFormatError(f"{path}: malformed size line {line!r}")
        n_rows, n_cols, nnz = (int(p) for p in parts)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            entry = handle.readline().split()
            if not entry:
                raise MatrixFormatError(f"{path}: truncated at entry {k}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            data[k] = 1.0 if field == "pattern" else float(entry[2])

    if symmetry == "symmetric":
        off_diag = rows != cols
        full_rows = np.concatenate([rows, cols[off_diag]])
        full_cols = np.concatenate([cols, rows[off_diag]])
        full_data = np.concatenate([data, data[off_diag]])
        rows, cols, data = full_rows, full_cols, full_data

    coo = COOMatrix(rows, cols, data, (n_rows, n_cols))
    return coo_to_csr(coo)


def write_matrix_market(path, matrix: CSRMatrix, symmetric: bool = False):
    """Write a CSR matrix to a Matrix Market coordinate file.

    When ``symmetric`` is true, only the lower triangle is stored and the
    header declares ``symmetric`` symmetry.
    """
    coo = csr_to_coo(matrix)
    rows, cols, data = coo.rows, coo.cols, coo.data
    if symmetric:
        keep = rows >= cols
        rows, cols, data = rows[keep], cols[keep], data[keep]
    symmetry = "symmetric" if symmetric else "general"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate real {symmetry}\n")
        handle.write(f"% written by repro (Azul reproduction)\n")
        handle.write(f"{matrix.shape[0]} {matrix.shape[1]} {len(data)}\n")
        for r, c, v in zip(rows, cols, data):
            handle.write(f"{r + 1} {c + 1} {v:.17g}\n")

"""The simulated Azul machine: full PCG-iteration execution.

Combines the three sparse-kernel simulations with the analytic
vector-phase model to produce per-iteration timing, the per-kernel
runtime breakdown (Fig. 22), PE cycle breakdown (Fig. 21), and
steady-state GFLOP/s.  End-to-end solve time is cycles-per-iteration
times the iteration count measured by the functional solver — the same
steady-state methodology the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.comm import make_geometry
from repro.config import AzulConfig
from repro.core.placement import Placement
from repro.dataflow.program import PCGIterationProgram, build_pcg_program
from repro.errors import SimulationError
from repro.sim.engine import KernelResult, KernelSimulator
from repro.sim.fabric import FabricModel
from repro.sim.pe import AZUL_PE, PEModel
from repro.sparse.csr import CSRMatrix


@dataclass
class IterationResult:
    """Timing of one simulated PCG iteration.

    Attributes
    ----------
    kernel_results:
        The three sparse-kernel results (spmv, forward, backward).
    vector_cycles:
        Cycles of the analytic vector phase.
    total_cycles:
        Sum over all phases (phases are dependence-separated).
    flops_per_iteration:
        Useful algorithmic FLOPs of one iteration.
    """

    kernel_results: List[KernelResult]
    vector_cycles: int
    total_cycles: int
    flops_per_iteration: int
    config: Optional[AzulConfig] = None
    vector_ops: Optional[Dict[str, int]] = None

    def gflops(self) -> float:
        """Steady-state useful GFLOP/s."""
        if self.total_cycles == 0 or self.config is None:
            return 0.0
        seconds = self.total_cycles / self.config.frequency_hz
        return self.flops_per_iteration / seconds / 1e9

    def utilization(self) -> float:
        """Fraction of the machine's peak FLOP/s achieved."""
        if self.config is None:
            return 0.0
        return self.gflops() * 1e9 / self.config.peak_flops

    def cycles_by_phase(self) -> Dict[str, int]:
        """Per-phase cycles (the Fig. 22 breakdown)."""
        phases = {k.name: k.cycles for k in self.kernel_results}
        phases["vector"] = self.vector_cycles
        return phases

    def op_totals(self) -> Dict[str, int]:
        """Operations issued by kind, across kernels and vector phase."""
        totals = {"fmac": 0, "add": 0, "mul": 0, "send": 0}
        for result in self.kernel_results:
            for kind, count in result.op_counts.items():
                totals[kind] += count
        if self.vector_ops:
            for kind, count in self.vector_ops.items():
                totals[kind] += count
        return totals

    def link_activations(self) -> int:
        """Total NoC link traversals of one iteration."""
        return sum(r.link_activations for r in self.kernel_results)


class AzulMachine:
    """A simulated Azul machine executing mapped PCG iterations.

    The machine's view of the NoC is a
    :class:`~repro.sim.fabric.FabricModel` over the configured geometry
    (``config.topology`` selects torus or mesh via
    :func:`repro.comm.make_geometry`); tree/link queries go through
    ``self.fabric`` rather than the raw geometry.  ``self.torus`` is
    kept as a backwards-compatible alias for the geometry object.
    """

    def __init__(self, config: Optional[AzulConfig] = None,
                 pe: PEModel = AZUL_PE):
        self.config = config or AzulConfig()
        self.pe = pe
        self.fabric = FabricModel(
            make_geometry(self.config), self.config.hop_cycles
        )
        self.torus = self.fabric.geometry

    # ------------------------------------------------------------------
    def compile(self, matrix: CSRMatrix, lower: CSRMatrix,
                placement: Placement,
                multicast: str = "tree") -> PCGIterationProgram:
        """Compile a mapped (A, L) pair into an iteration program."""
        if placement.n_tiles != self.config.num_tiles:
            raise SimulationError(
                f"placement targets {placement.n_tiles} tiles but the "
                f"machine has {self.config.num_tiles}"
            )
        return build_pcg_program(
            matrix, lower, placement, self.torus, self.config,
            multicast=multicast,
        )

    def run_kernel(self, program_kernel, x=None, b=None,
                   record_issue_trace: bool = False) -> KernelResult:
        """Simulate a single compiled kernel."""
        simulator = KernelSimulator(
            program_kernel, self.torus, self.config, self.pe,
            record_issue_trace=record_issue_trace,
        )
        return simulator.run(x=x, b=b)

    # ------------------------------------------------------------------
    def simulate_iteration(self, program: PCGIterationProgram,
                           p: np.ndarray, r: np.ndarray,
                           record_issue_trace: bool = False
                           ) -> IterationResult:
        """Simulate one PCG iteration's kernels on representative vectors.

        ``p`` feeds the SpMV; ``r`` feeds the preconditioner solves.
        The numeric outputs are returned inside the kernel results so
        callers can verify them against the reference kernels.  With
        ``record_issue_trace`` each kernel result carries its per-op
        issue log (see :mod:`repro.sim.trace`).
        """
        record = record_issue_trace
        spmv_result = self.run_kernel(program.spmv, x=p,
                                      record_issue_trace=record)
        forward_result = self.run_kernel(program.sptrsv_lower, b=r,
                                         record_issue_trace=record)
        backward_result = self.run_kernel(
            program.sptrsv_upper, b=forward_result.output,
            record_issue_trace=record,
        )
        vector_cycles = program.vector_phase.cycles()
        kernel_results = [spmv_result, forward_result, backward_result]
        total = sum(k.cycles for k in kernel_results) + vector_cycles
        return IterationResult(
            kernel_results=kernel_results,
            vector_cycles=vector_cycles,
            total_cycles=total,
            flops_per_iteration=program.flops_per_iteration(),
            config=self.config,
            vector_ops=program.vector_phase.op_counts(program.n),
        )

    def simulate_pcg(self, matrix: CSRMatrix, lower: CSRMatrix,
                     placement: Placement, b: np.ndarray,
                     check: bool = True,
                     multicast: str = "tree",
                     record_issue_trace: bool = False) -> IterationResult:
        """Compile and simulate one steady-state PCG iteration.

        When ``check`` is true, the dataflow outputs are verified
        against the reference kernels (the paper's functional check
        against Ginkgo, Sec. VI-A).  ``record_issue_trace`` forwards to
        each kernel simulation (the Fig. 17 timeline / Chrome-trace
        inputs).
        """
        program = self.compile(matrix, lower, placement,
                               multicast=multicast)
        result = self.simulate_iteration(
            program, p=b, r=b, record_issue_trace=record_issue_trace,
        )
        if check:
            verify_iteration(result, matrix, lower, b)
        return result


def verify_iteration(result: IterationResult, matrix: CSRMatrix,
                     lower: CSRMatrix, b: np.ndarray):
    """Assert the simulated dataflow computed the right numbers."""
    from repro.sparse.ops import sptrsv_lower as ref_lower
    from repro.sparse.ops import sptrsv_upper as ref_upper

    spmv_result, forward_result, backward_result = result.kernel_results
    expected_y = matrix.spmv(b)
    if not np.allclose(spmv_result.output, expected_y, rtol=1e-9, atol=1e-9):
        raise SimulationError("simulated SpMV result mismatch")
    expected_w = ref_lower(lower, b)
    if not np.allclose(forward_result.output, expected_w,
                       rtol=1e-9, atol=1e-9):
        raise SimulationError("simulated forward SpTRSV result mismatch")
    expected_z = ref_upper(lower.transpose(), expected_w)
    if not np.allclose(backward_result.output, expected_z,
                       rtol=1e-8, atol=1e-9):
        raise SimulationError("simulated backward SpTRSV result mismatch")

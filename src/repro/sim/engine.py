"""Discrete-event kernel simulator.

Executes one :class:`~repro.dataflow.kernel_program.KernelProgram`
cycle-accurately *and* numerically: PEs issue operations subject to
issue bandwidth and accumulator RAW hazards (hidden by multithreading,
Sec. V-A), messages traverse torus links at one flit per link per cycle,
multicasts fork in routers, and reductions merge with standalone Adds at
junction tiles.  The computed output vector is bit-comparable to the
reference kernels, which is how functional correctness is verified.

Two interchangeable engines implement the model:

* :class:`ReferenceKernelSimulator` — the original operation-granularity
  engine: every FMAC/ADD/MUL/SEND is one heap event round-trip.  Slow,
  but each step maps 1:1 onto the hardware description; kept as the
  golden model.
* :class:`BatchedKernelSimulator` — the run-granularity engine (the
  default): a ``_T_SAAC`` column-segment run is issued as one batched
  step whose per-op issue times (issue bandwidth, RAW accumulator
  hazards, multithreaded window competition) are computed analytically
  — with numpy for long runs — and whose numeric contribution is a
  vectorized ``partial[rows] += xval * vals`` accumulation.  Batches
  are bounded by an exactness *horizon*: an operation joins the batch
  only while no pending heap event, no competing window task, and no
  triggered side effect could have changed the reference engine's
  choice.  Cycles, outputs, op counts, link statistics, and spills are
  therefore bit-identical to the reference engine (enforced by
  ``tests/test_engine_equivalence.py``).

``KernelSimulator(...)`` transparently constructs the batched engine;
set ``AZUL_SIM_REFERENCE=1`` (or pass ``engine="reference"``) to fall
back to the per-op golden model.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig
from repro.dataflow.kernel_program import KernelProgram
from repro.dataflow.tasks import OpKind
from repro.errors import SimulationError
from repro.sim.pe import PEModel

# Event kinds (heap entries are (time, seq, kind, payload)).
_EV_PUMP = 0
_EV_MCAST = 1    # multicast value arriving at a tree node
_EV_PARTIAL = 2  # reduction partial arriving at a tree node

# Task kinds.
_T_SAAC = 0   # ScaleAndAccumCol: a run of FMACs against a column segment
_T_ADD = 1    # merge one incoming reduction partial
_T_MUL = 2    # solve x_i = (b_i - acc) * (1/d_i)
_T_SEND = 3   # push one value into the router

# Task layout: [arrival_time, kind, payload..., hazard_row].  Index 6
# always holds the row whose accumulator gates the task's *current*
# operation (a dummy row ``n`` with permanently-zero ready time for
# Sends), so the batched engine's selection scan reads one uniform
# ``acc[task[6]]`` with no per-kind branching.  The reference engine
# ignores the slot.
_TASK_HAZARD = 6

#: Sentinel "never" time (must exceed any reachable cycle count).
_BIG = 1 << 62

#: Remaining-run length at which the batched engine switches from the
#: scalar recurrence to the numpy closed form.
_VEC_THRESHOLD = 12

#: Environment variable selecting the per-op golden engine.
REFERENCE_ENV = "AZUL_SIM_REFERENCE"


def _env_wants_reference() -> bool:
    value = os.environ.get(REFERENCE_ENV, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class _Tile:
    """Mutable per-tile simulation state (reference engine)."""

    __slots__ = (
        "tasks", "pe_time", "acc_ready", "busy", "op_counts",
        "next_pump",
    )

    def __init__(self):
        self.tasks = []
        self.pe_time = 0
        self.acc_ready = {}
        self.busy = 0
        self.op_counts = [0, 0, 0, 0]  # FMAC, ADD, MUL, SEND
        self.next_pump = None


class _BatchedTile(_Tile):
    """Tile state with dense per-row accumulators (batched engine).

    ``acc_ready``/``partial`` are dense per-row Python lists — scalar
    reads/writes in the issue loop cost a plain list index instead of a
    numpy scalar round-trip, which dominates the hot path at the small
    run lengths real mapped matrices produce.  ``local_rem`` mirrors
    ``program.local_counts`` for this tile (``None`` when the tile
    holds no matrix nonzeros).
    """

    __slots__ = ("partial", "local_rem")

    def __init__(self, n: int, local_rem):
        super().__init__()
        # One extra slot: row ``n`` is the *dummy hazard row* named by
        # Send tasks' ``_TASK_HAZARD`` field.  It is never written, so
        # ``acc_ready[task[6]]`` is branch-free across task kinds.
        self.acc_ready = [0] * (n + 1)
        self.partial = [0.0] * n
        self.local_rem = local_rem


@dataclass
class KernelResult:
    """Outcome of simulating one kernel.

    Attributes
    ----------
    name:
        Kernel name.
    cycles:
        Completion time of the kernel (last row finished / op retired).
    output:
        The computed result vector (``y`` for SpMV, ``x`` for SpTRSV).
    op_counts:
        Executed operations by kind: ``fmac``, ``add``, ``mul``,
        ``send``.
    busy_slots:
        Total issue slots consumed across all PEs.
    link_activations:
        Total link traversals.
    per_link:
        Activations per directed link ``(src_tile, dst_tile)``.
    spills:
        Messages that overflowed the register buffer into the Data SRAM.
    issue_trace:
        When recording was requested: one ``(cycle, tile, op_kind)``
        tuple per issued operation, for timeline/heatmap analysis.
    """

    name: str
    cycles: int
    output: np.ndarray
    op_counts: Dict[str, int]
    busy_slots: int
    link_activations: int
    per_link: Dict[Tuple[int, int], int] = field(default_factory=dict)
    spills: int = 0
    #: Total cycles flits waited for busy links (congestion measure).
    link_queue_delay: int = 0
    issue_trace: Optional[List[Tuple[int, int, int]]] = None

    def flops(self) -> int:
        """FLOPs executed, including distribution overhead Adds.

        Note: reported GFLOP/s uses the *algorithmic* FLOP count
        (mapping-independent); this counter additionally includes the
        standalone Adds that inter-tile reductions introduce.
        """
        return (
            2 * self.op_counts["fmac"]
            + self.op_counts["add"]
            + self.op_counts["mul"]
        )


class KernelSimulator:
    """Simulates one kernel program on the configured machine.

    Instantiating this class directly dispatches to an engine:
    :class:`BatchedKernelSimulator` by default,
    :class:`ReferenceKernelSimulator` when ``engine="reference"`` or
    the ``AZUL_SIM_REFERENCE`` environment variable is truthy.  The
    subclasses can also be constructed explicitly (e.g. for
    equivalence testing).
    """

    def __new__(cls, program: KernelProgram, torus: TorusGeometry,
                config: AzulConfig, pe: PEModel,
                record_issue_trace: bool = False,
                engine: Optional[str] = None):
        if cls is KernelSimulator:
            cls = _resolve_engine(engine)
        return object.__new__(cls)

    def __init__(self, program: KernelProgram, torus: TorusGeometry,
                 config: AzulConfig, pe: PEModel,
                 record_issue_trace: bool = False,
                 engine: Optional[str] = None):
        self.program = program
        self.torus = torus
        self.config = config
        self.pe = pe
        self.record_issue_trace = record_issue_trace
        self._alu_latency = config.sram_access_cycles + config.fmac_latency_cycles
        self._send_latency = config.sram_access_cycles + 1

    # ------------------------------------------------------------------
    def run(self, x=None, b=None) -> KernelResult:
        """Execute the kernel; returns timing, stats, and the output.

        ``x`` is the input vector for SpMV; ``b`` the right-hand side
        for SpTRSV.
        """
        program = self.program
        n = program.n
        self._events = []
        self._seq = 0
        self._tiles = {}
        self._link_free = {}
        self._per_link = {}
        self._link_count = 0
        self._queue_delay = 0
        self._spills = 0
        self._end_time = 0

        self._issue_trace = [] if self.record_issue_trace else None
        self._node_remaining = {}   # (row, tile) -> pending inputs
        self._rows_done = 0
        self._output = np.zeros(n)
        self._b = None if b is None else np.asarray(b, dtype=np.float64)
        self._x = (
            np.asarray(x, dtype=np.float64) if x is not None
            else np.zeros(n)
        )
        #: Column segments as looked up by the issue paths; the batched
        #: engine swaps in a list-backed copy in _reset_numeric_state.
        self._col_segments = program.col_segments
        self._reset_numeric_state()

        self._init_node_remaining()
        if program.dependent:
            if self._b is None:
                raise SimulationError("SpTRSV simulation requires b")
            self._init_sptrsv()
        else:
            if x is None:
                raise SimulationError("SpMV simulation requires x")
            self._init_spmv()

        self._drain()

        if self._rows_done != n:
            raise SimulationError(
                f"{program.name}: deadlock — only {self._rows_done}/{n} "
                "rows completed"
            )
        op_totals = [0, 0, 0, 0]
        busy = 0
        for tile in self._tiles.values():
            busy += tile.busy
            for k in range(4):
                op_totals[k] += tile.op_counts[k]
        return KernelResult(
            name=program.name,
            cycles=self._end_time,
            output=self._output,
            op_counts={
                "fmac": op_totals[0],
                "add": op_totals[1],
                "mul": op_totals[2],
                "send": op_totals[3],
            },
            busy_slots=busy,
            link_activations=self._link_count,
            per_link=self._per_link,
            spills=self._spills,
            link_queue_delay=self._queue_delay,
            issue_trace=self._issue_trace,
        )

    # ------------------------------------------------------------------
    # Engine-specific numeric state
    # ------------------------------------------------------------------
    def _reset_numeric_state(self):
        self._partial = {}          # (tile, row) -> accumulated value
        self._local_remaining = dict(self.program.local_counts)

    def _partial_value(self, tile_id, row) -> float:
        """Current accumulated partial for ``row`` on ``tile_id``."""
        return self._partial.get((tile_id, row), 0.0)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _init_node_remaining(self):
        """Expected inputs at every reduction-tree node and every home."""
        program = self.program
        local = program.local_counts
        for i in range(program.n):
            home = int(program.vec_tile[i])
            tree = program.red_trees.get(i)
            if tree is None:
                self._node_remaining[(i, home)] = (
                    1 if (home, i) in local else 0
                )
                continue
            children = {}
            for child, parent in tree.edges:
                children[parent] = children.get(parent, 0) + 1
            nodes = {home}
            nodes.update(tree.parent)
            for node in nodes:
                expected = children.get(node, 0)
                if (node, i) in local:
                    expected += 1
                self._node_remaining[(i, node)] = expected

    def _init_spmv(self):
        """Distribute input-vector values at time zero (SendV tasks)."""
        program = self.program
        for j in range(program.n):
            home = int(program.vec_tile[j])
            value = float(self._x[j])
            segment = self._col_segments.get(home, {}).get(j)
            if segment is not None:
                self._enqueue(home, [0, _T_SAAC, segment[0], segment[1],
                                     value, 0, segment[0][0]])
            for tree_index in range(len(program.mcast_trees.get(j, ()))):
                self._enqueue(
                    home,
                    [0, _T_SEND, ("mcast", j, value, tree_index),
                     0, 0, 0, program.n],
                )
        # Rows with no pending inputs complete immediately (y_i = 0 or
        # purely-local rows start from their FMACs).
        for i in range(program.n):
            home = int(program.vec_tile[i])
            if self._node_remaining[(i, home)] == 0:
                self._row_complete(i, 0)
        self._flush_pumps()

    def _init_sptrsv(self):
        """Schedule dependence-free rows for solving at time zero."""
        program = self.program
        for i in range(program.n):
            home = int(program.vec_tile[i])
            if self._node_remaining[(i, home)] == 0:
                self._enqueue(home, [0, _T_MUL, i, 0, 0, 0, i])
        self._flush_pumps()

    def _flush_pumps(self):
        for tile_id in list(self._tiles):
            self._schedule_pump(tile_id, 0)

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------
    def _push(self, time, kind, payload):
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    def _drain(self):
        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            if kind == _EV_PUMP:
                tile_id = payload
                tile = self._tiles[tile_id]
                if tile.next_pump != time:
                    continue  # stale: a different pump is now scheduled
                tile.next_pump = None
                self._pump(tile_id, time)
            elif kind == _EV_MCAST:
                node, j, value, tree_index = payload
                self._on_mcast_arrival(node, j, value, time, tree_index)
            else:
                node, row, value = payload
                self._enqueue(node, [time, _T_ADD, row, value, 0, 0, row])
                self._schedule_pump(node, time)

    def _tile(self, tile_id) -> _Tile:
        tile = self._tiles.get(tile_id)
        if tile is None:
            tile = self._make_tile(tile_id)
            self._tiles[tile_id] = tile
        return tile

    def _make_tile(self, tile_id) -> _Tile:
        return _Tile()

    def _enqueue(self, tile_id, task):
        """Append a task to a tile, modeling message-buffer spills."""
        tile = self._tile(tile_id)
        if len(tile.tasks) >= self.config.msg_buffer_entries:
            self._spills += 1
            task[0] += 2 * self.config.sram_access_cycles
        tile.tasks.append(task)

    def _schedule_pump(self, tile_id, time):
        tile = self._tile(tile_id)
        if not self.pe.is_ideal and tile.pe_time > time:
            # Nothing can issue before the PE's next free slot anyway.
            time = tile.pe_time
        if tile.next_pump is None or time < tile.next_pump:
            tile.next_pump = time
            self._push(time, _EV_PUMP, tile_id)

    # ------------------------------------------------------------------
    # PE issue (reference, operation-granularity path)
    # ------------------------------------------------------------------
    def _op_ready_time(self, tile: _Tile, task) -> int:
        """Earliest cycle the task's current operation can issue."""
        kind = task[1]
        ready = max(task[0], tile.pe_time)
        if kind == _T_SAAC:
            row = int(task[2][task[5]])
            return max(ready, tile.acc_ready.get(row, 0))
        if kind == _T_ADD:
            return max(ready, tile.acc_ready.get(task[2], 0))
        if kind == _T_MUL:
            return max(ready, tile.acc_ready.get(task[2], 0))
        return ready  # SEND

    def _pump(self, tile_id, now):
        """Issue every operation that can start at ``now``."""
        tile = self._tiles[tile_id]
        pe = self.pe
        limit = pe.thread_contexts if pe.multithreaded else 1
        while tile.tasks:
            tasks = tile.tasks
            window = limit if limit < len(tasks) else len(tasks)
            best_index = 0
            best_time = self._op_ready_time(tile, tasks[0])
            for index in range(1, window):
                ready = self._op_ready_time(tile, tasks[index])
                if ready < best_time:
                    best_time = ready
                    best_index = index
            if best_time > now:
                self._schedule_pump(tile_id, best_time)
                return
            self._issue(tile_id, tile, tasks[best_index], best_index,
                        best_time)
            if not pe.is_ideal and tile.tasks:
                # One issue slot consumed; revisit at the next free cycle.
                self._schedule_pump(tile_id, tile.pe_time)
                return

    def _issue(self, tile_id, tile: _Tile, task, task_index, issue_time):
        """Execute one operation of ``task`` at ``issue_time``."""
        kind = task[1]
        tile.busy += self.pe.issue_cycles
        if self._issue_trace is not None:
            self._issue_trace.append((issue_time, tile_id, kind))
        if not self.pe.is_ideal:
            tile.pe_time = issue_time + self.pe.issue_cycles

        if kind == _T_SAAC:
            rows, vals, xval, pos = task[2], task[3], task[4], task[5]
            row = int(rows[pos])
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.FMAC] += 1
            tile.acc_ready[row] = completion
            key = (tile_id, row)
            self._partial[key] = self._partial.get(key, 0.0) + xval * vals[pos]
            task[5] += 1
            if task[5] >= len(rows):
                del tile.tasks[task_index]
            remaining = self._local_remaining[key] - 1
            self._local_remaining[key] = remaining
            if remaining == 0:
                self._node_input_done(row, tile_id, completion)
        elif kind == _T_ADD:
            row, value = task[2], task[3]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.ADD] += 1
            tile.acc_ready[row] = completion
            key = (tile_id, row)
            self._partial[key] = self._partial.get(key, 0.0) + value
            del tile.tasks[task_index]
            self._node_input_done(row, tile_id, completion)
        elif kind == _T_MUL:
            row = task[2]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.MUL] += 1
            del tile.tasks[task_index]
            self._solve_row(row, tile_id, completion)
        else:  # _T_SEND
            payload = task[2]
            completion = issue_time + self._send_latency
            tile.op_counts[OpKind.SEND] += 1
            del tile.tasks[task_index]
            if payload[0] == "mcast":
                _, j, value, tree_index = payload
                tree = self.program.mcast_trees[j][tree_index]
                self._forward_mcast(tree, tree.root, j, value, completion,
                                    tree_index)
            else:
                _, row, value, parent = payload
                self._traverse_link(tile_id, parent, completion,
                                    _EV_PARTIAL, (parent, row, value))
        self._end_time = max(self._end_time, completion)

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def _traverse_link(self, src, dst, time, event_kind, payload):
        """Serialize a flit onto a link and schedule its arrival."""
        link = (src, dst)
        depart = max(time, self._link_free.get(link, 0))
        self._queue_delay += depart - time
        self._link_free[link] = depart + 1
        self._per_link[link] = self._per_link.get(link, 0) + 1
        self._link_count += 1
        arrival = depart + self.config.hop_cycles
        self._push(arrival, event_kind, payload)
        self._end_time = max(self._end_time, arrival)

    def _forward_mcast(self, tree, node, j, value, time, tree_index):
        """Router-side fork of a multicast at ``node``."""
        for child in tree.children.get(node, ()):
            self._traverse_link(node, child, time, _EV_MCAST,
                                (child, j, value, tree_index))

    def _on_mcast_arrival(self, node, j, value, time, tree_index):
        """A multicast value reached ``node``: forward and trigger work."""
        tree = self.program.mcast_trees[j][tree_index]
        self._forward_mcast(tree, node, j, value, time, tree_index)
        if node not in tree.destinations:
            return
        segment = self._col_segments.get(node, {}).get(j)
        if segment is not None:
            self._enqueue(node, [time, _T_SAAC, segment[0], segment[1],
                                 value, 0, segment[0][0]])
            self._schedule_pump(node, time)

    # ------------------------------------------------------------------
    # Reduction / completion logic
    # ------------------------------------------------------------------
    def _node_input_done(self, row, node, time):
        """One expected input of reduction node ``(row, node)`` merged."""
        key = (row, node)
        remaining = self._node_remaining[key] - 1
        self._node_remaining[key] = remaining
        if remaining > 0:
            return
        home = int(self.program.vec_tile[row])
        if node == home:
            self._row_complete(row, time)
        else:
            tree = self.program.red_trees[row]
            parent = tree.parent[node]
            value = self._partial_value(node, row)
            self._enqueue(node, [time, _T_SEND,
                                 ("partial", row, value, parent),
                                 0, 0, 0, self.program.n])
            self._schedule_pump(node, time)

    def _row_complete(self, row, time):
        """All of row ``row``'s inputs reached its home tile."""
        program = self.program
        home = int(program.vec_tile[row])
        if program.dependent:
            self._enqueue(home, [time, _T_MUL, row, 0, 0, 0, row])
            self._schedule_pump(home, time)
        else:
            self._output[row] = self._partial_value(home, row)
            self._rows_done += 1
            self._end_time = max(self._end_time, time)

    def _solve_row(self, row, home, completion):
        """SpTRSV: produce ``x_row`` and distribute it down the column."""
        program = self.program
        acc = self._partial_value(home, row)
        value = (self._b[row] - acc) * program.inv_diag[row]
        self._output[row] = value
        self._rows_done += 1
        segment = self._col_segments.get(home, {}).get(row)
        if segment is not None:
            self._enqueue(home, [completion, _T_SAAC, segment[0],
                                 segment[1], value, 0, segment[0][0]])
        for tree_index in range(len(program.mcast_trees.get(row, ()))):
            self._enqueue(home, [completion, _T_SEND,
                                 ("mcast", row, value, tree_index),
                                 0, 0, 0, program.n])
        self._schedule_pump(home, completion)


class ReferenceKernelSimulator(KernelSimulator):
    """The original operation-granularity engine (golden model).

    Every FMAC/ADD/MUL/SEND makes a full heap round-trip, so events map
    1:1 onto the hardware description.  Selected by
    ``engine="reference"`` or ``AZUL_SIM_REFERENCE=1``.
    """


class BatchedKernelSimulator(KernelSimulator):
    """Run-granularity engine: batches column-segment runs exactly.

    Exactness argument (mirrored by ``tests/test_engine_equivalence.py``):

    * **Horizon** ``h`` — the earliest pending heap event.  While the
      next issue time is strictly below ``h`` no external event (message
      arrival, other tile's pump) could have interposed in the reference
      engine, so the pump keeps going inline instead of bouncing through
      the heap.  Ideal PEs additionally issue everything ready at the
      current pump time regardless of the heap, exactly like the
      reference loop.
    * **Window competition** — a batched SAAC run continues only while
      its next op's issue time stays strictly below every *other*
      window task's hazard floor ``max(task_time, acc_ready[row])``.
      Accumulator-ready times only grow, so floors computed at batch
      start remain valid; ties conservatively end the batch and defer
      to the exact selection scan.
    * **Triggers** — the first op whose last local contribution lands
      (``local_rem`` hits zero) ends the batch, because its
      ``_node_input_done`` side effect can enqueue work and push events.
    * **Numerics** — rows within a run are distinct, so the vectorized
      ``partial[rows] += xval * vals`` performs the identical IEEE-754
      operations in the identical order as the per-op reference.
    """

    # ------------------------------------------------------------------
    def __init__(self, program: KernelProgram, torus: TorusGeometry,
                 config: AzulConfig, pe: PEModel,
                 record_issue_trace: bool = False,
                 engine: Optional[str] = None):
        super().__init__(program, torus, config, pe,
                         record_issue_trace=record_issue_trace,
                         engine=engine)
        # Engine-constant parameters, cached as plain attributes so the
        # hot loops never chase properties or nested config objects.
        self._ic = pe.issue_cycles
        self._ideal = pe.is_ideal
        self._limit = pe.thread_contexts if pe.multithreaded else 1
        self._msgbuf = config.msg_buffer_entries
        self._spill_pen = 2 * config.sram_access_cycles
        self._hop = config.hop_cycles
        self._vec_tile_list = program.vec_tile.tolist()
        # Column segments as plain Python lists: scalar ``rows[pos]`` /
        # ``vals[pos]`` reads are then native ints/floats.  ``tolist``
        # preserves the exact IEEE-754 values.
        self._segments_lists = {
            tile: {
                j: (seg[0].tolist(), seg[1].tolist())
                for j, seg in segments.items()
            }
            for tile, segments in program.col_segments.items()
        }
        # Flattened multicast routing: (j, tree_index, node) -> (children
        # tuple, triggered column segment or None), plus the root fork
        # used by Send ops.  One dict probe replaces the tree-attribute
        # chase, set membership, and nested segment lookup per arrival.
        plan: Dict[Tuple[int, int, int],
                   Tuple[tuple, Optional[tuple]]] = {}
        send_plan: Dict[Tuple[int, int], Tuple[int, tuple]] = {}
        for j, trees in program.mcast_trees.items():
            for tree_index, tree in enumerate(trees):
                nodes = set(tree.children)
                for childs in tree.children.values():
                    nodes.update(childs)
                nodes.add(tree.root)
                for node in nodes:
                    segment = None
                    if node in tree.destinations:
                        segments = self._segments_lists.get(node)
                        if segments is not None:
                            segment = segments.get(j)
                    plan[(j, tree_index, node)] = (
                        tuple(tree.children.get(node, ())), segment,
                    )
                send_plan[(j, tree_index)] = (
                    tree.root, tuple(tree.children.get(tree.root, ())),
                )
        self._mcast_plan = plan
        self._mcast_send = send_plan
        # Dummy hazard row (see ``_TASK_HAZARD``): Sends gate on nothing,
        # so they point at accumulator slot ``n`` which stays 0 forever.
        self._dummy_row = int(program.n)

    def _reset_numeric_state(self):
        by_tile: Dict[int, List[int]] = {}
        n = self.program.n
        for (tile_id, row), count in self.program.local_counts.items():
            rem = by_tile.get(tile_id)
            if rem is None:
                rem = [0] * n
                by_tile[tile_id] = rem
            rem[row] = count
        self._local_by_tile = by_tile
        self._col_segments = self._segments_lists

    def _make_tile(self, tile_id) -> _Tile:
        return _BatchedTile(self.program.n,
                            self._local_by_tile.get(tile_id))

    def _partial_value(self, tile_id, row) -> float:
        tile = self._tiles.get(tile_id)
        if tile is None:
            return 0.0
        return tile.partial[row]

    # ------------------------------------------------------------------
    # Event machinery (same semantics as the base class, with the
    # per-event constant lookups hoisted).
    # ------------------------------------------------------------------
    def _drain(self):
        events = self._events
        pop = heapq.heappop
        tiles = self._tiles
        pump = self._pump
        arrival = self._on_mcast_arrival
        enqueue_pump = self._enqueue_and_pump
        while events:
            time, _, kind, payload = pop(events)
            if kind == _EV_PUMP:
                tile = tiles[payload]
                if tile.next_pump != time:
                    continue  # stale: a different pump is now scheduled
                tile.next_pump = None
                pump(payload, time)
            elif kind == _EV_MCAST:
                node, j, value, tree_index = payload
                arrival(node, j, value, time, tree_index)
            else:
                node, row, value = payload
                enqueue_pump(node, [time, _T_ADD, row, value, 0, 0, row],
                             time)

    def _enqueue_and_pump(self, tile_id, task, time):
        """Fused ``_enqueue`` + ``_schedule_pump`` (one tile fetch)."""
        tiles = self._tiles
        tile = tiles.get(tile_id)
        if tile is None:
            tile = self._make_tile(tile_id)
            tiles[tile_id] = tile
        tasks = tile.tasks
        if len(tasks) >= self._msgbuf:
            self._spills += 1
            task[0] += self._spill_pen
        tasks.append(task)
        if not self._ideal and tile.pe_time > time:
            time = tile.pe_time
        nxt = tile.next_pump
        if nxt is None or time < nxt:
            tile.next_pump = time
            heapq.heappush(self._events, (time, self._seq, _EV_PUMP,
                                          tile_id))
            self._seq += 1

    def _enqueue(self, tile_id, task):
        tiles = self._tiles
        tile = tiles.get(tile_id)
        if tile is None:
            tile = self._make_tile(tile_id)
            tiles[tile_id] = tile
        tasks = tile.tasks
        if len(tasks) >= self._msgbuf:
            self._spills += 1
            task[0] += self._spill_pen
        tasks.append(task)

    def _schedule_pump(self, tile_id, time):
        tiles = self._tiles
        tile = tiles.get(tile_id)
        if tile is None:
            tile = self._make_tile(tile_id)
            tiles[tile_id] = tile
        if not self._ideal and tile.pe_time > time:
            time = tile.pe_time
        nxt = tile.next_pump
        if nxt is None or time < nxt:
            tile.next_pump = time
            heapq.heappush(self._events, (time, self._seq, _EV_PUMP,
                                          tile_id))
            self._seq += 1

    def _traverse_link(self, src, dst, time, event_kind, payload):
        link = (src, dst)
        link_free = self._link_free
        depart = link_free.get(link, 0)
        if depart < time:
            depart = time
        else:
            self._queue_delay += depart - time
        link_free[link] = depart + 1
        per_link = self._per_link
        per_link[link] = per_link.get(link, 0) + 1
        self._link_count += 1
        arrival = depart + self._hop
        heapq.heappush(self._events, (arrival, self._seq, event_kind,
                                      payload))
        self._seq += 1
        if arrival > self._end_time:
            self._end_time = arrival

    def _on_mcast_arrival(self, node, j, value, time, tree_index):
        children, segment = self._mcast_plan[(j, tree_index, node)]
        if children:
            traverse = self._traverse_link
            for child in children:
                traverse(node, child, time, _EV_MCAST,
                         (child, j, value, tree_index))
        if segment is not None:
            self._enqueue_and_pump(
                node, [time, _T_SAAC, segment[0], segment[1], value, 0,
                       segment[0][0]],
                time,
            )

    def _node_input_done(self, row, node, time):
        remaining_map = self._node_remaining
        key = (row, node)
        remaining = remaining_map[key] - 1
        remaining_map[key] = remaining
        if remaining > 0:
            return
        home = self._vec_tile_list[row]
        if node == home:
            self._row_complete(row, time)
        else:
            parent = self.program.red_trees[row].parent[node]
            tile = self._tiles.get(node)
            value = 0.0 if tile is None else tile.partial[row]
            self._enqueue_and_pump(
                node, [time, _T_SEND, ("partial", row, value, parent),
                       0, 0, 0, self._dummy_row],
                time,
            )

    def _row_complete(self, row, time):
        home = self._vec_tile_list[row]
        if self.program.dependent:
            self._enqueue_and_pump(home, [time, _T_MUL, row, 0, 0, 0, row],
                                   time)
        else:
            tile = self._tiles.get(home)
            self._output[row] = 0.0 if tile is None else tile.partial[row]
            self._rows_done += 1
            if time > self._end_time:
                self._end_time = time

    def _solve_row(self, row, home, completion):
        program = self.program
        tile = self._tiles.get(home)
        acc = 0.0 if tile is None else tile.partial[row]
        # ``float()`` keeps the produced value a native float (the bits
        # are unchanged) so downstream FMACs avoid numpy scalar math.
        value = float((self._b[row] - acc) * program.inv_diag[row])
        self._output[row] = value
        self._rows_done += 1
        segments = self._col_segments.get(home)
        segment = None if segments is None else segments.get(row)
        if segment is not None:
            self._enqueue(home, [completion, _T_SAAC, segment[0],
                                 segment[1], value, 0, segment[0][0]])
        for tree_index in range(len(program.mcast_trees.get(row, ()))):
            self._enqueue(home, [completion, _T_SEND,
                                 ("mcast", row, value, tree_index),
                                 0, 0, 0, self._dummy_row])
        self._schedule_pump(home, completion)

    # ------------------------------------------------------------------
    def _issue(self, tile_id, tile, task, task_index, issue_time):
        """Non-SAAC issue (SAAC goes through ``_issue_saac_batch``)."""
        kind = task[1]
        ic = self._ic
        tile.busy += ic
        if self._issue_trace is not None:
            self._issue_trace.append((issue_time, tile_id, kind))
        if not self._ideal:
            tile.pe_time = issue_time + ic
        if kind == _T_ADD:
            row = task[2]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.ADD] += 1
            tile.acc_ready[row] = completion
            tile.partial[row] += task[3]
            del tile.tasks[task_index]
            if completion > self._end_time:
                self._end_time = completion
            self._node_input_done(row, tile_id, completion)
        elif kind == _T_MUL:
            row = task[2]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.MUL] += 1
            del tile.tasks[task_index]
            if completion > self._end_time:
                self._end_time = completion
            self._solve_row(row, tile_id, completion)
        else:  # _T_SEND
            payload = task[2]
            completion = issue_time + self._send_latency
            tile.op_counts[OpKind.SEND] += 1
            del tile.tasks[task_index]
            if completion > self._end_time:
                self._end_time = completion
            if payload[0] == "mcast":
                _, j, value, tree_index = payload
                root, children = self._mcast_send[(j, tree_index)]
                if children:
                    traverse = self._traverse_link
                    for child in children:
                        traverse(root, child, completion, _EV_MCAST,
                                 (child, j, value, tree_index))
            else:
                _, row, value, parent = payload
                self._traverse_link(tile_id, parent, completion,
                                    _EV_PARTIAL, (parent, row, value))

    # ------------------------------------------------------------------
    def _pump(self, tile_id, now):
        """Horizon-bounded pump: drains inline while no event intervenes.

        The single-op SAAC issue (the dominant case once the machine is
        saturated and batches are horizon-bounded) is fully inlined
        here; runs that can batch further go through
        ``_issue_saac_batch``.
        """
        tile = self._tiles[tile_id]
        ideal = self._ideal
        limit = self._limit
        ic = self._ic
        alu = self._alu_latency
        events = self._events
        acc = tile.acc_ready
        tasks = tile.tasks
        partial = tile.partial
        local_rem = tile.local_rem
        op_counts = tile.op_counts
        trace = self._issue_trace
        while True:
            n_tasks = len(tasks)
            if not n_tasks:
                return
            h = events[0][0] if events else _BIG
            window = limit if limit < n_tasks else n_tasks
            # Inline selection, identical to the reference scan: the
            # winner is the first strict minimum of
            # ``ready = max(arrival, acc hazard, pe_time)``.  Ties go to
            # the lowest index, so the first task whose hazard floor is
            # at or below ``pe_time`` wins outright (``ready`` cannot
            # drop below ``pe_time``) and the scan short-circuits.
            pe_time = tile.pe_time
            best_index = 0
            best_ready = _BIG
            index = 0
            for task in tasks if window == n_tasks else tasks[:window]:
                # Branch-free hazard read: slot ``_TASK_HAZARD`` always
                # names the row whose accumulator gates the task's
                # current op (Sends name the dummy row, stuck at 0).
                m = acc[task[6]]
                t = task[0]
                if t > m:
                    m = t
                if m <= pe_time:
                    best_index = index
                    best_ready = pe_time
                    break
                if m < best_ready:
                    best_ready = m
                    best_index = index
                index += 1
            best_time = best_ready
            if best_time > now:
                if best_time >= h:
                    # An event at or before best_time could change the
                    # picture: yield to the heap (reference order).
                    nxt = tile.next_pump
                    if nxt is None or best_time < nxt:
                        tile.next_pump = best_time
                        heapq.heappush(events, (best_time, self._seq,
                                                _EV_PUMP, tile_id))
                        self._seq += 1
                    return
                # Fast-forward: nothing can intervene.  The reference
                # would push a pump at best_time and pop it straight
                # back (clearing ``next_pump``); mirror that state.
                now = best_time
                tile.next_pump = None
            task = tasks[best_index]
            if task[1] == 0:  # _T_SAAC
                rows = task[2]
                pos = task[5]
                row0 = rows[pos]
                trigger = local_rem[row0] == 1
                p1 = pos + 1
                # Probe whether a second run op could join the batch;
                # if so, defer to the multi-op planner.  The heap
                # horizon blocks extension in the vast majority of
                # pumps, so the hazard floor of the losing window tasks
                # (``other_floor``) is only computed once the cheap
                # horizon gate has already passed.
                if not trigger and p1 < len(rows):
                    t0 = task[0]
                    ready2 = acc[rows[p1]]
                    if t0 > ready2:
                        ready2 = t0
                    if ideal:
                        t1 = ready2
                        gate = ready2 <= now or ready2 < h
                    else:
                        t1 = best_time + ic
                        if ready2 > t1:
                            t1 = ready2
                        gate = t1 < h
                    if gate:
                        other_floor = _BIG
                        k = 0
                        for task2 in (tasks if window == n_tasks
                                      else tasks[:window]):
                            if k != best_index:
                                m = acc[task2[6]]
                                t = task2[0]
                                if t > m:
                                    m = t
                                if m < other_floor:
                                    other_floor = m
                            k += 1
                        if t1 < other_floor:
                            now = self._issue_saac_batch(
                                tile_id, tile, task, best_index,
                                best_time, other_floor, h, now, t1,
                            )
                            if now < 0:
                                return
                            continue
                # -- single-op issue, fully inline ---------------------
                completion = best_time + alu
                acc[row0] = completion
                partial[row0] += task[4] * task[3][pos]
                local_rem[row0] -= 1
                op_counts[0] += 1
                tile.busy += ic
                if trace is not None:
                    trace.append((best_time, tile_id, 0))
                if p1 >= len(rows):
                    del tasks[best_index]
                else:
                    task[5] = p1
                    task[6] = rows[p1]
                if not ideal:
                    pe_time = best_time + ic
                    tile.pe_time = pe_time
                if completion > self._end_time:
                    self._end_time = completion
                if trigger:
                    self._node_input_done(row0, tile_id, completion)
                if ideal:
                    # The reference ideal pump keeps draining within
                    # one invocation.
                    continue
            else:
                self._issue(tile_id, tile, task, best_index, best_time)
                if ideal:
                    # The reference ideal pump keeps draining within
                    # one invocation (no heap round-trip, no next_pump
                    # churn).
                    continue
                pe_time = tile.pe_time
            if not tasks:
                # Reference exits its loop without scheduling.
                return
            if events and events[0][0] <= pe_time:
                nxt = tile.next_pump
                if nxt is None or pe_time < nxt:
                    tile.next_pump = pe_time
                    heapq.heappush(events, (pe_time, self._seq,
                                            _EV_PUMP, tile_id))
                    self._seq += 1
                return
            # Reference would push a pump at pe_time and pop it right
            # back (strictly before any event): continue inline with
            # the same ``next_pump = None`` state.
            tile.next_pump = None
            now = pe_time

    # ------------------------------------------------------------------
    def _issue_saac_batch(self, tile_id, tile, task, task_index,
                          best_time, other_floor, h, now, t1):
        """Issue a multi-op batch of one SAAC run (exactness-bounded).

        Only called once ``_pump``'s probe established that the run's
        second op (issuing at ``t1``) can join the batch, so ``count``
        is always at least 2.  Returns the pump's new ``now``
        (non-negative) to continue inline, or ``-1`` when the pump
        must yield to the heap.
        """
        ic = self._ic
        ideal = self._ideal
        alu = self._alu_latency
        acc = tile.acc_ready
        partial = tile.partial
        local_rem = tile.local_rem
        rows = task[2]
        vals = task[3]
        xval = task[4]
        pos = task[5]
        n_run = len(rows)
        t0 = task[0]
        p1 = pos + 1
        running = now

        if n_run - pos >= _VEC_THRESHOLD:
            count, times, running = self._plan_batch_vectorized(
                acc, local_rem, rows, pos, t0, best_time,
                other_floor, h, now,
            )
            trigger = local_rem[rows[pos + count - 1]] == 1
            last_t = times[count - 1]
            comp_max = max(times) + alu
        else:
            t_next = t1
            if ideal and t_next > running:
                running = t_next
            times = [best_time, t_next]
            cur = t_next
            trigger = local_rem[rows[p1]] == 1
            p = p1 + 1
            while p < n_run and not trigger:
                row = rows[p]
                ready = acc[row]
                if t0 > ready:
                    ready = t0
                if ideal:
                    t_next = ready
                    if t_next >= other_floor or (
                        t_next > running and t_next >= h
                    ):
                        break
                    if t_next > running:
                        running = t_next
                else:
                    floor = cur + ic
                    t_next = ready if ready > floor else floor
                    if t_next >= other_floor or t_next >= h:
                        break
                times.append(t_next)
                cur = t_next
                p += 1
                if local_rem[row] == 1:
                    trigger = True
                    break
            count = len(times)
            last_t = cur
            comp_max = max(times) + alu

        end = pos + count
        # Vectorized numeric contribution: the per-op products are one
        # array multiply; rows within a run are distinct, so the
        # scatter applies the identical IEEE-754 adds in the identical
        # order as per-op issue.
        contrib = (
            xval * np.asarray(vals[pos:end], dtype=np.float64)
        ).tolist()
        for k in range(count):
            r = rows[pos + k]
            acc[r] = times[k] + alu
            partial[r] += contrib[k]
            local_rem[r] -= 1
        tile.op_counts[0] += count
        tile.busy += ic * count
        if self._issue_trace is not None:
            trace = self._issue_trace
            for k in range(count):
                trace.append((times[k], tile_id, _T_SAAC))
        if not ideal:
            tile.pe_time = last_t + ic
        elif running > now:
            # An in-batch fast-forward: the reference pushed a pump at
            # the hop time and popped it back, clearing ``next_pump``.
            # Mirror that before the trigger's side effects reschedule.
            tile.next_pump = None
        if comp_max > self._end_time:
            self._end_time = comp_max

        if end >= n_run:
            del tile.tasks[task_index]
        else:
            task[5] = end
            task[6] = rows[end]

        if trigger:
            self._node_input_done(rows[end - 1], tile_id, last_t + alu)

        if ideal:
            return running
        pe_time = tile.pe_time
        if not tile.tasks:
            return pe_time  # pump loop exits without scheduling
        events = self._events
        if events and events[0][0] <= pe_time:
            nxt = tile.next_pump
            if nxt is None or pe_time < nxt:
                tile.next_pump = pe_time
                heapq.heappush(events, (pe_time, self._seq, _EV_PUMP,
                                        tile_id))
                self._seq += 1
            return -1
        tile.next_pump = None
        return pe_time

    def _plan_batch_vectorized(self, acc, local_rem, rows, pos, t0,
                               best_time, other_floor, h, now):
        """Closed-form issue times for a long run tail (numpy path).

        Solves the recurrence ``t_k = max(ready_k, t_{k-1} + ic)``
        (non-ideal) or ``t_k = ready_k`` (ideal) for the whole
        remaining run, then truncates at the first op violating the
        horizon/window bounds or landing a trigger.
        Returns ``(count, times_list, running_now)``.
        """
        ic = self._ic
        tail = rows[pos:]
        length = len(tail)
        ready = np.fromiter(
            (acc[r] for r in tail), dtype=np.int64, count=length,
        )
        np.maximum(ready, t0, out=ready)
        if self._ideal:
            t_all = ready
            t_all[0] = best_time
            runmax = np.maximum.accumulate(t_all)
            prior = np.empty(length, dtype=np.int64)
            prior[0] = now
            np.maximum(runmax[:-1], now, out=prior[1:])
            ok = (t_all < other_floor) & ((t_all <= prior) | (t_all < h))
        else:
            steps = ic * np.arange(length, dtype=np.int64)
            shifted = ready - steps
            shifted[0] = best_time
            t_all = np.maximum.accumulate(shifted) + steps
            bound = other_floor if other_floor < h else h
            ok = t_all < bound
        ok[0] = True
        bad = np.nonzero(~ok)[0]
        count = int(bad[0]) if len(bad) else length
        # Truncate at (and include) the first trigger op.
        for k in range(count):
            if local_rem[tail[k]] == 1:
                count = k + 1
                break
        times = t_all[:count].tolist()
        if self._ideal:
            running = max(times)
            if now > running:
                running = now
        else:
            running = times[-1]
        return count, times, running


def _resolve_engine(engine: Optional[str]) -> type:
    """Map an ``engine`` argument / environment to a simulator class."""
    if engine is None:
        engine = "reference" if _env_wants_reference() else "batched"
    if engine == "batched":
        return BatchedKernelSimulator
    if engine == "reference":
        return ReferenceKernelSimulator
    raise ValueError(
        f"unknown simulator engine {engine!r}; "
        "choices: 'batched', 'reference'"
    )

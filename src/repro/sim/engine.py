"""Discrete-event kernel simulator.

Executes one :class:`~repro.dataflow.kernel_program.KernelProgram`
cycle-accurately *and* numerically: PEs issue operations subject to
issue bandwidth and accumulator RAW hazards (hidden by multithreading,
Sec. V-A), messages traverse torus links at one flit per link per cycle,
multicasts fork in routers, and reductions merge with standalone Adds at
junction tiles.  The computed output vector is bit-comparable to the
reference kernels, which is how functional correctness is verified.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig
from repro.dataflow.kernel_program import KernelProgram
from repro.dataflow.tasks import OpKind
from repro.errors import SimulationError
from repro.sim.pe import PEModel

# Event kinds (heap entries are (time, seq, kind, payload)).
_EV_PUMP = 0
_EV_MCAST = 1    # multicast value arriving at a tree node
_EV_PARTIAL = 2  # reduction partial arriving at a tree node

# Task kinds.
_T_SAAC = 0   # ScaleAndAccumCol: a run of FMACs against a column segment
_T_ADD = 1    # merge one incoming reduction partial
_T_MUL = 2    # solve x_i = (b_i - acc) * (1/d_i)
_T_SEND = 3   # push one value into the router


class _Tile:
    """Mutable per-tile simulation state."""

    __slots__ = (
        "tasks", "pe_time", "acc_ready", "busy", "op_counts",
        "next_pump",
    )

    def __init__(self):
        self.tasks = []
        self.pe_time = 0
        self.acc_ready = {}
        self.busy = 0
        self.op_counts = [0, 0, 0, 0]  # FMAC, ADD, MUL, SEND
        self.next_pump = None


@dataclass
class KernelResult:
    """Outcome of simulating one kernel.

    Attributes
    ----------
    name:
        Kernel name.
    cycles:
        Completion time of the kernel (last row finished / op retired).
    output:
        The computed result vector (``y`` for SpMV, ``x`` for SpTRSV).
    op_counts:
        Executed operations by kind: ``fmac``, ``add``, ``mul``,
        ``send``.
    busy_slots:
        Total issue slots consumed across all PEs.
    link_activations:
        Total link traversals.
    per_link:
        Activations per directed link.
    spills:
        Messages that overflowed the register buffer into the Data SRAM.
    issue_trace:
        When recording was requested: one ``(cycle, tile, op_kind)``
        tuple per issued operation, for timeline/heatmap analysis.
    """

    name: str
    cycles: int
    output: np.ndarray
    op_counts: dict
    busy_slots: int
    link_activations: int
    per_link: dict = field(default_factory=dict)
    spills: int = 0
    #: Total cycles flits waited for busy links (congestion measure).
    link_queue_delay: int = 0
    issue_trace: list = None

    def flops(self) -> int:
        """FLOPs executed, including distribution overhead Adds.

        Note: reported GFLOP/s uses the *algorithmic* FLOP count
        (mapping-independent); this counter additionally includes the
        standalone Adds that inter-tile reductions introduce.
        """
        return (
            2 * self.op_counts["fmac"]
            + self.op_counts["add"]
            + self.op_counts["mul"]
        )


class KernelSimulator:
    """Simulates one kernel program on the configured machine."""

    def __init__(self, program: KernelProgram, torus: TorusGeometry,
                 config: AzulConfig, pe: PEModel,
                 record_issue_trace: bool = False):
        self.program = program
        self.torus = torus
        self.config = config
        self.pe = pe
        self.record_issue_trace = record_issue_trace
        self._alu_latency = config.sram_access_cycles + config.fmac_latency_cycles
        self._send_latency = config.sram_access_cycles + 1

    # ------------------------------------------------------------------
    def run(self, x=None, b=None) -> KernelResult:
        """Execute the kernel; returns timing, stats, and the output.

        ``x`` is the input vector for SpMV; ``b`` the right-hand side
        for SpTRSV.
        """
        program = self.program
        n = program.n
        self._events = []
        self._seq = 0
        self._tiles = {}
        self._link_free = {}
        self._per_link = {}
        self._link_count = 0
        self._queue_delay = 0
        self._spills = 0
        self._end_time = 0

        self._issue_trace = [] if self.record_issue_trace else None
        self._partial = {}          # (tile, row) -> accumulated value
        self._local_remaining = dict(program.local_counts)
        self._node_remaining = {}   # (row, tile) -> pending inputs
        self._rows_done = 0
        self._output = np.zeros(n)
        self._b = None if b is None else np.asarray(b, dtype=np.float64)
        self._x = (
            np.asarray(x, dtype=np.float64) if x is not None
            else np.zeros(n)
        )

        self._init_node_remaining()
        if program.dependent:
            if self._b is None:
                raise SimulationError("SpTRSV simulation requires b")
            self._init_sptrsv()
        else:
            if x is None:
                raise SimulationError("SpMV simulation requires x")
            self._init_spmv()

        self._drain()

        if self._rows_done != n:
            raise SimulationError(
                f"{program.name}: deadlock — only {self._rows_done}/{n} "
                "rows completed"
            )
        op_totals = [0, 0, 0, 0]
        busy = 0
        for tile in self._tiles.values():
            busy += tile.busy
            for k in range(4):
                op_totals[k] += tile.op_counts[k]
        return KernelResult(
            name=program.name,
            cycles=self._end_time,
            output=self._output,
            op_counts={
                "fmac": op_totals[0],
                "add": op_totals[1],
                "mul": op_totals[2],
                "send": op_totals[3],
            },
            busy_slots=busy,
            link_activations=self._link_count,
            per_link=self._per_link,
            spills=self._spills,
            link_queue_delay=self._queue_delay,
            issue_trace=self._issue_trace,
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _init_node_remaining(self):
        """Expected inputs at every reduction-tree node and every home."""
        program = self.program
        local = program.local_counts
        for i in range(program.n):
            home = int(program.vec_tile[i])
            tree = program.red_trees.get(i)
            if tree is None:
                self._node_remaining[(i, home)] = (
                    1 if (home, i) in local else 0
                )
                continue
            children = {}
            for child, parent in tree.edges:
                children[parent] = children.get(parent, 0) + 1
            nodes = {home}
            nodes.update(tree.parent)
            for node in nodes:
                expected = children.get(node, 0)
                if (node, i) in local:
                    expected += 1
                self._node_remaining[(i, node)] = expected

    def _init_spmv(self):
        """Distribute input-vector values at time zero (SendV tasks)."""
        program = self.program
        for j in range(program.n):
            home = int(program.vec_tile[j])
            value = float(self._x[j])
            segment = program.col_segments.get(home, {}).get(j)
            if segment is not None:
                self._enqueue(home, [0, _T_SAAC, segment[0], segment[1],
                                     value, 0])
            for tree_index in range(len(program.mcast_trees.get(j, ()))):
                self._enqueue(
                    home, [0, _T_SEND, ("mcast", j, value, tree_index)]
                )
        # Rows with no pending inputs complete immediately (y_i = 0 or
        # purely-local rows start from their FMACs).
        for i in range(program.n):
            home = int(program.vec_tile[i])
            if self._node_remaining[(i, home)] == 0:
                self._row_complete(i, 0)
        self._flush_pumps()

    def _init_sptrsv(self):
        """Schedule dependence-free rows for solving at time zero."""
        program = self.program
        for i in range(program.n):
            home = int(program.vec_tile[i])
            if self._node_remaining[(i, home)] == 0:
                self._enqueue(home, [0, _T_MUL, i])
        self._flush_pumps()

    def _flush_pumps(self):
        for tile_id in list(self._tiles):
            self._schedule_pump(tile_id, 0)

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------
    def _push(self, time, kind, payload):
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    def _drain(self):
        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            if kind == _EV_PUMP:
                tile_id = payload
                tile = self._tiles[tile_id]
                if tile.next_pump != time:
                    continue  # stale: a different pump is now scheduled
                tile.next_pump = None
                self._pump(tile_id, time)
            elif kind == _EV_MCAST:
                node, j, value, tree_index = payload
                self._on_mcast_arrival(node, j, value, time, tree_index)
            else:
                node, row, value = payload
                self._enqueue(node, [time, _T_ADD, row, value])
                self._schedule_pump(node, time)

    def _tile(self, tile_id) -> _Tile:
        tile = self._tiles.get(tile_id)
        if tile is None:
            tile = _Tile()
            self._tiles[tile_id] = tile
        return tile

    def _enqueue(self, tile_id, task):
        """Append a task to a tile, modeling message-buffer spills."""
        tile = self._tile(tile_id)
        if len(tile.tasks) >= self.config.msg_buffer_entries:
            self._spills += 1
            task[0] += 2 * self.config.sram_access_cycles
        tile.tasks.append(task)

    def _schedule_pump(self, tile_id, time):
        tile = self._tile(tile_id)
        if not self.pe.is_ideal and tile.pe_time > time:
            # Nothing can issue before the PE's next free slot anyway.
            time = tile.pe_time
        if tile.next_pump is None or time < tile.next_pump:
            tile.next_pump = time
            self._push(time, _EV_PUMP, tile_id)

    # ------------------------------------------------------------------
    # PE issue
    # ------------------------------------------------------------------
    def _op_ready_time(self, tile: _Tile, task) -> int:
        """Earliest cycle the task's current operation can issue."""
        kind = task[1]
        ready = max(task[0], tile.pe_time)
        if kind == _T_SAAC:
            row = int(task[2][task[5]])
            return max(ready, tile.acc_ready.get(row, 0))
        if kind == _T_ADD:
            return max(ready, tile.acc_ready.get(task[2], 0))
        if kind == _T_MUL:
            return max(ready, tile.acc_ready.get(task[2], 0))
        return ready  # SEND

    def _pump(self, tile_id, now):
        """Issue every operation that can start at ``now``."""
        tile = self._tiles[tile_id]
        pe = self.pe
        while tile.tasks:
            window = (
                tile.tasks[:pe.thread_contexts] if pe.multithreaded
                else tile.tasks[:1]
            )
            best_index = -1
            best_time = None
            for index, task in enumerate(window):
                ready = self._op_ready_time(tile, task)
                if best_time is None or ready < best_time:
                    best_time = ready
                    best_index = index
            if best_time > now:
                self._schedule_pump(tile_id, best_time)
                return
            self._issue(tile_id, tile, tile.tasks[best_index], best_index,
                        best_time)
            if not pe.is_ideal and tile.tasks:
                # One issue slot consumed; revisit at the next free cycle.
                self._schedule_pump(tile_id, tile.pe_time)
                return

    def _issue(self, tile_id, tile: _Tile, task, task_index, issue_time):
        """Execute one operation of ``task`` at ``issue_time``."""
        kind = task[1]
        tile.busy += self.pe.issue_cycles
        if self._issue_trace is not None:
            self._issue_trace.append((issue_time, tile_id, kind))
        if not self.pe.is_ideal:
            tile.pe_time = issue_time + self.pe.issue_cycles

        if kind == _T_SAAC:
            rows, vals, xval, pos = task[2], task[3], task[4], task[5]
            row = int(rows[pos])
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.FMAC] += 1
            tile.acc_ready[row] = completion
            key = (tile_id, row)
            self._partial[key] = self._partial.get(key, 0.0) + xval * vals[pos]
            task[5] += 1
            if task[5] >= len(rows):
                del tile.tasks[task_index]
            remaining = self._local_remaining[key] - 1
            self._local_remaining[key] = remaining
            if remaining == 0:
                self._node_input_done(row, tile_id, completion)
        elif kind == _T_ADD:
            row, value = task[2], task[3]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.ADD] += 1
            tile.acc_ready[row] = completion
            key = (tile_id, row)
            self._partial[key] = self._partial.get(key, 0.0) + value
            del tile.tasks[task_index]
            self._node_input_done(row, tile_id, completion)
        elif kind == _T_MUL:
            row = task[2]
            completion = issue_time + self._alu_latency
            tile.op_counts[OpKind.MUL] += 1
            del tile.tasks[task_index]
            self._solve_row(row, tile_id, completion)
        else:  # _T_SEND
            payload = task[2]
            completion = issue_time + self._send_latency
            tile.op_counts[OpKind.SEND] += 1
            del tile.tasks[task_index]
            if payload[0] == "mcast":
                _, j, value, tree_index = payload
                tree = self.program.mcast_trees[j][tree_index]
                self._forward_mcast(tree, tree.root, j, value, completion,
                                    tree_index)
            else:
                _, row, value, parent = payload
                self._traverse_link(tile_id, parent, completion,
                                    _EV_PARTIAL, (parent, row, value))
        self._end_time = max(self._end_time, completion)

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def _traverse_link(self, src, dst, time, event_kind, payload):
        """Serialize a flit onto a link and schedule its arrival."""
        link = (src, dst)
        depart = max(time, self._link_free.get(link, 0))
        self._queue_delay += depart - time
        self._link_free[link] = depart + 1
        self._per_link[link] = self._per_link.get(link, 0) + 1
        self._link_count += 1
        arrival = depart + self.config.hop_cycles
        self._push(arrival, event_kind, payload)
        self._end_time = max(self._end_time, arrival)

    def _forward_mcast(self, tree, node, j, value, time, tree_index):
        """Router-side fork of a multicast at ``node``."""
        for child in tree.children.get(node, ()):
            self._traverse_link(node, child, time, _EV_MCAST,
                                (child, j, value, tree_index))

    def _on_mcast_arrival(self, node, j, value, time, tree_index):
        """A multicast value reached ``node``: forward and trigger work."""
        tree = self.program.mcast_trees[j][tree_index]
        self._forward_mcast(tree, node, j, value, time, tree_index)
        if node not in tree.destinations:
            return
        segment = self.program.col_segments.get(node, {}).get(j)
        if segment is not None:
            self._enqueue(node, [time, _T_SAAC, segment[0], segment[1],
                                 value, 0])
            self._schedule_pump(node, time)

    # ------------------------------------------------------------------
    # Reduction / completion logic
    # ------------------------------------------------------------------
    def _node_input_done(self, row, node, time):
        """One expected input of reduction node ``(row, node)`` merged."""
        key = (row, node)
        remaining = self._node_remaining[key] - 1
        self._node_remaining[key] = remaining
        if remaining > 0:
            return
        home = int(self.program.vec_tile[row])
        if node == home:
            self._row_complete(row, time)
        else:
            tree = self.program.red_trees[row]
            parent = tree.parent[node]
            value = self._partial.get((node, row), 0.0)
            self._enqueue(node, [time, _T_SEND,
                                 ("partial", row, value, parent)])
            self._schedule_pump(node, time)

    def _row_complete(self, row, time):
        """All of row ``row``'s inputs reached its home tile."""
        program = self.program
        home = int(program.vec_tile[row])
        if program.dependent:
            self._enqueue(home, [time, _T_MUL, row])
            self._schedule_pump(home, time)
        else:
            self._output[row] = self._partial.get((home, row), 0.0)
            self._rows_done += 1
            self._end_time = max(self._end_time, time)

    def _solve_row(self, row, home, completion):
        """SpTRSV: produce ``x_row`` and distribute it down the column."""
        program = self.program
        acc = self._partial.get((home, row), 0.0)
        value = (self._b[row] - acc) * program.inv_diag[row]
        self._output[row] = value
        self._rows_done += 1
        segment = program.col_segments.get(home, {}).get(row)
        if segment is not None:
            self._enqueue(home, [completion, _T_SAAC, segment[0],
                                 segment[1], value, 0])
        for tree_index in range(len(program.mcast_trees.get(row, ()))):
            self._enqueue(home, [completion, _T_SEND,
                                 ("mcast", row, value, tree_index)])
        self._schedule_pump(home, completion)

"""Discrete-event kernel simulator: the layer composition root.

Executes one :class:`~repro.dataflow.kernel_program.KernelProgram`
cycle-accurately *and* numerically.  :class:`KernelSimulator` composes
the simulator layers (``events ← state ← fabric ← issue``, see
:mod:`repro.sim` and ``docs/simulator.md``); ``engine=`` selects *only*
the :class:`~repro.sim.issue.IssueStrategy`.  The two engines are
therefore bit-identical by construction everywhere except issue
timing, and issue timing is enforced bit-identical by
``tests/test_engine_equivalence.py``.

``KernelSimulator(...)`` transparently constructs the batched engine;
set ``AZUL_SIM_REFERENCE=1`` (or pass ``engine="reference"``) to fall
back to the per-op golden model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import AzulConfig, ENV_SIM_REFERENCE, env_truthy
from repro.dataflow.kernel_program import KernelProgram
from repro.errors import SimulationError
from repro.sim.events import EV_PUMP, EventQueue, drain
from repro.sim.fabric import LinkFabric, flatten_multicast_forest
from repro.sim.issue import (
    VEC_THRESHOLD as _VEC_THRESHOLD,  # re-exported for the test suite
    resolve_strategy,
)
from repro.sim.pe import PEModel
from repro.sim.state import T_MUL, T_SAAC, T_SEND, KernelState

#: Environment variable selecting the per-op golden engine
#: (canonical name lives in :mod:`repro.config`; see
#: :func:`repro.config.overrides`).
REFERENCE_ENV = ENV_SIM_REFERENCE


def _env_wants_reference() -> bool:
    return env_truthy(os.environ.get(REFERENCE_ENV))


@dataclass
class KernelResult:
    """Outcome of simulating one kernel.

    ``cycles`` is the completion time; ``output`` the computed result
    vector (``y`` for SpMV, ``x`` for SpTRSV); ``op_counts`` executed
    operations by kind (``fmac``/``add``/``mul``/``send``);
    ``busy_slots`` issue slots consumed across all PEs; ``per_link``
    activations per directed link; ``spills`` messages that overflowed
    the register buffer into the Data SRAM; ``issue_trace`` (when
    recording was requested) one ``(cycle, tile, op_kind)`` tuple per
    issued operation, for timeline/heatmap analysis.  ``n_tiles``
    records the simulated machine's tile count so the trace helpers in
    :mod:`repro.sim.trace` need no redundant caller-side geometry.
    """

    name: str
    cycles: int
    output: np.ndarray
    op_counts: Dict[str, int]
    busy_slots: int
    link_activations: int
    per_link: Dict[Tuple[int, int], int] = field(default_factory=dict)
    spills: int = 0
    #: Total cycles flits waited for busy links (congestion measure)
    link_queue_delay: int = 0
    issue_trace: Optional[List[Tuple[int, int, int]]] = None
    #: Tile count of the machine that produced this result (``None``
    #: only on results unpickled from pre-v4 cache entries).
    n_tiles: Optional[int] = None

    def flops(self) -> int:
        """FLOPs executed, including distribution-overhead Adds.

        Reported GFLOP/s uses the *algorithmic* FLOP count; this
        counter additionally includes the standalone Adds that
        inter-tile reductions introduce.
        """
        return (
            2 * self.op_counts["fmac"]
            + self.op_counts["add"]
            + self.op_counts["mul"]
        )

class KernelSimulator:
    """Simulates one kernel program on the configured machine.

    Instantiating this class directly dispatches to an engine:
    :class:`BatchedKernelSimulator` by default,
    :class:`ReferenceKernelSimulator` when ``engine="reference"`` or
    the ``AZUL_SIM_REFERENCE`` environment variable is truthy.  The
    subclasses can also be constructed explicitly (e.g. for
    equivalence testing); they differ *only* in the issue strategy
    they select.
    """

    #: Issue-strategy name pinned by the engine subclasses.
    engine_name: Optional[str] = None

    def __new__(cls, program: KernelProgram, geometry=None,
                config: Optional[AzulConfig] = None,
                pe: Optional[PEModel] = None,
                record_issue_trace: bool = False,
                engine: Optional[str] = None):
        if cls is KernelSimulator:
            cls = _resolve_engine(engine)
        return object.__new__(cls)

    def __init__(self, program: KernelProgram, geometry,
                 config: AzulConfig, pe: PEModel,
                 record_issue_trace: bool = False,
                 engine: Optional[str] = None):
        self.program = program
        self.geometry = geometry
        #: Backwards-compatible alias (the paper machine is a torus).
        self.torus = geometry
        self.config = config
        self.pe = pe
        self.record_issue_trace = record_issue_trace
        self.alu_latency = (
            config.sram_access_cycles + config.fmac_latency_cycles
        )
        self.send_latency = config.sram_access_cycles + 1
        self._ideal = pe.is_ideal
        name = self.engine_name
        if name is None:  # pragma: no cover - subclasses always pin it
            name = engine or (
                "reference" if _env_wants_reference() else "batched"
            )
        self.issue = resolve_strategy(name)()
        # Shared static structures (engine-independent, built once)
        # straight from the program's flat IR arrays.  Column segments
        # become plain Python lists: scalar ``rows[pos]`` /
        # ``vals[pos]`` reads are then native ints/floats.  ``tolist``
        # preserves the exact IEEE-754 values.
        rows_list = program.rows.tolist()
        vals_list = program.values.tolist()
        seg_ptr = program.seg_ptr.tolist()
        seg_tile = program.seg_tile.tolist()
        seg_col = program.seg_col.tolist()
        segments_by_tile: Dict[int, Dict[int, tuple]] = {}
        for s in range(len(seg_tile)):
            lo, hi = seg_ptr[s], seg_ptr[s + 1]
            segments_by_tile.setdefault(seg_tile[s], {})[seg_col[s]] = (
                rows_list[lo:hi], vals_list[lo:hi],
            )
        self._segments = segments_by_tile
        # Flattened multicast routing (one dict probe per arrival); the
        # destination payload is the triggered column segment, if any.
        self._mcast_plan, self.mcast_send = flatten_multicast_forest(
            program, self._segment_at,
        )
        #: Multicast trees per column (0 for home-only columns).
        self._mcast_count = program.mcast_count.tolist()
        # Reduction next-hops, flattened to one probe per completion:
        # ``(row, node) -> parent``.
        red_parent: Dict[Tuple[int, int], int] = {}
        red_row = program.red_row.tolist()
        red_edge_ptr = program.red_edge_ptr.tolist()
        red_child = program.red_child.tolist()
        red_parent_arr = program.red_parent.tolist()
        for t, row in enumerate(red_row):
            for e in range(red_edge_ptr[t], red_edge_ptr[t + 1]):
                red_parent[(row, red_child[e])] = red_parent_arr[e]
        self._red_parent = red_parent
        self._vec_tile_list = program.vec_tile.tolist()
        # Dummy hazard row (see ``state.TASK_HAZARD``): Sends gate on
        # nothing, so they point at accumulator slot ``n`` which stays
        # 0 forever.
        self._dummy_row = int(program.n)

    def _segment_at(self, node: int, j: int):
        segments = self._segments.get(node)
        return None if segments is None else segments.get(j)

    # ------------------------------------------------------------------
    def run(self, x=None, b=None) -> KernelResult:
        """Execute the kernel; returns timing, stats, and the output.

        ``x`` is the input vector for SpMV; ``b`` the right-hand side
        for SpTRSV.
        """
        program = self.program
        n = program.n
        config = self.config
        self.events = EventQueue()
        self.state = KernelState(
            n, program.local_tiles, program.local_counts,
            config.msg_buffer_entries, 2 * config.sram_access_cycles,
        )
        self.fabric = LinkFabric(self.events, config.hop_cycles)
        self.issue_trace = [] if self.record_issue_trace else None
        self._b = None if b is None else np.asarray(b, dtype=np.float64)
        self._x = (
            np.asarray(x, dtype=np.float64) if x is not None
            else np.zeros(n)
        )
        self.state.init_node_remaining(program)
        self.issue.bind(self)

        if program.dependent:
            if self._b is None:
                raise SimulationError("SpTRSV simulation requires b")
            self._init_sptrsv()
        else:
            if x is None:
                raise SimulationError("SpMV simulation requires x")
            self._init_spmv()

        drain(self.events, self.issue.pump, self._handle_mcast,
              self._handle_partial)

        state = self.state
        if state.rows_done != n:
            raise SimulationError(
                f"{program.name}: deadlock — only {state.rows_done}/{n} "
                "rows completed"
            )
        op_totals, busy = state.op_totals()
        fabric = self.fabric
        cycles = (
            state.end_time if state.end_time >= fabric.last_arrival
            else fabric.last_arrival
        )
        return KernelResult(
            name=program.name,
            cycles=cycles,
            output=state.output,
            op_counts={
                "fmac": op_totals[0],
                "add": op_totals[1],
                "mul": op_totals[2],
                "send": op_totals[3],
            },
            busy_slots=busy,
            link_activations=fabric.link_count,
            per_link=fabric.per_link,
            spills=state.spills,
            link_queue_delay=fabric.queue_delay,
            issue_trace=self.issue_trace,
            n_tiles=self.geometry.n_tiles,
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _init_spmv(self) -> None:
        """Distribute input-vector values at time zero (SendV tasks)."""
        program = self.program
        state = self.state
        enqueue = state.enqueue
        vec_tile = self._vec_tile_list
        x = self._x
        dummy = self._dummy_row
        for j in range(program.n):
            home = vec_tile[j]
            value = float(x[j])
            segment = self._segment_at(home, j)
            if segment is not None:
                enqueue(home, [0, T_SAAC, segment[0], segment[1],
                               value, 0, segment[0][0]])
            for tree_index in range(self._mcast_count[j]):
                enqueue(home, [0, T_SEND, ("mcast", j, value, tree_index),
                               0, 0, 0, dummy])
        # Rows with no pending inputs complete immediately (y_i = 0 or
        # purely-local rows start from their FMACs).
        node_remaining = state.node_remaining
        for i in range(program.n):
            if node_remaining[(i, vec_tile[i])] == 0:
                self._row_complete(i, 0)
        self._flush_pumps()

    def _init_sptrsv(self) -> None:
        """Schedule dependence-free rows for solving at time zero."""
        program = self.program
        node_remaining = self.state.node_remaining
        vec_tile = self._vec_tile_list
        for i in range(program.n):
            home = vec_tile[i]
            if node_remaining[(i, home)] == 0:
                self.state.enqueue(home, [0, T_MUL, i, 0, 0, 0, i])
        self._flush_pumps()

    def _flush_pumps(self) -> None:
        for tile_id in list(self.state.tiles):
            self._schedule_pump(tile_id, 0)

    # ------------------------------------------------------------------
    # Shared control path (event scheduling + completion logic; the
    # single copy both issue strategies call back into)
    # ------------------------------------------------------------------
    def _schedule_pump(self, tile_id: int, time: int) -> None:
        tile = self.state.tile(tile_id)
        if not self._ideal and tile.pe_time > time:
            # Nothing can issue before the PE's next free slot anyway.
            time = tile.pe_time
        nxt = tile.next_pump
        if nxt is None or time < nxt:
            tile.next_pump = time
            self.events.push(time, EV_PUMP, tile_id)

    def _enqueue_and_pump(self, tile_id: int, task: list,
                          time: int) -> None:
        """Fused enqueue + pump scheduling (one tile fetch)."""
        tile = self.state.enqueue(tile_id, task)
        if not self._ideal and tile.pe_time > time:
            time = tile.pe_time
        nxt = tile.next_pump
        if nxt is None or time < nxt:
            tile.next_pump = time
            self.events.push(time, EV_PUMP, tile_id)

    def _handle_mcast(self, payload, time: int) -> None:
        """A multicast value reached a node: forward and trigger work."""
        node, j, value, tree_index = payload
        children, segment = self._mcast_plan[(j, tree_index, node)]
        if children:
            traverse = self.fabric.traverse
            for child in children:
                traverse(node, child, time, 1,  # EV_MCAST
                         (child, j, value, tree_index))
        if segment is not None:
            self._enqueue_and_pump(
                node, [time, T_SAAC, segment[0], segment[1], value, 0,
                       segment[0][0]],
                time,
            )

    def _handle_partial(self, payload, time: int) -> None:
        """A reduction partial arrived: merge via a standalone Add."""
        node, row, value = payload
        self._enqueue_and_pump(node, [time, 1, row, value, 0, 0, row],
                               time)  # T_ADD

    def _node_input_done(self, row: int, node: int, time: int) -> None:
        """One expected input of reduction node ``(row, node)`` merged."""
        state = self.state
        remaining_map = state.node_remaining
        key = (row, node)
        remaining = remaining_map[key] - 1
        remaining_map[key] = remaining
        if remaining > 0:
            return
        home = self._vec_tile_list[row]
        if node == home:
            self._row_complete(row, time)
        else:
            parent = self._red_parent[(row, node)]
            tile = state.tiles.get(node)
            value = 0.0 if tile is None else tile.partial[row]
            self._enqueue_and_pump(
                node, [time, T_SEND, ("partial", row, value, parent),
                       0, 0, 0, self._dummy_row],
                time,
            )

    def _row_complete(self, row: int, time: int) -> None:
        """All of row ``row``'s inputs reached its home tile."""
        home = self._vec_tile_list[row]
        state = self.state
        if self.program.dependent:
            self._enqueue_and_pump(home, [time, T_MUL, row, 0, 0, 0, row],
                                   time)
        else:
            tile = state.tiles.get(home)
            state.output[row] = 0.0 if tile is None else tile.partial[row]
            state.rows_done += 1
            if time > state.end_time:
                state.end_time = time

    def _solve_row(self, row: int, home: int, completion: int) -> None:
        """SpTRSV: produce ``x_row`` and distribute it down the column."""
        program = self.program
        state = self.state
        tile = state.tiles.get(home)
        acc = 0.0 if tile is None else tile.partial[row]
        # ``float()`` keeps the produced value a native float (the bits
        # are unchanged) so downstream FMACs avoid numpy scalar math.
        value = float((self._b[row] - acc) * program.inv_diag[row])
        state.output[row] = value
        state.rows_done += 1
        segment = self._segment_at(home, row)
        if segment is not None:
            state.enqueue(home, [completion, T_SAAC, segment[0],
                                 segment[1], value, 0, segment[0][0]])
        for tree_index in range(self._mcast_count[row]):
            state.enqueue(home, [completion, T_SEND,
                                 ("mcast", row, value, tree_index),
                                 0, 0, 0, self._dummy_row])
        self._schedule_pump(home, completion)


class ReferenceKernelSimulator(KernelSimulator):
    """The per-op golden engine: composition root + ``PerOpIssue``."""

    engine_name = "reference"


class BatchedKernelSimulator(KernelSimulator):
    """The default engine: composition root + ``BatchedIssue``."""

    engine_name = "batched"


_ENGINE_CLASSES: Dict[str, type] = {
    "reference": ReferenceKernelSimulator,
    "batched": BatchedKernelSimulator,
}


def _resolve_engine(engine: Optional[str]) -> type:
    """Map an ``engine`` argument / environment to a simulator class."""
    if engine is None:
        engine = "reference" if _env_wants_reference() else "batched"
    cls = _ENGINE_CLASSES.get(engine)
    if cls is None:
        # Unknown names raise the issue layer's ValueError (single
        # source of truth for the strategy registry).
        resolve_strategy(engine)
        raise ValueError(
            f"no simulator class registered for engine {engine!r}"
        )
    return cls

"""NoC fabric layer: link occupancy/contention and tree forwarding.

Two views of the same fabric:

* :class:`LinkFabric` — the *dynamic* per-run state: flit
  serialization on directed links (one flit per link per cycle),
  queueing delay, per-link activation counts, and the flattened
  multicast-forwarding plan.  Works over any geometry (torus or mesh);
  the geometry is baked into the trees at program-build time, so the
  fabric itself only sees tile ids.
* :class:`FabricModel` — the *static* tree/link API consumed by the
  machine model, solver timing, and ``repro.core.traffic``: multicast
  and reduction trees, hop distances, and link enumeration over a
  :class:`~repro.comm.torus.TorusGeometry` /
  :class:`~repro.comm.mesh.MeshGeometry`.

Layer contract: fabric sits above ``events``/``state`` and below
``issue``/``engine``; it may import :mod:`repro.comm` but never the
issue layer or the composition root.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.comm.multicast import MulticastTree, build_multicast_tree
from repro.comm.reduction import ReductionTree, build_reduction_tree
from repro.sim.events import EventQueue

Link = Tuple[int, int]

#: Flattened multicast step: children to fork to, plus an opaque
#: destination payload (the engine stores the triggered column segment
#: there; the fabric never interprets it).
McastStep = Tuple[Tuple[int, ...], Any]


class LinkFabric:
    """Dynamic link-contention state over one kernel execution.

    Each directed link carries one flit per cycle: a flit departing at
    a busy cycle queues (``queue_delay`` accounts the wait) and every
    traversal costs ``hop_cycles`` of latency before the arrival event
    fires.  Arrival events are pushed into the shared
    :class:`~repro.sim.events.EventQueue`, preserving deterministic
    tie-breaking.
    """

    __slots__ = ("events", "hop_cycles", "link_free", "per_link",
                 "link_count", "queue_delay", "last_arrival")

    def __init__(self, events: EventQueue, hop_cycles: int) -> None:
        self.events = events
        self.hop_cycles = hop_cycles
        self.link_free: Dict[Link, int] = {}
        self.per_link: Dict[Link, int] = {}
        self.link_count = 0
        self.queue_delay = 0
        #: Latest link arrival seen so far (combined with the state
        #: layer's compute completion for the reported cycle count).
        self.last_arrival = 0

    def traverse(self, src: int, dst: int, time: int, event_kind: int,
                 payload: Any) -> None:
        """Serialize a flit onto a link and schedule its arrival."""
        link = (src, dst)
        link_free = self.link_free
        depart = link_free.get(link, 0)
        if depart < time:
            depart = time
        else:
            self.queue_delay += depart - time
        link_free[link] = depart + 1
        per_link = self.per_link
        per_link[link] = per_link.get(link, 0) + 1
        self.link_count += 1
        arrival = depart + self.hop_cycles
        self.events.push(arrival, event_kind, payload)
        if arrival > self.last_arrival:
            self.last_arrival = arrival


def flatten_multicast_plan(
    mcast_trees: Dict[int, Tuple[MulticastTree, ...]],
    payload_at: Callable[[int, int], Any],
) -> Tuple[Dict[Tuple[int, int, int], McastStep],
           Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]]]:
    """Flatten multicast trees into O(1) per-arrival lookup tables.

    Returns ``(plan, send_plan)``:

    * ``plan[(j, tree_index, node)] = (children, payload)`` — the
      router-side fork at ``node`` plus, when ``node`` is a
      destination, ``payload_at(node, j)`` (e.g. the column segment
      the arrival triggers; ``None`` elsewhere).
    * ``send_plan[(j, tree_index)] = (root, root_children)`` — the
      fork a Send op performs at the tree root.

    One dict probe then replaces the tree-attribute chase, set
    membership test, and nested segment lookup per arrival.
    """
    plan: Dict[Tuple[int, int, int], McastStep] = {}
    send_plan: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
    for j, trees in mcast_trees.items():
        for tree_index, tree in enumerate(trees):
            nodes = set(tree.children)
            for childs in tree.children.values():
                nodes.update(childs)
            nodes.add(tree.root)
            for node in nodes:
                payload = None
                if node in tree.destinations:
                    payload = payload_at(node, j)
                plan[(j, tree_index, node)] = (
                    tuple(tree.children.get(node, ())), payload,
                )
            send_plan[(j, tree_index)] = (
                tree.root, tuple(tree.children.get(tree.root, ())),
            )
    return plan, send_plan


def flatten_multicast_forest(
    program,
    payload_at: Callable[[int, int], Any],
) -> Tuple[Dict[Tuple[int, int, int], McastStep],
           Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]]]:
    """Flatten a compiled kernel's multicast forest into lookup tables.

    The flat-array counterpart of :func:`flatten_multicast_plan`:
    reads the :class:`~repro.dataflow.ir.CompiledKernel` forest arrays
    (``mcast_col``/``mcast_root``/``mcast_edge_ptr``/…) directly, so
    no per-tree objects are materialized.  Returns the same
    ``(plan, send_plan)`` tables keyed ``(col, tree_index, node)`` /
    ``(col, tree_index)``.

    Children fork in sorted-edge order (the canonical form the
    lowering emits), which is deterministic and engine-independent.
    """
    plan: Dict[Tuple[int, int, int], McastStep] = {}
    send_plan: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
    mcast_col = program.mcast_col.tolist()
    mcast_root = program.mcast_root.tolist()
    mcast_first = program.mcast_first
    edge_ptr = program.mcast_edge_ptr.tolist()
    parents = program.mcast_parent.tolist()
    child_arr = program.mcast_child.tolist()
    dst_ptr = program.mcast_dst_ptr.tolist()
    dsts = program.mcast_dst.tolist()
    for t in range(len(mcast_col)):
        j = mcast_col[t]
        tree_index = t - int(mcast_first[j])
        root = mcast_root[t]
        children: Dict[int, List[int]] = {}
        nodes = {root}
        for e in range(edge_ptr[t], edge_ptr[t + 1]):
            children.setdefault(parents[e], []).append(child_arr[e])
            nodes.add(child_arr[e])
            nodes.add(parents[e])
        destinations = set(dsts[dst_ptr[t]:dst_ptr[t + 1]])
        for node in nodes:
            payload = payload_at(node, j) if node in destinations else None
            plan[(j, tree_index, node)] = (
                tuple(children.get(node, ())), payload,
            )
        send_plan[(j, tree_index)] = (
            root, tuple(children.get(root, ())),
        )
    return plan, send_plan


class FabricModel:
    """Static tree/link API of the NoC for a given geometry.

    The machine model (:class:`~repro.sim.machine.AzulMachine`), the
    solver-timing recipes, and the static traffic analysis
    (:mod:`repro.core.traffic`) consume this instead of building trees
    straight from :mod:`repro.comm` or reaching into engine internals.
    """

    __slots__ = ("geometry", "hop_cycles")

    def __init__(self, geometry, hop_cycles: int = 1) -> None:
        self.geometry = geometry
        self.hop_cycles = hop_cycles

    @property
    def n_tiles(self) -> int:
        return self.geometry.n_tiles

    # -- trees ---------------------------------------------------------
    def multicast_tree(self, root: int,
                       destinations: Iterable[int]) -> MulticastTree:
        """The router-merged multicast tree from ``root``."""
        return build_multicast_tree(self.geometry, root,
                                    list(destinations))

    def reduction_tree(self, root: int,
                       sources: Iterable[int]) -> ReductionTree:
        """The reduction tree collecting ``sources`` into ``root``."""
        return build_reduction_tree(self.geometry, root, list(sources))

    # -- links ---------------------------------------------------------
    def hop_distance(self, src: int, dst: int) -> int:
        return self.geometry.hop_distance(src, dst)

    def all_links(self) -> List[Link]:
        return self.geometry.all_links()

    def reduction_depth(self) -> int:
        return self.geometry.reduction_depth()

    # -- dynamic state -------------------------------------------------
    def new_link_state(self, events: EventQueue) -> LinkFabric:
        """Fresh per-run link-contention state bound to ``events``."""
        return LinkFabric(events, self.hop_cycles)

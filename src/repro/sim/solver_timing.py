"""Per-iteration Azul timing for the whole Table II solver family.

Sec. II-B: "the computations Azul accelerates are very general: other
iterative solvers like GMRES and BiCGStab have the same kernels and
challenges."  Every Table II solver's iteration is a combination of the
three kernels the machine already executes (SpMV, forward/backward
SpTRSV) plus vector work, so its steady-state cycle cost follows from
the simulated kernel times and an iteration *recipe*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.program import PCGIterationProgram
from repro.dataflow.vector_ops import axpy_cycles, dot_allreduce_cycles
from repro.sim.machine import AzulMachine, IterationResult


@dataclass(frozen=True)
class IterationRecipe:
    """Kernel counts of one iteration of an iterative solver.

    Attributes
    ----------
    name:
        Solver (+ preconditioner) label.
    n_spmv:
        SpMVs with A per iteration.
    n_precond_solves:
        Preconditioner applications (each = one forward + one backward
        SpTRSV on the factor).
    n_dots, n_axpys:
        Vector reductions and element-wise updates per iteration.
    """

    name: str
    n_spmv: int
    n_precond_solves: int
    n_dots: int
    n_axpys: int


#: Iteration recipes for the Table II solver family.  Dot/AXPY counts
#: follow the standard algorithm statements (GMRES uses the average
#: Gram-Schmidt depth of a restart-30 cycle).
RECIPES = (
    IterationRecipe("CG (no preconditioner)", 1, 0, 3, 3),
    IterationRecipe("PCG + Jacobi", 1, 0, 3, 4),
    IterationRecipe("PCG + IC(0)", 1, 1, 3, 3),
    IterationRecipe("PCG + SymGS", 1, 1, 3, 3),
    IterationRecipe("BiCGStab", 2, 0, 5, 6),
    IterationRecipe("BiCGStab + ILU(0)", 2, 2, 5, 6),
    IterationRecipe("GMRES(30)", 1, 0, 16, 16),
    IterationRecipe("Power iteration", 1, 0, 2, 1),
    IterationRecipe("Chebyshev iteration", 1, 0, 1, 3),
)


def solver_iteration_cycles(machine: AzulMachine,
                            program: PCGIterationProgram,
                            base: IterationResult,
                            recipe: IterationRecipe) -> dict:
    """Cycles and FLOPs of one iteration of ``recipe``'s solver.

    Reuses the simulated kernel times from a PCG iteration ``base`` on
    the same mapped operands: SpMV and the two SpTRSVs are identical
    work regardless of which solver invokes them.
    """
    spmv_result, forward_result, backward_result = base.kernel_results
    solve_cycles = forward_result.cycles + backward_result.cycles
    config = machine.config
    # The fabric exposes the geometry's reduction depth; solver timing
    # never touches the raw geometry object.
    dot = dot_allreduce_cycles(program.vector_phase.vec_tile,
                               machine.fabric, config)
    axpy = axpy_cycles(program.vector_phase.vec_tile, config)
    cycles = (
        recipe.n_spmv * spmv_result.cycles
        + recipe.n_precond_solves * solve_cycles
        + recipe.n_dots * dot
        + recipe.n_axpys * axpy
    )
    n = program.n
    flops = (
        recipe.n_spmv * program.spmv.flops()
        + recipe.n_precond_solves
        * (program.sptrsv_lower.flops() + program.sptrsv_upper.flops())
        + 2 * n * (recipe.n_dots + recipe.n_axpys)
    )
    seconds = cycles / config.frequency_hz
    return {
        "solver": recipe.name,
        "cycles": cycles,
        "flops": flops,
        "gflops": flops / seconds / 1e9 if seconds > 0 else 0.0,
    }

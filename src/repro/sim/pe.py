"""Processing-element models.

The Azul PE (Sec. V-A) hardens the dominant control-flow pattern of
SpMV/SpTRSV tasks into a 7-stage pipeline that issues one arithmetic
operation per cycle; fine-grained multithreading across task contexts
hides accumulator RAW stalls.  The Dalorex baseline uses a general-
purpose in-order core whose bookkeeping instructions (address
calculation, branches) consume most issue slots, modeled as extra issue
cycles per operation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PEModel:
    """Timing behavior of one PE.

    Attributes
    ----------
    name:
        Model identifier used in results.
    issue_cycles:
        Issue slots consumed per operation (1 for Azul's specialized
        pipeline; ~8 for Dalorex's in-order core where most slots are
        bookkeeping; 0 models the idealized, infinitely-wide PE).
    multithreaded:
        Whether the PE may pick operations from multiple in-flight task
        contexts to hide accumulator hazards (Sec. V-A).
    thread_contexts:
        Number of replicated operation-generator contexts.
    """

    name: str
    issue_cycles: int = 1
    multithreaded: bool = True
    thread_contexts: int = 8

    @property
    def is_ideal(self) -> bool:
        """True when issue bandwidth is unbounded (Fig. 10's PEs)."""
        return self.issue_cycles == 0


#: The Azul PE of Table III: 1 op/cycle, 8 thread contexts.
AZUL_PE = PEModel(name="azul", issue_cycles=1, multithreaded=True,
                  thread_contexts=8)

#: Single-threaded ablation (Fig. 27).
AZUL_PE_SINGLE_THREADED = PEModel(
    name="azul_single", issue_cycles=1, multithreaded=False,
    thread_contexts=1,
)

#: Dalorex's scalar RISC-V core: same peak FPU, but bookkeeping
#: instructions consume ~8x the issue slots (the paper measures Azul's
#: PEs to be 8x faster than Dalorex's cores, Sec. I/III).
DALOREX_PE = PEModel(name="dalorex", issue_cycles=8, multithreaded=False,
                     thread_contexts=1)

#: Idealized PE: runs each task as fast as dependences allow (Fig. 10).
IDEAL_PE = PEModel(name="ideal", issue_cycles=0, multithreaded=True,
                   thread_contexts=1 << 30)

_BY_NAME = {
    model.name: model
    for model in (AZUL_PE, AZUL_PE_SINGLE_THREADED, DALOREX_PE, IDEAL_PE)
}


def pe_model_by_name(name: str) -> PEModel:
    """Look up a PE model preset."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown PE model {name!r}; choices: {sorted(_BY_NAME)}"
        ) from None


def pe_model_names() -> list:
    """Names of all registered PE model presets."""
    return sorted(_BY_NAME)

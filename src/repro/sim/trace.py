"""Trace analysis: utilization timelines, tile activity, link heatmaps.

When a kernel is simulated with ``record_issue_trace=True``, every
issued operation is logged as ``(cycle, tile, op_kind)``.  These
helpers turn that log (plus the per-link counters) into the views a
hardware architect reaches for first: how busy was the machine over
time (Fig. 17's timeline), which tiles did the work, and which links
carried the traffic.

Results carry their machine's tile count (``KernelResult.n_tiles``),
so the ``n_tiles`` argument of every helper is optional — pass it only
to override, or for results unpickled from pre-v4 cache entries that
predate the field.  :func:`chrome_trace_events` converts an issue
trace into Chrome-trace events for :mod:`repro.obs`'s Perfetto export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.dataflow.tasks import OpKind
from repro.sim.engine import KernelResult

#: Issue events kept per kernel in a Chrome trace before downsampling.
#: 10k per kernel keeps a full fig20-style sweep's trace in the tens of
#: megabytes while still showing each kernel's issue structure.
DEFAULT_EVENT_CAP = 10_000


def _require_trace(result: KernelResult):
    if result.issue_trace is None:
        raise ValueError(
            "kernel was simulated without record_issue_trace=True"
        )


def _resolve_n_tiles(result: KernelResult,
                     n_tiles: Optional[int]) -> int:
    """``n_tiles`` argument if given, else the count on the result."""
    if n_tiles is not None:
        return int(n_tiles)
    carried = getattr(result, "n_tiles", None)
    if carried is None:
        raise ValueError(
            "result carries no n_tiles (pre-v4 cache entry?); pass "
            "n_tiles explicitly"
        )
    return int(carried)


def utilization_timeline(result: KernelResult,
                         n_tiles: Optional[int] = None,
                         n_buckets: int = 20) -> np.ndarray:
    """Machine utilization per time bucket (issued ops / issue slots).

    Returns an ``n_buckets`` array in [0, 1]; the Fig. 17 view of where
    a kernel's time goes.
    """
    _require_trace(result)
    n_tiles = _resolve_n_tiles(result, n_tiles)
    if result.cycles == 0 or not result.issue_trace:
        return np.zeros(n_buckets)
    times = np.array([entry[0] for entry in result.issue_trace])
    edges = np.linspace(0, result.cycles, n_buckets + 1)
    counts, _ = np.histogram(times, bins=edges)
    slots_per_bucket = (edges[1:] - edges[:-1]) * n_tiles
    return counts / np.maximum(slots_per_bucket, 1e-12)


def tile_activity(result: KernelResult,
                  n_tiles: Optional[int] = None) -> np.ndarray:
    """Operations issued per tile (load-balance view)."""
    _require_trace(result)
    n_tiles = _resolve_n_tiles(result, n_tiles)
    activity = np.zeros(n_tiles, dtype=np.int64)
    for _, tile, _ in result.issue_trace:
        activity[tile] += 1
    return activity


def op_mix_by_tile(result: KernelResult,
                   n_tiles: Optional[int] = None) -> np.ndarray:
    """Per-tile op counts by kind, shape ``(n_tiles, 4)``
    (FMAC/Add/Mul/Send order of :class:`OpKind`)."""
    _require_trace(result)
    n_tiles = _resolve_n_tiles(result, n_tiles)
    mix = np.zeros((n_tiles, 4), dtype=np.int64)
    for _, tile, kind in result.issue_trace:
        mix[tile, kind] += 1
    return mix


def link_heatmap(result: KernelResult, geometry) -> np.ndarray:
    """Per-link activation counts arranged as a ``(n_tiles, 4)`` array.

    Column order matches ``geometry.neighbors``: the flits each tile
    sent toward each of its (up to four) neighbors.
    """
    heat = np.zeros((geometry.n_tiles, 4), dtype=np.int64)
    for (src, dst), count in result.per_link.items():
        neighbors = geometry.neighbors(src)
        for port, neighbor in enumerate(neighbors):
            if neighbor == dst:
                heat[src, port] += count
                break
    return heat


def idle_tail_fraction(result: KernelResult,
                       n_tiles: Optional[int] = None,
                       threshold: float = 0.1) -> float:
    """Fraction of the kernel's duration spent in the low-utilization
    tail (utilization below ``threshold``) — the serialization metric
    the time-balancing mapping attacks (Fig. 17)."""
    timeline = utilization_timeline(result, n_tiles, n_buckets=50)
    if len(timeline) == 0:
        return 0.0
    below = timeline < threshold
    # Count trailing low-utilization buckets.
    tail = 0
    for value in below[::-1]:
        if not value:
            break
        tail += 1
    return tail / len(timeline)


def export_trace_csv(result: KernelResult, path):
    """Write the raw issue trace as CSV (cycle, tile, op)."""
    _require_trace(result)
    names = {k.value: k.name.lower() for k in OpKind}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("cycle,tile,op\n")
        for cycle, tile, kind in result.issue_trace:
            handle.write(f"{cycle},{tile},{names[int(kind)]}\n")


def chrome_trace_events(result: KernelResult, pid: int,
                        cap: Optional[int] = DEFAULT_EVENT_CAP
                        ) -> List[Dict[str, Any]]:
    """One kernel's issue trace as Chrome-trace events.

    The kernel gets its own Chrome-trace process (``pid``, allocated
    via :func:`repro.obs.allocate_pid`) with one track per tile; the
    timestamp axis is *machine cycles* rendered as microseconds, so a
    kernel that ran for 10k cycles spans 10 ms in Perfetto.  Each
    issued op is a 1-cycle complete event; a summary event on the
    track above the tiles carries the kernel-level statistics (op
    counts, spills, link congestion).

    Dense kernels can log millions of ops; ``cap`` (``None`` = keep
    everything) stride-downsamples the events and reports how many
    were dropped in the summary event's args.
    """
    _require_trace(result)
    n_tiles = _resolve_n_tiles(result, None)
    names = {k.value: k.name.lower() for k in OpKind}
    trace = result.issue_trace
    assert trace is not None  # _require_trace checked
    kept = trace
    dropped = 0
    if cap is not None and len(trace) > cap:
        stride = -(-len(trace) // cap)  # ceil division
        kept = trace[::stride]
        dropped = len(trace) - len(kept)
    events: List[Dict[str, Any]] = [{
        "name": "summary",
        "ph": "X",
        "cat": "kernel",
        "ts": 0.0,
        "dur": float(max(result.cycles, 1)),
        "pid": pid,
        "tid": n_tiles,
        "args": {
            "kernel": result.name,
            "cycles": int(result.cycles),
            "op_counts": {k: int(v) for k, v in result.op_counts.items()},
            "busy_slots": int(result.busy_slots),
            "link_activations": int(result.link_activations),
            "link_queue_delay": int(result.link_queue_delay),
            "spills": int(result.spills),
            "issue_events": len(trace),
            "issue_events_dropped": dropped,
        },
    }]
    for cycle, tile, kind in kept:
        events.append({
            "name": names[int(kind)],
            "ph": "X",
            "cat": "issue",
            "ts": float(cycle),
            "dur": 1.0,
            "pid": pid,
            "tid": int(tile),
        })
    return events

"""Trace analysis: utilization timelines, tile activity, link heatmaps.

When a kernel is simulated with ``record_issue_trace=True``, every
issued operation is logged as ``(cycle, tile, op_kind)``.  These
helpers turn that log (plus the per-link counters) into the views a
hardware architect reaches for first: how busy was the machine over
time (Fig. 17's timeline), which tiles did the work, and which links
carried the traffic.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.tasks import OpKind
from repro.sim.engine import KernelResult


def _require_trace(result: KernelResult):
    if result.issue_trace is None:
        raise ValueError(
            "kernel was simulated without record_issue_trace=True"
        )


def utilization_timeline(result: KernelResult, n_tiles: int,
                         n_buckets: int = 20) -> np.ndarray:
    """Machine utilization per time bucket (issued ops / issue slots).

    Returns an ``n_buckets`` array in [0, 1]; the Fig. 17 view of where
    a kernel's time goes.
    """
    _require_trace(result)
    if result.cycles == 0 or not result.issue_trace:
        return np.zeros(n_buckets)
    times = np.array([entry[0] for entry in result.issue_trace])
    edges = np.linspace(0, result.cycles, n_buckets + 1)
    counts, _ = np.histogram(times, bins=edges)
    slots_per_bucket = (edges[1:] - edges[:-1]) * n_tiles
    return counts / np.maximum(slots_per_bucket, 1e-12)


def tile_activity(result: KernelResult, n_tiles: int) -> np.ndarray:
    """Operations issued per tile (load-balance view)."""
    _require_trace(result)
    activity = np.zeros(n_tiles, dtype=np.int64)
    for _, tile, _ in result.issue_trace:
        activity[tile] += 1
    return activity


def op_mix_by_tile(result: KernelResult, n_tiles: int) -> np.ndarray:
    """Per-tile op counts by kind, shape ``(n_tiles, 4)``
    (FMAC/Add/Mul/Send order of :class:`OpKind`)."""
    _require_trace(result)
    mix = np.zeros((n_tiles, 4), dtype=np.int64)
    for _, tile, kind in result.issue_trace:
        mix[tile, kind] += 1
    return mix


def link_heatmap(result: KernelResult, geometry) -> np.ndarray:
    """Per-link activation counts arranged as a ``(n_tiles, 4)`` array.

    Column order matches ``geometry.neighbors``: the flits each tile
    sent toward each of its (up to four) neighbors.
    """
    heat = np.zeros((geometry.n_tiles, 4), dtype=np.int64)
    for (src, dst), count in result.per_link.items():
        neighbors = geometry.neighbors(src)
        for port, neighbor in enumerate(neighbors):
            if neighbor == dst:
                heat[src, port] += count
                break
    return heat


def idle_tail_fraction(result: KernelResult, n_tiles: int,
                       threshold: float = 0.1) -> float:
    """Fraction of the kernel's duration spent in the low-utilization
    tail (utilization below ``threshold``) — the serialization metric
    the time-balancing mapping attacks (Fig. 17)."""
    timeline = utilization_timeline(result, n_tiles, n_buckets=50)
    if len(timeline) == 0:
        return 0.0
    below = timeline < threshold
    # Count trailing low-utilization buckets.
    tail = 0
    for value in below[::-1]:
        if not value:
            break
        tail += 1
    return tail / len(timeline)


def export_trace_csv(result: KernelResult, path):
    """Write the raw issue trace as CSV (cycle, tile, op)."""
    _require_trace(result)
    names = {k.value: k.name.lower() for k in OpKind}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("cycle,tile,op\n")
        for cycle, tile, kind in result.issue_trace:
            handle.write(f"{cycle},{tile},{names[int(kind)]}\n")

"""PE issue layer: pipeline, RAW-hazard, and thread-context timing.

The issue model — *when* each FMAC/ADD/MUL/SEND leaves a PE — lives
behind the :class:`IssueStrategy` interface.  Two implementations share
the event core, fabric, and numeric state:

* :class:`PerOpIssue` — the golden operation-granularity model: every
  operation is one selection scan + one issue, with heap round-trips
  between issue slots.  Each step maps 1:1 onto the hardware
  description (Sec. V-A).
* :class:`BatchedIssue` — the run-granularity model (the default): a
  ``T_SAAC`` column-segment run is issued as one batched step whose
  per-op issue times are computed analytically (numpy for long runs),
  bounded by an exactness *horizon* so cycles, op counts, link stats,
  spills, and outputs stay bit-identical to :class:`PerOpIssue`
  (enforced by ``tests/test_engine_equivalence.py``).

A strategy is bound per run to the composition root (duck-typed as
:class:`IssueCore`), which supplies the shared state, event queue,
fabric, and completion callbacks.  New issue granularities (e.g. the
medium-granularity SpTRSV dataflow of Chen et al.) plug in as further
``IssueStrategy`` subclasses without touching the other layers.

Layer contract: ``issue`` may import ``events``/``state``/``fabric``
but never the engine composition root.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.sim.events import EV_MCAST, EV_PARTIAL, EV_PUMP, NEVER, EventQueue
from repro.sim.fabric import LinkFabric
from repro.sim.state import (
    T_ADD,
    T_MUL,
    T_SAAC,
    T_SEND,
    KernelState,
    TileState,
)

#: Remaining-run length at which the batched strategy switches from the
#: scalar recurrence to the numpy closed form.
VEC_THRESHOLD = 12


class IssueCore(Protocol):
    """What an :class:`IssueStrategy` needs from the composition root."""

    state: KernelState
    events: EventQueue
    fabric: LinkFabric
    alu_latency: int
    send_latency: int
    issue_trace: Optional[List[Tuple[int, int, int]]]
    mcast_send: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]]

    @property
    def pe(self) -> Any: ...
    def _node_input_done(self, row: int, node: int, time: int) -> None: ...
    def _solve_row(self, row: int, home: int, completion: int) -> None: ...
    def _schedule_pump(self, tile_id: int, time: int) -> None: ...


class IssueStrategy:
    """Interface: one PE's operation-selection and issue timing.

    ``bind`` captures per-run references from the composition root;
    ``pump(tile_id, now)`` then services one PUMP event (including the
    stale-pump filter).  Strategies may keep no cross-run state.
    """

    #: Engine name this strategy implements (``engine=`` argument).
    name: str = ""

    def bind(self, core: IssueCore) -> None:
        """Capture per-run references (state, events, fabric, hooks)."""
        pe = core.pe
        self.ic: int = pe.issue_cycles
        self.ideal: bool = pe.is_ideal
        self.limit: int = pe.thread_contexts if pe.multithreaded else 1
        self.alu_latency: int = core.alu_latency
        self.send_latency: int = core.send_latency
        self.state = core.state
        self.tiles = core.state.tiles
        self.events = core.events
        self.traverse = core.fabric.traverse
        self.trace = core.issue_trace
        self.mcast_send = core.mcast_send
        self.on_input_done: Callable[[int, int, int], None] = \
            core._node_input_done
        self.on_solve: Callable[[int, int, int], None] = core._solve_row
        self.schedule_pump: Callable[[int, int], None] = \
            core._schedule_pump

    def pump(self, tile_id: int, now: int) -> None:
        """Service one PUMP event at ``now`` on ``tile_id``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _issue_other(self, tile_id: int, tile: TileState, task: List,
                     task_index: int, issue_time: int) -> None:
        """Issue one non-SAAC operation (shared by both strategies)."""
        kind = task[1]
        ic = self.ic
        tile.busy += ic
        if self.trace is not None:
            self.trace.append((issue_time, tile_id, kind))
        if not self.ideal:
            tile.pe_time = issue_time + ic
        state = self.state
        if kind == T_ADD:
            row = task[2]
            completion = issue_time + self.alu_latency
            tile.op_counts[T_ADD] += 1
            tile.acc_ready[row] = completion
            tile.partial[row] += task[3]
            del tile.tasks[task_index]
            if completion > state.end_time:
                state.end_time = completion
            self.on_input_done(row, tile_id, completion)
        elif kind == T_MUL:
            row = task[2]
            completion = issue_time + self.alu_latency
            tile.op_counts[T_MUL] += 1
            del tile.tasks[task_index]
            if completion > state.end_time:
                state.end_time = completion
            self.on_solve(row, tile_id, completion)
        else:  # T_SEND
            payload = task[2]
            completion = issue_time + self.send_latency
            tile.op_counts[T_SEND] += 1
            del tile.tasks[task_index]
            if completion > state.end_time:
                state.end_time = completion
            if payload[0] == "mcast":
                _, j, value, tree_index = payload
                root, children = self.mcast_send[(j, tree_index)]
                if children:
                    traverse = self.traverse
                    for child in children:
                        traverse(root, child, completion, EV_MCAST,
                                 (child, j, value, tree_index))
            else:
                _, row, value, parent = payload
                self.traverse(tile_id, parent, completion,
                              EV_PARTIAL, (parent, row, value))


class PerOpIssue(IssueStrategy):
    """Operation-granularity issue (the golden reference model).

    Every operation makes a full selection scan and, on a non-ideal
    PE, a heap round-trip per issue slot, so events map 1:1 onto the
    hardware description.  Selected by ``engine="reference"`` or
    ``AZUL_SIM_REFERENCE=1``.
    """

    name = "reference"

    def _op_ready_time(self, tile: TileState, task: List) -> int:
        """Earliest cycle the task's current operation can issue."""
        kind = task[1]
        ready = task[0]
        pe_time = tile.pe_time
        if pe_time > ready:
            ready = pe_time
        if kind == T_SAAC:
            hazard = tile.acc_ready[task[2][task[5]]]
        elif kind == T_SEND:
            return ready
        else:  # T_ADD / T_MUL gate on their row's accumulator
            hazard = tile.acc_ready[task[2]]
        return hazard if hazard > ready else ready

    def pump(self, tile_id: int, now: int) -> None:
        """Issue every operation that can start at ``now``."""
        tile = self.tiles[tile_id]
        if tile.next_pump != now:
            return  # stale: a different pump is now scheduled
        tile.next_pump = None
        ideal = self.ideal
        limit = self.limit
        ready_time = self._op_ready_time
        while tile.tasks:
            tasks = tile.tasks
            window = limit if limit < len(tasks) else len(tasks)
            best_index = 0
            best_time = ready_time(tile, tasks[0])
            for index in range(1, window):
                ready = ready_time(tile, tasks[index])
                if ready < best_time:
                    best_time = ready
                    best_index = index
            if best_time > now:
                self.schedule_pump(tile_id, best_time)
                return
            self._issue_op(tile_id, tile, tasks[best_index], best_index,
                           best_time)
            if not ideal and tile.tasks:
                # One issue slot consumed; revisit at the next free cycle.
                self.schedule_pump(tile_id, tile.pe_time)
                return

    def _issue_op(self, tile_id: int, tile: TileState, task: List,
                  task_index: int, issue_time: int) -> None:
        """Execute one operation of ``task`` at ``issue_time``."""
        if task[1] != T_SAAC:
            self._issue_other(tile_id, tile, task, task_index, issue_time)
            return
        tile.busy += self.ic
        if self.trace is not None:
            self.trace.append((issue_time, tile_id, T_SAAC))
        if not self.ideal:
            tile.pe_time = issue_time + self.ic
        rows, vals, xval, pos = task[2], task[3], task[4], task[5]
        row = rows[pos]
        completion = issue_time + self.alu_latency
        tile.op_counts[T_SAAC] += 1
        tile.acc_ready[row] = completion
        tile.partial[row] += xval * vals[pos]
        task[5] = pos + 1
        if task[5] >= len(rows):
            del tile.tasks[task_index]
        local_rem = tile.local_rem
        remaining = local_rem[row] - 1
        local_rem[row] = remaining
        state = self.state
        if completion > state.end_time:
            state.end_time = completion
        if remaining == 0:
            self.on_input_done(row, tile_id, completion)


class BatchedIssue(IssueStrategy):
    """Run-granularity issue: batches column-segment runs exactly.

    Exactness argument (mirrored by ``tests/test_engine_equivalence.py``):

    * **Horizon** ``h`` — the earliest pending heap event.  While the
      next issue time is strictly below ``h`` no external event (message
      arrival, other tile's pump) could have interposed in the per-op
      model, so the pump keeps going inline instead of bouncing through
      the heap.  Ideal PEs additionally issue everything ready at the
      current pump time regardless of the heap, exactly like the per-op
      loop.
    * **Window competition** — a batched SAAC run continues only while
      its next op's issue time stays strictly below every *other*
      window task's hazard floor ``max(task_time, acc_ready[row])``.
      Accumulator-ready times only grow, so floors computed at batch
      start remain valid; ties conservatively end the batch and defer
      to the exact selection scan.
    * **Triggers** — the first op whose last local contribution lands
      (``local_rem`` hits zero) ends the batch, because its
      input-done side effect can enqueue work and push events.
    * **Numerics** — rows within a run are distinct, so the vectorized
      ``partial[rows] += xval * vals`` performs the identical IEEE-754
      operations in the identical order as per-op issue.
    """

    name = "batched"

    def pump(self, tile_id: int, now: int) -> None:
        """Horizon-bounded pump: drains inline while no event intervenes.

        The single-op SAAC issue (the dominant case once the machine is
        saturated and batches are horizon-bounded) is fully inlined
        here; runs that can batch further go through ``_saac_batch``.
        """
        tile = self.tiles[tile_id]
        if tile.next_pump != now:
            return  # stale: a different pump is now scheduled
        tile.next_pump = None
        ideal = self.ideal
        limit = self.limit
        ic = self.ic
        alu = self.alu_latency
        eq = self.events
        heap = eq.heap
        state = self.state
        acc = tile.acc_ready
        tasks = tile.tasks
        partial = tile.partial
        local_rem = tile.local_rem
        op_counts = tile.op_counts
        trace = self.trace
        while True:
            n_tasks = len(tasks)
            if not n_tasks:
                return
            h = heap[0][0] if heap else NEVER
            window = limit if limit < n_tasks else n_tasks
            # Inline selection, identical to the per-op scan: the
            # winner is the first strict minimum of
            # ``ready = max(arrival, acc hazard, pe_time)``.  Ties go to
            # the lowest index, so the first task whose hazard floor is
            # at or below ``pe_time`` wins outright (``ready`` cannot
            # drop below ``pe_time``) and the scan short-circuits.
            pe_time = tile.pe_time
            best_index = 0
            best_ready = NEVER
            index = 0
            for task in tasks if window == n_tasks else tasks[:window]:
                # Branch-free hazard read: slot ``TASK_HAZARD`` always
                # names the row whose accumulator gates the task's
                # current op (Sends name the dummy row, stuck at 0).
                m = acc[task[6]]
                t = task[0]
                if t > m:
                    m = t
                if m <= pe_time:
                    best_index = index
                    best_ready = pe_time
                    break
                if m < best_ready:
                    best_ready = m
                    best_index = index
                index += 1
            best_time = best_ready
            if best_time > now:
                if best_time >= h:
                    # An event at or before best_time could change the
                    # picture: yield to the heap (per-op order).
                    nxt = tile.next_pump
                    if nxt is None or best_time < nxt:
                        tile.next_pump = best_time
                        eq.push(best_time, EV_PUMP, tile_id)
                    return
                # Fast-forward: nothing can intervene.  The per-op
                # model would push a pump at best_time and pop it
                # straight back (clearing ``next_pump``); mirror that.
                now = best_time
                tile.next_pump = None
            task = tasks[best_index]
            if task[1] == 0:  # T_SAAC
                rows = task[2]
                pos = task[5]
                row0 = rows[pos]
                trigger = local_rem[row0] == 1
                p1 = pos + 1
                # Probe whether a second run op could join the batch;
                # if so, defer to the multi-op planner.  The heap
                # horizon blocks extension in the vast majority of
                # pumps, so the hazard floor of the losing window tasks
                # (``other_floor``) is only computed once the cheap
                # horizon gate has already passed.
                if not trigger and p1 < len(rows):
                    t0 = task[0]
                    ready2 = acc[rows[p1]]
                    if t0 > ready2:
                        ready2 = t0
                    if ideal:
                        t1 = ready2
                        gate = ready2 <= now or ready2 < h
                    else:
                        t1 = best_time + ic
                        if ready2 > t1:
                            t1 = ready2
                        gate = t1 < h
                    if gate:
                        other_floor = NEVER
                        k = 0
                        for task2 in (tasks if window == n_tasks
                                      else tasks[:window]):
                            if k != best_index:
                                m = acc[task2[6]]
                                t = task2[0]
                                if t > m:
                                    m = t
                                if m < other_floor:
                                    other_floor = m
                            k += 1
                        if t1 < other_floor:
                            now = self._saac_batch(
                                tile_id, tile, task, best_index,
                                best_time, other_floor, h, now, t1,
                            )
                            if now < 0:
                                return
                            continue
                # -- single-op issue, fully inline ---------------------
                completion = best_time + alu
                acc[row0] = completion
                partial[row0] += task[4] * task[3][pos]
                local_rem[row0] -= 1
                op_counts[0] += 1
                tile.busy += ic
                if trace is not None:
                    trace.append((best_time, tile_id, 0))
                if p1 >= len(rows):
                    del tasks[best_index]
                else:
                    task[5] = p1
                    task[6] = rows[p1]
                if not ideal:
                    pe_time = best_time + ic
                    tile.pe_time = pe_time
                if completion > state.end_time:
                    state.end_time = completion
                if trigger:
                    self.on_input_done(row0, tile_id, completion)
                if ideal:
                    # The per-op ideal pump keeps draining within one
                    # invocation.
                    continue
            else:
                self._issue_other(tile_id, tile, task, best_index,
                                  best_time)
                if ideal:
                    # The per-op ideal pump keeps draining within one
                    # invocation (no heap round-trip, no next_pump
                    # churn).
                    continue
                pe_time = tile.pe_time
            if not tasks:
                # The per-op loop exits without scheduling.
                return
            if heap and heap[0][0] <= pe_time:
                nxt = tile.next_pump
                if nxt is None or pe_time < nxt:
                    tile.next_pump = pe_time
                    eq.push(pe_time, EV_PUMP, tile_id)
                return
            # The per-op model would push a pump at pe_time and pop it
            # right back (strictly before any event): continue inline
            # with the same ``next_pump = None`` state.
            tile.next_pump = None
            now = pe_time

    # ------------------------------------------------------------------
    def _saac_batch(self, tile_id: int, tile: TileState, task: List,
                    task_index: int, best_time: int, other_floor: int,
                    h: int, now: int, t1: int) -> int:
        """Issue a multi-op batch of one SAAC run (exactness-bounded).

        Only called once ``pump``'s probe established that the run's
        second op (issuing at ``t1``) can join the batch, so ``count``
        is always at least 2.  Returns the pump's new ``now``
        (non-negative) to continue inline, or ``-1`` when the pump
        must yield to the heap.
        """
        ic = self.ic
        ideal = self.ideal
        alu = self.alu_latency
        state = self.state
        acc = tile.acc_ready
        partial = tile.partial
        local_rem = tile.local_rem
        rows = task[2]
        vals = task[3]
        xval = task[4]
        pos = task[5]
        n_run = len(rows)
        t0 = task[0]
        p1 = pos + 1
        running = now

        if n_run - pos >= VEC_THRESHOLD:
            count, times, running = self._plan_batch_vectorized(
                acc, local_rem, rows, pos, t0, best_time,
                other_floor, h, now,
            )
            trigger = local_rem[rows[pos + count - 1]] == 1
            last_t = times[count - 1]
            comp_max = max(times) + alu
        else:
            t_next = t1
            if ideal and t_next > running:
                running = t_next
            times = [best_time, t_next]
            cur = t_next
            trigger = local_rem[rows[p1]] == 1
            p = p1 + 1
            while p < n_run and not trigger:
                row = rows[p]
                ready = acc[row]
                if t0 > ready:
                    ready = t0
                if ideal:
                    t_next = ready
                    if t_next >= other_floor or (
                        t_next > running and t_next >= h
                    ):
                        break
                    if t_next > running:
                        running = t_next
                else:
                    floor = cur + ic
                    t_next = ready if ready > floor else floor
                    if t_next >= other_floor or t_next >= h:
                        break
                times.append(t_next)
                cur = t_next
                p += 1
                if local_rem[row] == 1:
                    trigger = True
                    break
            count = len(times)
            last_t = cur
            comp_max = max(times) + alu

        end = pos + count
        # Vectorized numeric contribution: the per-op products are one
        # array multiply; rows within a run are distinct, so the
        # scatter applies the identical IEEE-754 adds in the identical
        # order as per-op issue.
        contrib = (
            xval * np.asarray(vals[pos:end], dtype=np.float64)
        ).tolist()
        for k in range(count):
            r = rows[pos + k]
            acc[r] = times[k] + alu
            partial[r] += contrib[k]
            local_rem[r] -= 1
        tile.op_counts[0] += count
        tile.busy += ic * count
        if self.trace is not None:
            trace = self.trace
            for k in range(count):
                trace.append((times[k], tile_id, T_SAAC))
        if not ideal:
            tile.pe_time = last_t + ic
        elif running > now:
            # An in-batch fast-forward: the per-op model pushed a pump
            # at the hop time and popped it back, clearing
            # ``next_pump``.  Mirror that before the trigger's side
            # effects reschedule.
            tile.next_pump = None
        if comp_max > state.end_time:
            state.end_time = comp_max

        if end >= n_run:
            del tile.tasks[task_index]
        else:
            task[5] = end
            task[6] = rows[end]

        if trigger:
            self.on_input_done(rows[end - 1], tile_id, last_t + alu)

        if ideal:
            return running
        pe_time = tile.pe_time
        if not tile.tasks:
            return pe_time  # pump loop exits without scheduling
        eq = self.events
        heap = eq.heap
        if heap and heap[0][0] <= pe_time:
            nxt = tile.next_pump
            if nxt is None or pe_time < nxt:
                tile.next_pump = pe_time
                eq.push(pe_time, EV_PUMP, tile_id)
            return -1
        tile.next_pump = None
        return pe_time

    def _plan_batch_vectorized(self, acc: List[int],
                               local_rem: List[int], rows: List[int],
                               pos: int, t0: int, best_time: int,
                               other_floor: int, h: int,
                               now: int) -> Tuple[int, List[int], int]:
        """Closed-form issue times for a long run tail (numpy path).

        Solves the recurrence ``t_k = max(ready_k, t_{k-1} + ic)``
        (non-ideal) or ``t_k = ready_k`` (ideal) for the whole
        remaining run, then truncates at the first op violating the
        horizon/window bounds or landing a trigger.
        Returns ``(count, times_list, running_now)``.
        """
        ic = self.ic
        tail = rows[pos:]
        length = len(tail)
        ready = np.fromiter(
            (acc[r] for r in tail), dtype=np.int64, count=length,
        )
        np.maximum(ready, t0, out=ready)
        if self.ideal:
            t_all = ready
            t_all[0] = best_time
            runmax = np.maximum.accumulate(t_all)
            prior = np.empty(length, dtype=np.int64)
            prior[0] = now
            np.maximum(runmax[:-1], now, out=prior[1:])
            ok = (t_all < other_floor) & ((t_all <= prior) | (t_all < h))
        else:
            steps = ic * np.arange(length, dtype=np.int64)
            shifted = ready - steps
            shifted[0] = best_time
            t_all = np.maximum.accumulate(shifted) + steps
            bound = other_floor if other_floor < h else h
            ok = t_all < bound
        ok[0] = True
        bad = np.nonzero(~ok)[0]
        count = int(bad[0]) if len(bad) else length
        # Truncate at (and include) the first trigger op.
        for k in range(count):
            if local_rem[tail[k]] == 1:
                count = k + 1
                break
        times = t_all[:count].tolist()
        if self.ideal:
            running = max(times)
            if now > running:
                running = now
        else:
            running = times[-1]
        return count, times, running


#: Registered issue strategies by engine name.
STRATEGIES: Dict[str, type] = {
    PerOpIssue.name: PerOpIssue,
    BatchedIssue.name: BatchedIssue,
}


def resolve_strategy(engine: str) -> type:
    """Map an ``engine`` name to its :class:`IssueStrategy` class."""
    try:
        return STRATEGIES[engine]
    except KeyError:
        raise ValueError(
            f"unknown simulator engine {engine!r}; "
            f"choices: {', '.join(sorted(STRATEGIES))}"
        ) from None

"""Cycle-breakdown statistics (Fig. 21 machinery).

Converts kernel results into the paper's PE cycle-breakdown categories:
issue slots spent on Fmac/Add/Mul/Send operations versus stalls (idle
issue slots while the kernel was in flight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CycleBreakdown:
    """Fractions of PE issue slots by activity; sums to 1."""

    fmac: float
    add: float
    mul: float
    send: float
    stall: float

    def as_dict(self) -> dict:
        return {
            "fmac": self.fmac,
            "add": self.add,
            "mul": self.mul,
            "send": self.send,
            "stall": self.stall,
        }


def breakdown_from_results(kernel_results, n_tiles: int,
                           issue_cycles: int = 1,
                           extra_cycles: int = 0,
                           extra_ops: Optional[dict] = None) -> CycleBreakdown:
    """Aggregate kernel results into a machine-wide cycle breakdown.

    Total issue slots are ``(sum of kernel cycles + extra_cycles) *
    n_tiles``; op slots are the issued operation counts times the PE's
    per-op issue cost; the remainder is stalls (idle PEs waiting on
    dependences, messages, or load imbalance).
    """
    total_cycles = sum(r.cycles for r in kernel_results) + extra_cycles
    total_slots = max(total_cycles * n_tiles, 1)
    ops = {"fmac": 0, "add": 0, "mul": 0, "send": 0}
    for result in kernel_results:
        for kind, count in result.op_counts.items():
            ops[kind] += count
    if extra_ops:
        for kind, count in extra_ops.items():
            ops[kind] = ops.get(kind, 0) + count
    fractions = {
        kind: min(count * issue_cycles / total_slots, 1.0)
        for kind, count in ops.items()
    }
    used = sum(fractions.values())
    return CycleBreakdown(
        fmac=fractions["fmac"],
        add=fractions["add"],
        mul=fractions["mul"],
        send=fractions["send"],
        stall=max(0.0, 1.0 - used),
    )

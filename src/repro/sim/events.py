"""Event core: calendar queue, deterministic tie-breaking, drain loop.

The bottom layer of the simulator core (``events ← fabric ← issue ←
engine``).  Both issue strategies and the fabric push into one
:class:`EventQueue`; ordering is a strict weak order on
``(time, sequence)`` so simultaneous events always replay in push
order — the determinism the bit-identity suite
(``tests/test_engine_equivalence.py``) relies on.

This module must not import anything else from :mod:`repro.sim`
(enforced by the import-linter layer contract and
``tools/check_layers.py``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

# Event kinds (heap entries are ``(time, seq, kind, payload)``).
EV_PUMP = 0      #: a tile's PE may be able to issue an operation
EV_MCAST = 1     #: multicast value arriving at a tree node
EV_PARTIAL = 2   #: reduction partial arriving at a tree node

#: Sentinel "never" time (must exceed any reachable cycle count).
NEVER = 1 << 62

#: One scheduled event.
Event = Tuple[int, int, int, Any]

#: Event handler: ``handler(payload, time)``.
Handler = Callable[[Any, int], None]


class EventQueue:
    """A binary-heap calendar queue with deterministic tie-breaking.

    Events at equal times pop in push order (a monotonically increasing
    sequence number is the tie-break key), which makes every simulation
    replayable bit-for-bit.  The backing ``heap`` list is exposed so
    hot loops can peek the horizon (``heap[0][0]``) without a method
    call; mutation must go through :meth:`push`.
    """

    __slots__ = ("heap", "seq")

    def __init__(self) -> None:
        self.heap: List[Event] = []
        self.seq: int = 0

    def push(self, time: int, kind: int, payload: Any) -> None:
        """Schedule ``(kind, payload)`` at ``time``."""
        heapq.heappush(self.heap, (time, self.seq, kind, payload))
        self.seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self.heap)

    def next_time(self, default: int = NEVER) -> int:
        """Time of the earliest pending event (the batching *horizon*)."""
        heap = self.heap
        return heap[0][0] if heap else default

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


def drain(queue: EventQueue, on_pump: Handler, on_mcast: Handler,
          on_partial: Handler) -> None:
    """Run the event loop to exhaustion.

    The single drain loop shared by both engines: pops events in
    ``(time, seq)`` order and dispatches on kind.  Handlers receive
    ``(payload, time)``; stale-pump filtering is the pump handler's
    responsibility (a tile has at most one *live* pump, deduplicated
    via ``TileState.next_pump``).
    """
    heap = queue.heap
    pop = heapq.heappop
    while heap:
        time, _, kind, payload = pop(heap)
        if kind == EV_PUMP:
            on_pump(payload, time)
        elif kind == EV_MCAST:
            on_mcast(payload, time)
        else:
            on_partial(payload, time)

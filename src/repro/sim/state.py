"""Numeric state layer: partials, remaining-input counts, solve values.

One implementation of the simulator's *functional* state, shared by
both issue strategies: per-tile dense accumulators and task queues
(:class:`TileState`), plus the kernel-wide completion bookkeeping
(:class:`KernelState`).  Timing layers (fabric, issue) mutate this
state but the numeric semantics — which IEEE-754 operations run, in
which order — are defined here once, so functional correctness cannot
diverge between engines.

Layer contract: ``state`` sits directly above ``events`` and imports
nothing else from :mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

# Task kinds (slot 1 of a task; values match ``dataflow.tasks.OpKind``
# so ``tile.op_counts[kind]`` indexes without translation).
T_SAAC = 0   #: ScaleAndAccumCol: a run of FMACs against a column segment
T_ADD = 1    #: merge one incoming reduction partial
T_MUL = 2    #: solve x_i = (b_i - acc) * (1/d_i)
T_SEND = 3   #: push one value into the router

# Task layout: ``[arrival_time, kind, payload..., hazard_row]``.  Slot 6
# always holds the row whose accumulator gates the task's *current*
# operation (a dummy row ``n`` with permanently-zero ready time for
# Sends), so the batched issue strategy's selection scan reads one
# uniform ``acc[task[6]]`` with no per-kind branching.  The per-op
# strategy branches on kind instead and ignores the slot.
TASK_HAZARD = 6

#: One PE task: a mutable list (mutated in place as ops retire).
Task = List  # type: ignore[type-arg]


class TileState:
    """Mutable per-tile simulation state (dense accumulators).

    ``acc_ready``/``partial`` are dense per-row Python lists — scalar
    reads/writes in the issue loops cost a plain list index instead of
    a dict probe or numpy scalar round-trip.  ``acc_ready`` has one
    extra slot: row ``n`` is the *dummy hazard row* named by Send
    tasks' ``TASK_HAZARD`` field; it is never written, so
    ``acc_ready[task[6]]`` is branch-free across task kinds.
    ``local_rem`` mirrors ``program.local_counts`` for this tile
    (``None`` when the tile holds no matrix nonzeros).
    """

    __slots__ = (
        "tasks", "pe_time", "acc_ready", "busy", "op_counts",
        "next_pump", "partial", "local_rem",
    )

    def __init__(self, n: int, local_rem: Optional[List[int]]) -> None:
        self.tasks: List[Task] = []
        self.pe_time = 0
        self.busy = 0
        self.op_counts = [0, 0, 0, 0]  # FMAC, ADD, MUL, SEND
        self.next_pump: Optional[int] = None
        self.acc_ready = [0] * (n + 1)
        self.partial = [0.0] * n
        self.local_rem = local_rem


class KernelState:
    """Kernel-wide numeric and completion state of one execution.

    Owns the tile map, the reduction-node input counters, the output
    vector, spill accounting for the message buffer, and the running
    compute-completion time.  The composition root creates one per
    :meth:`~repro.sim.engine.KernelSimulator.run`.
    """

    __slots__ = (
        "n", "tiles", "node_remaining", "rows_done", "output",
        "spills", "end_time", "msg_buffer_entries", "spill_penalty",
        "local_by_tile",
    )

    def __init__(self, n: int, local_tiles, local_counts,
                 msg_buffer_entries: int, spill_penalty: int) -> None:
        self.n = n
        self.tiles: Dict[int, TileState] = {}
        self.node_remaining: Dict[Tuple[int, int], int] = {}
        self.rows_done = 0
        self.output = np.zeros(n)
        self.spills = 0
        #: Latest *compute* completion seen so far; the fabric tracks
        #: link arrivals separately and the composition root takes the
        #: max of the two for the reported cycle count.
        self.end_time = 0
        self.msg_buffer_entries = msg_buffer_entries
        self.spill_penalty = spill_penalty
        # ``local_tiles``/``local_counts`` are the program's dense
        # per-(tile, row) FMAC counters (``local_counts[p]`` is the
        # row vector of tile ``local_tiles[p]``).  Each tile's counts
        # become a plain Python list: the issue loops decrement with
        # scalar list indexing.
        self.local_by_tile: Dict[int, List[int]] = {
            int(tile): np.asarray(counts).tolist()
            for tile, counts in zip(local_tiles, local_counts)
        }

    # ------------------------------------------------------------------
    def tile(self, tile_id: int) -> TileState:
        """The tile's state, created on first touch."""
        tile = self.tiles.get(tile_id)
        if tile is None:
            tile = TileState(self.n, self.local_by_tile.get(tile_id))
            self.tiles[tile_id] = tile
        return tile

    def enqueue(self, tile_id: int, task: Task) -> TileState:
        """Append a task to a tile, modeling message-buffer spills.

        A task arriving at a queue already holding
        ``msg_buffer_entries`` entries overflows the register buffer
        into the Data SRAM: the spill is counted and the task's start
        is delayed by one SRAM round trip (Sec. V-A).
        """
        tile = self.tile(tile_id)
        tasks = tile.tasks
        if len(tasks) >= self.msg_buffer_entries:
            self.spills += 1
            task[0] += self.spill_penalty
        tasks.append(task)
        return tile

    def partial_value(self, tile_id: int, row: int) -> float:
        """Current accumulated partial for ``row`` on ``tile_id``."""
        tile = self.tiles.get(tile_id)
        return 0.0 if tile is None else tile.partial[row]

    # ------------------------------------------------------------------
    def init_node_remaining(self, program) -> None:
        """Expected inputs at every reduction-tree node and every home.

        ``program`` is duck-typed (a
        :class:`~repro.dataflow.ir.CompiledKernel`); the state layer
        reads only ``n``, ``vec_tile``, the flat reduction-forest
        arrays (``red_index``/``red_edge_ptr``/``red_child``/
        ``red_parent``), and the dense local counters mirrored in
        :attr:`local_by_tile`.
        """
        node_remaining = self.node_remaining
        local_by_tile = self.local_by_tile
        vec_tile = program.vec_tile.tolist()
        red_index = program.red_index.tolist()
        edge_ptr = program.red_edge_ptr.tolist()
        red_child = program.red_child.tolist()
        red_parent = program.red_parent.tolist()
        for i in range(program.n):
            home = vec_tile[i]
            tree = red_index[i]
            if tree < 0:
                rem = local_by_tile.get(home)
                node_remaining[(i, home)] = (
                    1 if rem is not None and rem[i] > 0 else 0
                )
                continue
            children: Dict[int, int] = {}
            nodes = {home}
            for e in range(edge_ptr[tree], edge_ptr[tree + 1]):
                children[red_parent[e]] = children.get(red_parent[e], 0) + 1
                nodes.add(red_child[e])
            for node in nodes:
                expected = children.get(node, 0)
                rem = local_by_tile.get(node)
                if rem is not None and rem[i] > 0:
                    expected += 1
                node_remaining[(i, node)] = expected

    def op_totals(self) -> Tuple[List[int], int]:
        """``([fmac, add, mul, send] totals, busy-slot total)``."""
        totals = [0, 0, 0, 0]
        busy = 0
        for tile in self.tiles.values():
            busy += tile.busy
            counts = tile.op_counts
            for k in range(4):
                totals[k] += counts[k]
        return totals, busy

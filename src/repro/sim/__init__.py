"""Cycle-level simulator of the Azul machine (Sec. V / VI-A).

An operation-granularity discrete-event simulator: PEs issue one
operation per cycle (subject to accumulator RAW hazards, hidden by
fine-grained multithreading), torus links carry one 96-bit message per
cycle, and multicast/reduction trees forward in the routers.  The
simulator computes the actual numeric results of the dataflow, so
functional correctness is checked against the reference kernels exactly
as the paper validates its simulator against Ginkgo.

Three PE models reproduce the paper's comparisons:

* :data:`AZUL_PE` — specialized pipeline, multithreaded (the default).
* :data:`AZUL_PE_SINGLE_THREADED` — the Fig. 27 ablation.
* :data:`DALOREX_PE` — in-order core with control-overhead cycles per
  operation (Sec. III).
* :data:`IDEAL_PE` — infinite issue bandwidth (the Fig. 10 idealized
  PEs that expose pure network behavior).
"""

from repro.sim.pe import (
    PEModel,
    AZUL_PE,
    AZUL_PE_SINGLE_THREADED,
    DALOREX_PE,
    IDEAL_PE,
    pe_model_by_name,
    pe_model_names,
)
from repro.sim.engine import (
    BatchedKernelSimulator,
    KernelResult,
    KernelSimulator,
    REFERENCE_ENV,
    ReferenceKernelSimulator,
)
from repro.sim.machine import AzulMachine, IterationResult
from repro.sim.full_solve import FullSolveResult, simulate_full_pcg
from repro.sim.solver_timing import (
    RECIPES,
    IterationRecipe,
    solver_iteration_cycles,
)
from repro.sim.functional import functional_spmv, functional_sptrsv
from repro.sim.stats import CycleBreakdown, breakdown_from_results

__all__ = [
    "PEModel",
    "AZUL_PE",
    "AZUL_PE_SINGLE_THREADED",
    "DALOREX_PE",
    "IDEAL_PE",
    "pe_model_by_name",
    "pe_model_names",
    "KernelSimulator",
    "KernelResult",
    "BatchedKernelSimulator",
    "ReferenceKernelSimulator",
    "REFERENCE_ENV",
    "AzulMachine",
    "IterationResult",
    "FullSolveResult",
    "simulate_full_pcg",
    "RECIPES",
    "IterationRecipe",
    "solver_iteration_cycles",
    "functional_spmv",
    "functional_sptrsv",
    "CycleBreakdown",
    "breakdown_from_results",
]

"""Cycle-level simulator of the Azul machine (Sec. V / VI-A).

An operation-granularity discrete-event simulator: PEs issue one
operation per cycle (subject to accumulator RAW hazards, hidden by
fine-grained multithreading), torus links carry one 96-bit message per
cycle, and multicast/reduction trees forward in the routers.  The
simulator computes the actual numeric results of the dataflow, so
functional correctness is checked against the reference kernels exactly
as the paper validates its simulator against Ginkgo.

The core is layered (enforced by ``tools/check_layers.py`` and the
import-linter contract in ``.importlinter``)::

    events  — calendar queue + drain loop       (repro.sim.events)
    state   — numeric/functional kernel state   (repro.sim.state)
    fabric  — NoC links + multicast forwarding  (repro.sim.fabric)
    issue   — PE issue strategies               (repro.sim.issue)
    engine  — thin composition root             (repro.sim.engine)

``KernelSimulator(..., engine="reference"|"batched")`` selects only the
:class:`~repro.sim.issue.IssueStrategy`; everything else — numeric
semantics, link contention, event ordering — is one shared code path.

Three PE models reproduce the paper's comparisons:

* :data:`AZUL_PE` — specialized pipeline, multithreaded (the default).
* :data:`AZUL_PE_SINGLE_THREADED` — the Fig. 27 ablation.
* :data:`DALOREX_PE` — in-order core with control-overhead cycles per
  operation (Sec. III).
* :data:`IDEAL_PE` — infinite issue bandwidth (the Fig. 10 idealized
  PEs that expose pure network behavior).
"""

from repro.sim.pe import (
    PEModel,
    AZUL_PE,
    AZUL_PE_SINGLE_THREADED,
    DALOREX_PE,
    IDEAL_PE,
    pe_model_by_name,
    pe_model_names,
)
from repro.sim.engine import (
    BatchedKernelSimulator,
    KernelResult,
    KernelSimulator,
    REFERENCE_ENV,
    ReferenceKernelSimulator,
)
from repro.sim.events import EventQueue, drain
from repro.sim.fabric import FabricModel, LinkFabric
from repro.sim.issue import (
    BatchedIssue,
    IssueStrategy,
    PerOpIssue,
    resolve_strategy,
)
from repro.sim.state import KernelState, TileState
from repro.sim.machine import AzulMachine, IterationResult
from repro.sim.full_solve import FullSolveResult, simulate_full_pcg
from repro.sim.solver_timing import (
    RECIPES,
    IterationRecipe,
    solver_iteration_cycles,
)
from repro.sim.functional import functional_spmv, functional_sptrsv
from repro.sim.stats import CycleBreakdown, breakdown_from_results

__all__ = [
    "PEModel",
    "AZUL_PE",
    "AZUL_PE_SINGLE_THREADED",
    "DALOREX_PE",
    "IDEAL_PE",
    "pe_model_by_name",
    "pe_model_names",
    "KernelSimulator",
    "KernelResult",
    "BatchedKernelSimulator",
    "ReferenceKernelSimulator",
    "REFERENCE_ENV",
    "EventQueue",
    "drain",
    "FabricModel",
    "LinkFabric",
    "IssueStrategy",
    "PerOpIssue",
    "BatchedIssue",
    "resolve_strategy",
    "KernelState",
    "TileState",
    "AzulMachine",
    "IterationResult",
    "FullSolveResult",
    "simulate_full_pcg",
    "RECIPES",
    "IterationRecipe",
    "solver_iteration_cycles",
    "functional_spmv",
    "functional_sptrsv",
    "CycleBreakdown",
    "breakdown_from_results",
]

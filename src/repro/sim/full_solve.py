"""Full PCG solves executed through the simulated machine.

The paper's functional validation runs *entire PCG solves* on the
simulator and checks the results against a reference implementation
(Sec. VI-A).  :func:`simulate_full_pcg` does the same: every SpMV and
SpTRSV of every iteration is executed by the cycle-level dataflow
engine (vector operations, which are element-wise exact, run in numpy
and are cycle-accounted by the vector-phase model), yielding both the
converged solution and the total machine cycles for the solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import Placement
from repro.errors import ConvergenceError
from repro.sim.machine import AzulMachine
from repro.solvers.tracking import ConvergenceHistory
from repro.sparse.csr import CSRMatrix


@dataclass
class FullSolveResult:
    """Outcome of a PCG solve executed on the simulated machine.

    Attributes
    ----------
    x:
        Solution computed entirely through simulated kernels.
    converged, iterations, residual_norm, history:
        Standard solver outcome fields.
    total_cycles:
        Machine cycles across all iterations (kernels + vector phases).
    kernel_cycles:
        Cycles spent in sparse kernels only.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    total_cycles: int
    kernel_cycles: int
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)

    def seconds(self, frequency_hz: float) -> float:
        """Wall-clock solve time at a given machine frequency."""
        return self.total_cycles / frequency_hz


def simulate_full_pcg(machine: AzulMachine, matrix: CSRMatrix,
                      lower: CSRMatrix, placement: Placement,
                      b: np.ndarray, tol: float = 1e-10,
                      max_iterations: int = 500,
                      raise_on_divergence: bool = False) -> FullSolveResult:
    """Run IC(0)-preconditioned CG with all sparse kernels simulated.

    Mirrors Listing 1 exactly; each ``trisolve``/``mvmul`` is one
    dataflow execution on the mapped machine, so the returned ``x`` is
    the machine's answer, not a shortcut through numpy.
    """
    program = machine.compile(matrix, lower, placement)
    vector_cycles = program.vector_phase.cycles()
    history = ConvergenceHistory()
    n = matrix.n_rows
    b = np.asarray(b, dtype=np.float64)

    total_cycles = 0
    kernel_cycles = 0

    def solve_preconditioner(residual):
        nonlocal total_cycles, kernel_cycles
        forward = machine.run_kernel(program.sptrsv_lower, b=residual)
        backward = machine.run_kernel(program.sptrsv_upper,
                                      b=forward.output)
        kernel_cycles += forward.cycles + backward.cycles
        total_cycles += forward.cycles + backward.cycles
        return backward.output

    def spmv(vector):
        nonlocal total_cycles, kernel_cycles
        result = machine.run_kernel(program.spmv, x=vector)
        kernel_cycles += result.cycles
        total_cycles += result.cycles
        return result.output

    x = np.zeros(n)
    r = b.copy()
    z = solve_preconditioner(r)
    p = z.copy()
    rz_old = float(np.dot(r, z))
    b_norm = float(np.linalg.norm(b))
    threshold = tol * (b_norm if b_norm > 0 else 1.0)
    residual_norm = float(np.linalg.norm(r))
    history.record(residual_norm)

    iterations = 0
    converged = residual_norm <= threshold
    while not converged and iterations < max_iterations:
        ap = spmv(p)
        p_ap = float(np.dot(p, ap))
        if p_ap == 0.0:
            break
        alpha = rz_old / p_ap
        x = x + alpha * p
        r = r - alpha * ap
        z = solve_preconditioner(r)
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz_old if rz_old != 0.0 else 0.0
        p = z + beta * p
        rz_old = rz_new
        total_cycles += vector_cycles
        iterations += 1
        residual_norm = float(np.linalg.norm(r))
        history.record(residual_norm)
        converged = residual_norm <= threshold

    result = FullSolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norm=residual_norm,
        total_cycles=total_cycles,
        kernel_cycles=kernel_cycles,
        history=history,
    )
    if raise_on_divergence and not converged:
        raise ConvergenceError(
            f"simulated PCG did not converge in {max_iterations} "
            f"iterations (residual {residual_norm:g})",
        )
    return result

"""Functional (timing-free) execution of kernel programs.

Executes the same compiled dataflow structures as the cycle simulator
but with no notion of time, giving an independent check that program
*construction* is correct (segments, trees, counters) separate from the
timing engine.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.kernel_program import KernelProgram
from repro.errors import SimulationError


def functional_spmv(program: KernelProgram, x: np.ndarray) -> np.ndarray:
    """Execute a compiled SpMV program: scale segments, reduce partials."""
    x = np.asarray(x, dtype=np.float64)
    y = np.zeros(program.n)
    for segments in program.col_segments.values():
        for j, (rows, values) in segments.items():
            np.add.at(y, rows, values * x[j])
    return y


def functional_sptrsv(program: KernelProgram, b: np.ndarray) -> np.ndarray:
    """Execute a compiled SpTRSV program in dependence order.

    Rows are solved as their pending contribution counters drain,
    exactly as the hardware would, but eagerly (no timing).
    """
    b = np.asarray(b, dtype=np.float64)
    n = program.n
    acc = np.zeros(n)
    x = np.zeros(n)
    # Pending off-diagonal contributions per row, over all tiles.
    pending = np.zeros(n, dtype=np.int64)
    for (tile, row), count in program.local_counts.items():
        pending[row] += count
    ready = [i for i in range(n) if pending[i] == 0]
    # Per-column global segments (merged over tiles).
    columns = {}
    for segments in program.col_segments.values():
        for j, (rows, values) in segments.items():
            columns.setdefault(j, []).append((rows, values))
    solved = 0
    while ready:
        i = ready.pop()
        x[i] = (b[i] - acc[i]) * program.inv_diag[i]
        solved += 1
        for rows, values in columns.get(i, ()):
            for row, value in zip(rows, values):
                acc[row] += value * x[i]
                pending[row] -= 1
                if pending[row] == 0:
                    ready.append(int(row))
    if solved != n:
        raise SimulationError(
            f"functional SpTRSV deadlock: {solved}/{n} rows solved"
        )
    return x

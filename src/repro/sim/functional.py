"""Functional (timing-free) execution of kernel programs.

Executes the same compiled dataflow structures as the cycle simulator
but with no notion of time, giving an independent check that program
*construction* is correct (segments, trees, counters) separate from the
timing engine.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.kernel_program import KernelProgram
from repro.errors import SimulationError


def functional_spmv(program: KernelProgram, x: np.ndarray) -> np.ndarray:
    """Execute a compiled SpMV program: scale segments, reduce partials."""
    x = np.asarray(x, dtype=np.float64)
    y = np.zeros(program.n)
    seg_ptr = program.seg_ptr
    for s in range(program.n_segments):
        lo, hi = seg_ptr[s], seg_ptr[s + 1]
        np.add.at(
            y, program.rows[lo:hi],
            program.values[lo:hi] * x[program.seg_col[s]],
        )
    return y


def functional_sptrsv(program: KernelProgram, b: np.ndarray) -> np.ndarray:
    """Execute a compiled SpTRSV program in dependence order.

    Rows are solved as their pending contribution counters drain,
    exactly as the hardware would, but eagerly (no timing).
    """
    b = np.asarray(b, dtype=np.float64)
    n = program.n
    acc = np.zeros(n)
    x = np.zeros(n)
    # Pending off-diagonal contributions per row, over all tiles.
    if len(program.local_counts):
        pending = program.local_counts.sum(axis=0)
    else:
        pending = np.zeros(n, dtype=np.int64)
    ready = [i for i in range(n) if pending[i] == 0]
    # Per-column global segments (merged over tiles, segment order).
    columns = {}
    seg_ptr = program.seg_ptr
    for s in range(program.n_segments):
        lo, hi = seg_ptr[s], seg_ptr[s + 1]
        columns.setdefault(int(program.seg_col[s]), []).append(
            (program.rows[lo:hi], program.values[lo:hi])
        )
    solved = 0
    while ready:
        i = ready.pop()
        x[i] = (b[i] - acc[i]) * program.inv_diag[i]
        solved += 1
        for rows, values in columns.get(i, ()):
            for row, value in zip(rows, values):
                acc[row] += value * x[i]
                pending[row] -= 1
                if pending[row] == 0:
                    ready.append(int(row))
    if solved != n:
        raise SimulationError(
            f"functional SpTRSV deadlock: {solved}/{n} rows solved"
        )
    return x

"""Parallel sweep execution across processes.

Experiment sweeps are embarrassingly parallel across their points: each
``(matrix, mapper, pe, scale, preset, config)`` combination is an
independent simulation.  :func:`simulate_many` fans a list of
:class:`SimPoint` out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while staying a drop-in replacement for a serial loop of
:meth:`ExperimentSession.simulate` calls:

* **Cache short-circuit** — every point is looked up in the shared
  on-disk artifact cache *before* any worker is spawned; a fully-cached
  sweep never pays process start-up.
* **In-flight deduplication** — points resolving to the same cache key
  are computed once and fanned back to every requesting index.
* **Shared artifact cache** — workers inherit ``REPRO_CACHE_*`` from
  the environment, so their results land in the same store the parent
  (and the next run) reads.
* **Graceful degradation** — a crashed worker, a broken pool, or an
  unpicklable result demotes only the affected points to an in-process
  serial computation; ``simulate_many`` never fails a sweep because of
  parallel machinery.

Results are returned in point order and are identical to what a serial
``jobs=1`` run produces (simulation is deterministic; see
``tests/test_parallel.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import repro.obs as obs
from repro.cache import MISS, PICKLE
from repro.config import ENV_JOBS, AzulConfig
from repro.sim.pe import PEModel

__all__ = ["SimPoint", "simulate_many", "simulate_keyed",
           "simulate_placements", "default_jobs", "ENV_JOBS"]

#: Sentinel marking a worker failure (distinct from any result).
_FAILED = object()


@dataclass(frozen=True)
class SimPoint:
    """One sweep point for :func:`simulate_many`.

    ``scale``/``preset``/``config`` default to the owning session's
    values when ``None``.  ``pe`` accepts either a registered model
    name or a :class:`~repro.sim.pe.PEModel` instance (ablations sweep
    synthetic PEs).
    """

    name: str
    mapper: str = "azul"
    pe: Union[str, PEModel] = "azul"
    scale: Optional[int] = None
    preset: Optional[str] = None
    check: bool = True
    config: Optional[AzulConfig] = None
    #: Record per-op issue traces; ``None`` follows the parent's
    #: :func:`repro.obs.tracing_enabled` (workers never inherit obs
    #: enablement, so the resolved flag travels in the spec).
    trace: Optional[bool] = None


def default_jobs() -> int:
    """Worker count when unspecified: ``REPRO_JOBS`` or a capped cpu count."""
    env = os.environ.get(ENV_JOBS, "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(8, os.cpu_count() or 1))


def _coerce(point) -> SimPoint:
    if isinstance(point, SimPoint):
        return point
    if isinstance(point, str):
        return SimPoint(name=point)
    if isinstance(point, dict):
        return SimPoint(**point)
    raise TypeError(
        f"sweep point must be a SimPoint, matrix name, or dict; "
        f"got {type(point).__name__}"
    )


def _resolve(session, point: SimPoint) -> dict:
    """Concretize a point against its session (pure data, picklable)."""
    return {
        "name": point.name,
        "mapper": point.mapper,
        "pe": point.pe,
        "scale": session.scale if point.scale is None else int(point.scale),
        "preset": session.preset if point.preset is None else point.preset,
        "check": bool(point.check),
        "config": session.config if point.config is None else point.config,
        "use_cache": session.use_cache,
        "trace": (obs.tracing_enabled() if point.trace is None
                  else bool(point.trace)),
    }


def _compute_in_worker(spec: dict):
    """Top-level worker entry point (must be picklable by reference).

    Builds a fresh session in the worker process; the artifact cache is
    shared with the parent through the inherited ``REPRO_CACHE_*``
    environment, so the computed result is persisted for everyone.
    """
    from repro.experiments.common import ExperimentSession

    session = ExperimentSession(
        spec["config"], scale=spec["scale"], preset=spec["preset"],
        use_cache=spec["use_cache"],
    )
    return session.simulate(
        spec["name"], spec["mapper"], spec["pe"], check=spec["check"],
        trace=spec["trace"],
    )


def _compute_serial(session, spec: dict, use_cache: bool):
    """In-process computation (serial path and worker-failure fallback)."""
    from repro.experiments.common import ExperimentSession

    if spec["config"] == session.config:
        sub = session
    else:
        sub = ExperimentSession(
            spec["config"], scale=session.scale, preset=session.preset,
            cache=session.cache, use_cache=session.use_cache,
        )
    return sub.simulate(
        spec["name"], spec["mapper"], spec["pe"],
        scale=spec["scale"], preset=spec["preset"],
        check=spec["check"], use_cache=use_cache, trace=spec["trace"],
    )


def _run_pool(pending: Sequence[tuple], jobs: int, info: dict,
              worker=_compute_in_worker) -> dict:
    """Fan unique cache misses out over a process pool.

    Returns ``{key: result-or-_FAILED}``; pool-level failures leave
    keys absent, which the caller treats the same as ``_FAILED``.
    """
    computed: dict = {}
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending))
        ) as pool:
            futures = [
                (key, pool.submit(worker, spec))
                for key, _, spec in pending
            ]
            for key, future in futures:
                try:
                    computed[key] = future.result()
                    info["computed_parallel"] += 1
                except Exception:
                    # Worker crash, unpicklable payload, broken pool:
                    # demote this point to the serial fallback.
                    info["worker_failures"] += 1
                    computed[key] = _FAILED
    except Exception:
        # Pool construction / teardown failure: everything not yet
        # computed falls back to serial.
        info["worker_failures"] += 1
    return computed


def simulate_many(session, points, jobs: Optional[int] = None, *,
                  use_cache: Optional[bool] = None,
                  stats: Optional[dict] = None) -> List:
    """Simulate many sweep points, fanned out across processes.

    Parameters
    ----------
    session:
        The owning :class:`~repro.experiments.common.ExperimentSession`.
    points:
        Iterable of :class:`SimPoint` (or matrix-name strings / kwargs
        dicts coerced to one).
    jobs:
        Worker processes; ``None`` consults ``REPRO_JOBS`` then a
        capped cpu count, ``1`` forces the serial path.
    use_cache:
        Override the session's cache policy for this sweep.
    stats:
        Optional dict, filled with sweep observability counters
        (``points``, ``unique``, ``cache_hits``, ``computed_parallel``,
        ``computed_serial``, ``worker_failures``, ``deduplicated``).

    Returns
    -------
    list
        Simulation results in point order — element ``i`` is exactly
        what ``session.simulate(**points[i])`` returns.
    """
    from repro.experiments.common import SIMULATION_NAMESPACE

    points = [_coerce(p) for p in points]
    use_cache = session.use_cache if use_cache is None else bool(use_cache)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    specs = [_resolve(session, p) for p in points]
    keys = [
        session.simulation_key(
            spec["name"], spec["mapper"], spec["pe"],
            scale=spec["scale"], preset=spec["preset"],
            check=spec["check"], config=spec["config"],
            trace=spec["trace"],
        )
        for spec in specs
    ]
    with obs.span("sweep.simulate_many", points=len(points),
                  jobs=jobs) as sweep_span:
        # Deduplicate in-flight keys: one computation per unique key.
        by_key: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            by_key.setdefault(key, []).append(index)

        results: List = [None] * len(points)
        info = {
            "points": len(points),
            "unique": len(by_key),
            "deduplicated": len(points) - len(by_key),
            "cache_hits": 0,
            "computed_parallel": 0,
            "computed_serial": 0,
            "worker_failures": 0,
        }

        # Cache short-circuit before any worker spawns.
        pending = []
        for key, indices in by_key.items():
            if use_cache:
                cached = session.cache.get(SIMULATION_NAMESPACE, key, PICKLE)
                if cached is not MISS:
                    info["cache_hits"] += 1
                    spec = specs[indices[0]]
                    if spec["trace"]:
                        session._bridge_trace(
                            key, f"{spec['name']}/{spec['mapper']}", cached,
                        )
                    for index in indices:
                        results[index] = cached
                    continue
            pending.append((key, indices, specs[indices[0]]))

        if pending:
            computed = (
                _run_pool(pending, jobs, info)
                if jobs > 1 and len(pending) > 1
                else {}
            )
            for key, indices, spec in pending:
                value = computed.get(key, _FAILED)
                if value is _FAILED:
                    value = _compute_serial(session, spec, use_cache)
                    info["computed_serial"] += 1
                elif spec["trace"]:
                    # Workers don't inherit obs enablement; issue logs
                    # travel back in the result and the parent bridges.
                    session._bridge_trace(
                        key, f"{spec['name']}/{spec['mapper']}", value,
                    )
                for index in indices:
                    results[index] = value

        sweep_span.set(**info)

    for counter_name, value in info.items():
        obs.counter(f"sweep.{counter_name}", value)

    if stats is not None:
        stats.update(info)
    return results


def simulate_keyed(session, points, jobs: Optional[int] = None, *,
                   use_cache: Optional[bool] = None,
                   stats: Optional[dict] = None) -> Dict[str, object]:
    """Simulate a ``{key: SimPoint}`` mapping; results come back keyed.

    The keyed face of :func:`simulate_many` used by the declarative
    experiment specs (:mod:`repro.experiments.spec`): point keys are
    experiment-local labels, so reducers look results up by name
    instead of fragile positional arithmetic (``sims[2 * index]``).
    Duplicate *values* under different keys still deduplicate to one
    computation, and semantics (cache short-circuit, worker fan-out,
    serial fallback) are exactly :func:`simulate_many`'s.
    """
    keys = list(points.keys())
    results = simulate_many(
        session, [points[key] for key in keys], jobs,
        use_cache=use_cache, stats=stats,
    )
    return dict(zip(keys, results))


# ----------------------------------------------------------------------
# Custom-placement sweeps (partitioner / seed / multicast ablations)
# ----------------------------------------------------------------------
def _simulate_placement_in_worker(spec: dict):
    """Worker entry point for :func:`simulate_placements`.

    Program compilation goes through the shared ``programs`` cache
    namespace: multicast/PE ablation points over one placement reuse
    the compiled kernels of any prior point that agreed on everything
    program construction reads.
    """
    from repro.core import Placement
    from repro.experiments.common import (
        ExperimentSession,
        compile_pcg_program,
    )
    from repro.sim import AzulMachine, pe_model_by_name
    from repro.sim.machine import verify_iteration

    session = ExperimentSession(
        spec["config"], scale=spec["scale"], use_cache=spec["use_cache"],
    )
    prepared = session.prepare(spec["name"])
    placement = Placement(
        n_tiles=spec["n_tiles"],
        a_tile=spec["a_tile"],
        l_tile=spec["l_tile"],
        vec_tile=spec["vec_tile"],
        mapper=spec["mapper"],
    )
    pe = spec["pe"]
    model = pe if isinstance(pe, PEModel) else pe_model_by_name(pe)
    machine = AzulMachine(spec["config"], model)
    program = compile_pcg_program(
        machine, prepared.matrix, prepared.lower, placement,
        multicast=spec["multicast"], cache=session.cache,
        use_cache=spec["use_cache"], label=spec["name"],
    )
    result = machine.simulate_iteration(
        program, p=prepared.b, r=prepared.b,
        record_issue_trace=spec["trace"],
    )
    if spec["check"]:
        verify_iteration(result, prepared.matrix, prepared.lower,
                         prepared.b)
    return result


def simulate_placements(session, name: Optional[str], placements: Sequence,
                        *, pe: Union[str, PEModel] = "azul",
                        check: bool = False, multicast: str = "tree",
                        scale: Optional[int] = None,
                        jobs: Optional[int] = None,
                        use_cache: Optional[bool] = None,
                        stats: Optional[dict] = None) -> List:
    """Simulate explicit placements (usually one matrix), in parallel.

    The ablation studies (partitioner presets, seeds, multicast modes)
    sweep *placements* rather than registry names, so the points are
    keyed on the placement content itself (tile-assignment array
    digests) — two identical placements share one cache entry and one
    computation, whatever produced them.  Semantics match
    :func:`simulate_many`: point-order results, cache short-circuit,
    in-flight dedup, graceful serial fallback.

    Each entry of ``placements`` is either a ``Placement`` (taking the
    call-level ``name``/``pe``/``check``/``multicast`` defaults) or a
    dict ``{"placement": ..., "name": ..., "multicast": ...,
    "check": ..., "pe": ...}`` overriding them per point — the latter
    lets one call fan out a mixed sweep (e.g. tree vs unicast per
    matrix in ``abl_trees``).
    """
    from repro.experiments.common import (
        SIMULATION_NAMESPACE,
        SIMULATION_SCHEMA,
        _pe_key_part,
    )

    use_cache = session.use_cache if use_cache is None else bool(use_cache)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    scale = session.scale if scale is None else int(scale)
    config = session.config
    trace = obs.tracing_enabled()

    specs = []
    keys = []
    for entry in placements:
        if isinstance(entry, dict):
            placement = entry["placement"]
            point_name = entry.get("name", name)
            point_pe = entry.get("pe", pe)
            point_check = bool(entry.get("check", check))
            point_multicast = entry.get("multicast", multicast)
        else:
            placement = entry
            point_name = name
            point_pe = pe
            point_check = bool(check)
            point_multicast = multicast
        if point_name is None:
            raise ValueError(
                "simulate_placements: no matrix name for a point — pass "
                "a call-level name or a per-entry {'name': ...}"
            )
        specs.append({
            "name": point_name,
            "scale": scale,
            "pe": point_pe,
            "check": point_check,
            "multicast": point_multicast,
            "config": config,
            "use_cache": use_cache,
            "trace": trace,
            "n_tiles": placement.n_tiles,
            "a_tile": placement.a_tile,
            "l_tile": placement.l_tile,
            "vec_tile": placement.vec_tile,
            "mapper": placement.mapper,
        })
        keys.append(session.cache.key(
            "simulate_placement", point_name, scale, _pe_key_part(point_pe),
            point_check, point_multicast, trace, config.cache_key(),
            placement.a_tile, placement.l_tile, placement.vec_tile,
            SIMULATION_SCHEMA,
        ))

    by_key: Dict[str, List[int]] = {}
    for index, key in enumerate(keys):
        by_key.setdefault(key, []).append(index)

    results: List = [None] * len(specs)
    info = {
        "points": len(specs),
        "unique": len(by_key),
        "deduplicated": len(specs) - len(by_key),
        "cache_hits": 0,
        "computed_parallel": 0,
        "computed_serial": 0,
        "worker_failures": 0,
    }

    from repro.cache import PICKLE as _PICKLE  # local alias for clarity

    with obs.span("sweep.simulate_placements", points=len(specs),
                  jobs=jobs) as sweep_span:
        pending = []
        for key, indices in by_key.items():
            if use_cache:
                cached = session.cache.get(SIMULATION_NAMESPACE, key, _PICKLE)
                if cached is not MISS:
                    info["cache_hits"] += 1
                    if trace:
                        spec = specs[indices[0]]
                        session._bridge_trace(
                            key, f"{spec['name']}/{spec['mapper']}", cached,
                        )
                    for index in indices:
                        results[index] = cached
                    continue
            pending.append((key, indices, specs[indices[0]]))

        if pending:
            computed = (
                _run_pool(pending, jobs, info,
                          worker=_simulate_placement_in_worker)
                if jobs > 1 and len(pending) > 1
                else {}
            )
            for key, indices, spec in pending:
                value = computed.get(key, _FAILED)
                if value is _FAILED:
                    value = _simulate_placement_in_worker(spec)
                    info["computed_serial"] += 1
                if use_cache:
                    # Placement-keyed results are cached by the parent (the
                    # worker has no session-level key for them).
                    session.cache.put(SIMULATION_NAMESPACE, key, value,
                                      _PICKLE)
                if trace:
                    session._bridge_trace(
                        key, f"{spec['name']}/{spec['mapper']}", value,
                    )
                for index in indices:
                    results[index] = value

        sweep_span.set(**info)

    for counter_name, value in info.items():
        obs.counter(f"sweep.{counter_name}", value)

    if stats is not None:
        stats.update(info)
    return results

"""Exception hierarchy for the Azul reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MatrixFormatError(ReproError):
    """A sparse matrix is malformed or in the wrong format for an operation."""


class NotTriangularError(MatrixFormatError):
    """A triangular solve was requested on a non-triangular matrix."""


class SingularMatrixError(ReproError):
    """A solve encountered a zero (or numerically-zero) pivot."""


class NotSymmetricError(MatrixFormatError):
    """An operation requiring a symmetric matrix received an asymmetric one."""


class PreconditionerError(ReproError):
    """Preconditioner construction failed (e.g. IC(0) breakdown)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message, result=None):
        super().__init__(message)
        #: The partial :class:`~repro.solvers.base.SolveResult`, if available.
        self.result = result


class PartitionError(ReproError):
    """Hypergraph partitioning failed or produced an invalid partition."""


class MappingError(ReproError):
    """A data mapping is invalid (e.g. capacity exceeded, unmapped operand)."""


class SimulationError(ReproError):
    """The hardware simulator reached an inconsistent state (e.g. deadlock)."""


class CapacityError(MappingError):
    """Mapped data does not fit in the per-tile SRAM budget."""

"""Artifact serializers: value <-> bytes codecs for the cache.

The cache stores opaque byte payloads and checksums them; serializers
are the only components that understand the payload format.  Each
serializer has a stable ``name`` (recorded in the entry's metadata so a
payload is never deserialized with the wrong codec) and a filename
``suffix``.

Two codecs cover the repository's artifacts:

* :class:`NpzSerializer` — mappings of numpy arrays / scalars / strings
  (placements).  Loads with ``allow_pickle=False`` so a corrupted or
  adversarial payload cannot execute code.
* :class:`PickleSerializer` — arbitrary picklable Python objects
  (simulation results).  Only used for trusted, locally produced
  artifacts; the checksum layer rejects any payload that was not
  written intact by this harness.
"""

from __future__ import annotations

import io
import pickle

import numpy as np


class Serializer:
    """Interface: ``dumps(value) -> bytes`` / ``loads(raw) -> value``."""

    #: Stable identifier recorded in entry metadata.
    name = "abstract"
    #: Payload filename suffix.
    suffix = ".bin"

    def dumps(self, value) -> bytes:
        raise NotImplementedError

    def loads(self, raw: bytes):
        raise NotImplementedError


class NpzSerializer(Serializer):
    """Dict-of-arrays codec over compressed ``.npz``."""

    name = "npz"
    suffix = ".npz"

    def dumps(self, value) -> bytes:
        if not isinstance(value, dict):
            raise TypeError("NpzSerializer stores dicts of arrays")
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **value)
        return buffer.getvalue()

    def loads(self, raw: bytes):
        with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
            return {key: archive[key] for key in archive.files}


class PickleSerializer(Serializer):
    """Arbitrary-object codec over pickle (trusted artifacts only)."""

    name = "pickle"
    suffix = ".pkl"

    def dumps(self, value) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def loads(self, raw: bytes):
        return pickle.loads(raw)


#: Shared codec instances (serializers are stateless).
NPZ = NpzSerializer()
PICKLE = PickleSerializer()

_BY_NAME = {s.name: s for s in (NPZ, PICKLE)}


def serializer_by_name(name: str) -> Serializer:
    """Look up a codec by its metadata name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown serializer {name!r}; choices: {sorted(_BY_NAME)}"
        ) from None

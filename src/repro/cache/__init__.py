"""``repro.cache`` — resilient artifact cache for expensive pipeline
products (placements, simulation results).

Quickstart::

    from repro.cache import ArtifactCache, NPZ, MISS

    cache = ArtifactCache.from_env()          # honours REPRO_CACHE_*
    key = cache.key("placement", "tmt_sym", 1, "azul", 64, "speed", "v2")
    value = cache.get("placements", key, NPZ)
    if value is MISS:
        value = compute()                     # expensive
        cache.put("placements", key, value, NPZ)

See :mod:`repro.cache.store` for the resilience guarantees (atomic
writes, checksums, quarantine-on-corruption, LRU eviction, stats).
"""

from repro.cache.keys import (
    canonical_encode,
    content_checksum,
    stable_digest,
)
from repro.cache.serializers import (
    NPZ,
    PICKLE,
    NpzSerializer,
    PickleSerializer,
    Serializer,
    serializer_by_name,
)
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    ENV_CACHE_DIR,
    ENV_DISABLE,
    ENV_MAX_BYTES,
    MISS,
    SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    EntryReport,
    default_cache_root,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "EntryReport",
    "MISS",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ENV_CACHE_DIR",
    "ENV_MAX_BYTES",
    "ENV_DISABLE",
    "default_cache_root",
    "stable_digest",
    "canonical_encode",
    "content_checksum",
    "Serializer",
    "NpzSerializer",
    "PickleSerializer",
    "NPZ",
    "PICKLE",
    "serializer_by_name",
]

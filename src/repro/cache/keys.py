"""Stable, content-addressed cache keys.

A cache key must be a pure function of the *logical identity* of an
artifact: two processes (or two runs months apart) computing the same
artifact must derive the same key, and any change to an input that
affects the artifact must change the key.  Python's built-in ``hash``
and ``repr`` of arbitrary objects are unsuitable (salted hashes, memory
addresses), so keys are derived from an explicit canonical encoding of
a small vocabulary of value types.

Objects may opt in by exposing a ``cache_key() -> str`` method
(:meth:`repro.config.AzulConfig.cache_key` does); anything else that is
not canonically encodable raises :class:`TypeError` so unstable keys
can never silently enter the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

#: Separator between encoded parts; chosen so it cannot appear inside
#: the encoding of a primitive (it is escaped from strings).
_SEP = "\x1f"

#: Default hex-digest length.  96 bits of sha256 — collisions are
#: negligible at any realistic cache size.
DEFAULT_KEY_LENGTH = 24


def canonical_encode(part) -> str:
    """Encode one value deterministically, tagged with its type."""
    if part is None:
        return "N"
    if isinstance(part, bool):  # before int: bool is an int subclass
        return f"b:{int(part)}"
    if isinstance(part, int):
        return f"i:{part}"
    if isinstance(part, float):
        return f"f:{part!r}"
    if isinstance(part, str):
        return "s:" + part.replace("\\", "\\\\").replace(_SEP, "\\x1f")
    if isinstance(part, bytes):
        return "y:" + part.hex()
    if isinstance(part, (list, tuple)):
        inner = ",".join(canonical_encode(p) for p in part)
        return f"l:[{inner}]"
    if isinstance(part, (set, frozenset)):
        inner = ",".join(sorted(canonical_encode(p) for p in part))
        return f"e:[{inner}]"
    if isinstance(part, dict):
        items = sorted(
            (canonical_encode(k), canonical_encode(v))
            for k, v in part.items()
        )
        inner = ",".join(f"{k}={v}" for k, v in items)
        return f"d:{{{inner}}}"
    if isinstance(part, np.generic):  # numpy scalar -> python scalar
        return canonical_encode(part.item())
    if isinstance(part, np.ndarray):
        body = np.ascontiguousarray(part)
        digest = hashlib.sha256(body.tobytes()).hexdigest()
        return f"a:{part.dtype.str}:{part.shape}:{digest}"
    cache_key = getattr(part, "cache_key", None)
    if callable(cache_key):
        return f"k:{cache_key()}"
    if dataclasses.is_dataclass(part) and not isinstance(part, type):
        return "c:" + type(part).__name__ + canonical_encode(
            dataclasses.asdict(part)
        )
    raise TypeError(
        f"cannot derive a stable cache key from {type(part).__name__!r}; "
        "give the object a cache_key() method or pass primitives"
    )


def stable_digest(*parts, length: int = DEFAULT_KEY_LENGTH) -> str:
    """Hex digest of the canonical encoding of ``parts``.

    >>> stable_digest("placement", "tmt_sym", 1) == \\
    ...     stable_digest("placement", "tmt_sym", 1)
    True
    """
    canonical = _SEP.join(canonical_encode(p) for p in parts)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:length]


def content_checksum(raw: bytes) -> str:
    """Checksum used to detect on-disk payload corruption."""
    return "sha256:" + hashlib.sha256(raw).hexdigest()

"""Resilient on-disk + in-memory artifact cache.

Azul's mappings are expensive (paper Sec. VI-D) and are amortized
across runs; this module is the durability layer that makes that
amortization safe at sweep scale:

* **Content-addressed, versioned entries.**  Keys are stable digests of
  the inputs (:mod:`repro.cache.keys`); every entry carries a metadata
  sidecar recording a sha256 checksum, payload size, codec name, and
  schema version.
* **Atomic writes.**  Payload and metadata are written to temp files in
  the cache directory and published with :func:`os.replace`; readers
  never observe a half-written entry, and a crash mid-write leaves only
  a ``.tmp-*`` file that is swept opportunistically.
* **Quarantine, never crash.**  Any load failure — truncated payload,
  garbage bytes, checksum mismatch, missing/invalid metadata, codec
  error — moves the entry into ``quarantine/`` and reports a miss so
  the caller transparently recomputes.  A corrupted cache can cost
  time, never correctness or an aborted experiment.
* **Two tiers.**  A per-process LRU of deserialized objects (identity
  preserving: repeated hits return the *same* object) in front of the
  shared on-disk tier.
* **Size-capped LRU eviction.**  The disk tier is bounded
  (``REPRO_CACHE_MAX_BYTES``); least-recently-used entries are evicted
  after each write.  Hits refresh entry mtimes, so recency survives
  process restarts.
* **Observability.**  Hit/miss/write/evict/corrupt counters, persisted
  cumulatively to ``stats.json`` so ``repro-azul cache stats`` can
  report across processes.

Environment knobs
-----------------
``REPRO_CACHE_DIR``
    Cache root (default: the repository-level ``.cache/``).
``REPRO_CACHE_MAX_BYTES``
    Disk-tier budget in bytes (default 512 MiB).
``REPRO_CACHE_DISABLE``
    Any non-empty value other than ``0``/``false`` disables both tiers.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from pathlib import Path

import repro.obs as obs
from repro.cache.keys import content_checksum, stable_digest
from repro.cache.serializers import Serializer

#: Schema version of the on-disk entry layout.  Bump on incompatible
#: changes; entries with a different schema are treated as misses.
SCHEMA_VERSION = 2

#: Sentinel returned by :meth:`ArtifactCache.get` on a miss, so that
#: ``None`` remains a cacheable value.
MISS = object()

META_SUFFIX = ".meta.json"
TMP_PREFIX = ".tmp-"
QUARANTINE_DIRNAME = "quarantine"
STATS_FILENAME = "stats.json"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_DISABLE = "REPRO_CACHE_DISABLE"

DEFAULT_MAX_BYTES = 512 * 1024 * 1024
DEFAULT_MEMORY_ENTRIES = 256

#: Leftover temp files older than this are swept during writes.
TMP_SWEEP_AGE_SECONDS = 3600.0

#: Counter flush cadence for the persisted stats file (corruption and
#: eviction events flush immediately regardless).
_FLUSH_EVERY = 32


def default_cache_root() -> Path:
    """Repository-level ``.cache/`` (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / ".cache"


def _env_truthy(value) -> bool:
    return bool(value) and str(value).strip().lower() not in ("0", "false", "")


@dataclass
class CacheStats:
    """Counters of one :class:`ArtifactCache` (or a merged view)."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corruptions: int = 0
    quarantined: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.hits_memory + self.hits_disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (used to fold persisted + live counters)."""
        return CacheStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        known = {f.name for f in fields(cls)}
        return cls(**{
            k: int(v) for k, v in dict(data or {}).items() if k in known
        })


@dataclass(frozen=True)
class EntryReport:
    """One entry's state as seen by :meth:`ArtifactCache.verify`."""

    namespace: str
    key: str
    status: str  # "ok" | "corrupt" | "orphan"
    size: int = 0
    detail: str = ""


_DEFAULT_CACHES: dict = {}
_DEFAULT_LOCK = threading.Lock()


class ArtifactCache:
    """Two-tier (memory + disk) resilient artifact store.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.
    max_bytes:
        Disk-tier budget; LRU entries beyond it are evicted.
    memory_entries:
        Per-process object-tier capacity (entry count).
    enabled:
        ``False`` turns every lookup into a miss and every write into a
        no-op (the ``REPRO_CACHE_DISABLE`` escape hatch).
    persist_stats:
        Accumulate counters into ``<root>/stats.json`` so observability
        spans processes.
    """

    def __init__(self, root=None, *, max_bytes: int = DEFAULT_MAX_BYTES,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 enabled: bool = True, persist_stats: bool = True):
        self.root = Path(root) if root is not None else default_cache_root()
        self.max_bytes = int(max_bytes)
        self.memory_entries = int(memory_entries)
        self.enabled = bool(enabled)
        self.persist_stats = bool(persist_stats)
        self.stats = CacheStats()
        self._memory: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self._unflushed = CacheStats()
        self._unflushed_events = 0
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, root=None, **kwargs) -> "ArtifactCache":
        """Build a cache honouring the ``REPRO_CACHE_*`` environment."""
        if root is None:
            override = os.environ.get(ENV_CACHE_DIR)
            root = Path(override) if override else default_cache_root()
        if "max_bytes" not in kwargs:
            raw = os.environ.get(ENV_MAX_BYTES)
            kwargs["max_bytes"] = (
                int(raw) if raw else DEFAULT_MAX_BYTES
            )
        if "enabled" not in kwargs:
            kwargs["enabled"] = not _env_truthy(os.environ.get(ENV_DISABLE))
        return cls(root, **kwargs)

    @classmethod
    def default(cls) -> "ArtifactCache":
        """Process-wide shared cache for the current environment.

        Keyed by the ``REPRO_CACHE_*`` fingerprint, so monkeypatching
        the environment (tests do) transparently yields a fresh
        instance while normal runs share one memory tier.
        """
        fingerprint = (
            os.environ.get(ENV_CACHE_DIR),
            os.environ.get(ENV_MAX_BYTES),
            os.environ.get(ENV_DISABLE),
        )
        with _DEFAULT_LOCK:
            cache = _DEFAULT_CACHES.get(fingerprint)
            if cache is None:
                cache = cls.from_env()
                _DEFAULT_CACHES[fingerprint] = cache
            return cache

    @staticmethod
    def key(*parts) -> str:
        """Stable content-addressed key for ``parts``."""
        return stable_digest(*parts)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _namespace_dir(self, namespace: str) -> Path:
        if not namespace or "/" in namespace or namespace.startswith("."):
            raise ValueError(f"invalid cache namespace {namespace!r}")
        return self.root / namespace

    def _payload_path(self, namespace, key, serializer: Serializer) -> Path:
        return self._namespace_dir(namespace) / f"{key}{serializer.suffix}"

    @staticmethod
    def _meta_path(payload: Path) -> Path:
        return payload.with_name(payload.name + META_SUFFIX)

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str, serializer: Serializer):
        """Fetch an entry; returns :data:`MISS` when absent/corrupt."""
        if not self.enabled:
            return MISS
        with self._lock:
            mem_key = (namespace, key)
            if mem_key in self._memory:
                self._memory.move_to_end(mem_key)
                self._count("hits_memory")
                return self._memory[mem_key]
            value = self._disk_get(namespace, key, serializer)
            if value is MISS:
                self._count("misses")
                return MISS
            self._memory_put(mem_key, value)
            self._count("hits_disk")
            return value

    def _disk_get(self, namespace: str, key: str, serializer: Serializer):
        payload = self._payload_path(namespace, key, serializer)
        if not payload.exists():
            return MISS
        meta_path = self._meta_path(payload)
        try:
            raw = payload.read_bytes()
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"schema {meta.get('schema')!r} != {SCHEMA_VERSION}"
                )
            if meta.get("serializer") != serializer.name:
                raise ValueError(
                    f"serializer {meta.get('serializer')!r} != "
                    f"{serializer.name!r}"
                )
            if meta.get("size") != len(raw):
                raise ValueError(
                    f"size {len(raw)} != recorded {meta.get('size')!r}"
                )
            if meta.get("checksum") != content_checksum(raw):
                raise ValueError("checksum mismatch")
            value = serializer.loads(raw)
        except Exception as exc:  # noqa: BLE001 — resilience by design
            self._quarantine(payload, meta_path, repr(exc))
            return MISS
        self._touch(payload)
        return value

    def put(self, namespace: str, key: str, value, serializer: Serializer):
        """Store ``value`` atomically; returns the value for chaining."""
        if not self.enabled:
            return value
        raw = serializer.dumps(value)
        with self._lock:
            directory = self._namespace_dir(namespace)
            directory.mkdir(parents=True, exist_ok=True)
            payload = self._payload_path(namespace, key, serializer)
            meta = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "namespace": namespace,
                "serializer": serializer.name,
                "size": len(raw),
                "checksum": content_checksum(raw),
                "created": time.time(),
            }
            self._atomic_write(payload, raw)
            self._atomic_write(
                self._meta_path(payload),
                json.dumps(meta, sort_keys=True).encode("utf-8"),
            )
            self._memory_put((namespace, key), value)
            self._count("writes")
            self.sweep_tmp(TMP_SWEEP_AGE_SECONDS)
            self._evict_over_budget(protect=payload)
        return value

    def contains(self, namespace: str, key: str,
                 serializer: Serializer) -> bool:
        """Cheap presence probe: would :meth:`get` plausibly hit?

        Checks the memory tier and on-disk payload *existence* only —
        no deserialization, no checksum verification, and no counter
        updates, so executors can *predict* cache hits (``--plan``
        dry-runs) without paying for or perturbing real lookups.  A
        ``True`` may still turn into a miss later if the entry is
        corrupt; a ``False`` is always a real miss.
        """
        if not self.enabled:
            return False
        with self._lock:
            if (namespace, key) in self._memory:
                return True
        return self._payload_path(namespace, key, serializer).exists()

    def get_or_compute(self, namespace: str, key: str, compute,
                       serializer: Serializer):
        """Fetch, or compute + store on a miss.  Never raises for cache
        reasons: corruption quarantines the entry and recomputes."""
        value = self.get(namespace, key, serializer)
        if value is not MISS:
            return value
        value = compute()
        self.put(namespace, key, value, serializer)
        return value

    def _memory_put(self, mem_key, value):
        self._memory[mem_key] = value
        self._memory.move_to_end(mem_key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Atomicity / resilience internals
    # ------------------------------------------------------------------
    def _atomic_write(self, destination: Path, raw: bytes):
        """Publish bytes via tmp-file + ``os.replace`` (same dir/fs)."""
        handle = tempfile.NamedTemporaryFile(
            dir=destination.parent,
            prefix=TMP_PREFIX,
            suffix=".part",
            delete=False,
        )
        try:
            with handle:
                handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, destination)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _quarantine(self, payload: Path, meta_path: Path, reason: str):
        """Move a damaged entry aside; never raises."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        stamp = f"{int(time.time() * 1000):x}-{uuid.uuid4().hex[:6]}"
        moved = False
        for path in (payload, meta_path):
            if not path.exists():
                continue
            target = self.quarantine_dir / f"{stamp}-{path.name}"
            try:
                os.replace(path, target)
                moved = True
            except OSError:
                try:  # last resort: do not let the entry be re-read
                    path.unlink()
                except OSError:
                    pass
        self._memory.pop(self._memory_key_for(payload), None)
        self._count("corruptions", flush=True)
        if moved:
            self._count("quarantined", flush=True)

    @staticmethod
    def _memory_key_for(payload: Path):
        return (payload.parent.name, payload.stem)

    @staticmethod
    def _touch(payload: Path):
        try:
            os.utime(payload, None)
        except OSError:
            pass

    def sweep_tmp(self, max_age_seconds: float = TMP_SWEEP_AGE_SECONDS) -> int:
        """Remove stale ``.tmp-*`` droppings from interrupted writes."""
        removed = 0
        cutoff = time.time() - max_age_seconds
        if not self.root.exists():
            return 0
        for tmp in self.root.glob(f"*/{TMP_PREFIX}*"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _iter_entries(self):
        """Yield ``(payload, meta_path, bytes, mtime)`` per disk entry."""
        if not self.root.exists():
            return
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            if directory.name == QUARANTINE_DIRNAME:
                continue
            for payload in sorted(directory.iterdir()):
                name = payload.name
                if (name.startswith(TMP_PREFIX)
                        or name.endswith(META_SUFFIX)
                        or not payload.is_file()):
                    continue
                meta_path = self._meta_path(payload)
                try:
                    size = payload.stat().st_size
                    mtime = payload.stat().st_mtime
                    if meta_path.exists():
                        size += meta_path.stat().st_size
                except OSError:
                    continue
                yield payload, meta_path, size, mtime

    def disk_bytes(self) -> int:
        """Total bytes of live entries (payloads + metadata)."""
        return sum(size for _, _, size, _ in self._iter_entries())

    def _evict_over_budget(self, protect: Path = None):
        entries = sorted(self._iter_entries(), key=lambda e: e[3])
        total = sum(size for _, _, size, _ in entries)
        for payload, meta_path, size, _ in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and payload == protect:
                continue  # never evict the entry just written
            for path in (payload, meta_path):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._memory.pop(self._memory_key_for(payload), None)
            total -= size
            self._count("evictions", flush=True)

    # ------------------------------------------------------------------
    # Maintenance: verify / clear / inventory
    # ------------------------------------------------------------------
    def verify(self, fix: bool = False) -> list:
        """Checksum every disk entry; optionally quarantine bad ones.

        Returns :class:`EntryReport` rows.  ``orphan`` marks a payload
        without readable metadata (e.g. a legacy pre-v2 entry);
        ``corrupt`` marks checksum/size/schema failures.
        """
        from repro.cache.serializers import serializer_by_name

        reports = []
        with self._lock:
            for payload, meta_path, size, _ in list(self._iter_entries()):
                namespace = payload.parent.name
                key = payload.stem
                status, detail = "ok", ""
                try:
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    status, detail = "orphan", "missing or unreadable metadata"
                else:
                    try:
                        raw = payload.read_bytes()
                        if meta.get("schema") != SCHEMA_VERSION:
                            raise ValueError(
                                f"schema {meta.get('schema')!r}"
                            )
                        if meta.get("size") != len(raw):
                            raise ValueError("size mismatch")
                        if meta.get("checksum") != content_checksum(raw):
                            raise ValueError("checksum mismatch")
                        serializer_by_name(
                            meta.get("serializer", "")
                        ).loads(raw)
                    except Exception as exc:  # noqa: BLE001
                        status, detail = "corrupt", repr(exc)
                reports.append(EntryReport(namespace, key, status, size,
                                           detail))
                if status != "ok" and fix:
                    self._quarantine(payload, meta_path, detail)
        return reports

    def clear(self) -> tuple:
        """Delete every entry, quarantined file, temp dropping, and the
        persisted stats.  Returns ``(files_removed, bytes_freed)``."""
        removed, freed = 0, 0
        with self._lock:
            if self.root.exists():
                targets = [
                    p for p in self.root.rglob("*")
                    if p.is_file() and p.name != STATS_FILENAME
                ]
                for path in targets:
                    try:
                        freed += path.stat().st_size
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
                for directory in sorted(
                    (p for p in self.root.rglob("*") if p.is_dir()),
                    reverse=True,
                ):
                    try:
                        directory.rmdir()
                    except OSError:
                        pass
                stats_file = self.root / STATS_FILENAME
                if stats_file.exists():
                    try:
                        freed += stats_file.stat().st_size
                        stats_file.unlink()
                        removed += 1
                    except OSError:
                        pass
            self._memory.clear()
            self._unflushed = CacheStats()
            self._unflushed_events = 0
        return removed, freed

    def inventory(self) -> dict:
        """Per-namespace ``{entries, bytes}`` plus quarantine/tmp info."""
        namespaces: dict = {}
        for payload, _, size, _ in self._iter_entries():
            bucket = namespaces.setdefault(
                payload.parent.name, {"entries": 0, "bytes": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += size
        quarantined = 0
        if self.quarantine_dir.exists():
            quarantined = sum(
                1 for p in self.quarantine_dir.iterdir() if p.is_file()
            )
        tmp_files = (
            len(list(self.root.glob(f"*/{TMP_PREFIX}*")))
            if self.root.exists() else 0
        )
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "max_bytes": self.max_bytes,
            "total_bytes": sum(b["bytes"] for b in namespaces.values()),
            "namespaces": namespaces,
            "quarantined_files": quarantined,
            "tmp_files": tmp_files,
        }

    # ------------------------------------------------------------------
    # Stats accounting / persistence
    # ------------------------------------------------------------------
    def _count(self, counter: str, flush: bool = False):
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        # Mirror into the observability registry (no-op when disabled)
        # so metrics artifacts report the same counters stats.json
        # accumulates.
        obs.counter(f"cache.{counter}")
        if not self.persist_stats:
            return
        setattr(self._unflushed, counter,
                getattr(self._unflushed, counter) + 1)
        self._unflushed_events += 1
        if not self._atexit_registered:
            atexit.register(self.flush_stats)
            self._atexit_registered = True
        if flush or self._unflushed_events >= _FLUSH_EVERY:
            self.flush_stats()

    def _stats_path(self) -> Path:
        return self.root / STATS_FILENAME

    def flush_stats(self):
        """Merge unflushed counters into ``<root>/stats.json``."""
        if not self.persist_stats:
            return
        with self._lock:
            if self._unflushed_events == 0:
                return
            delta = self._unflushed
            self._unflushed = CacheStats()
            self._unflushed_events = 0
            try:
                persisted = self.persisted_stats()
                merged = persisted.merged(delta)
                self.root.mkdir(parents=True, exist_ok=True)
                self._atomic_write(
                    self._stats_path(),
                    json.dumps(merged.as_dict(), sort_keys=True,
                               indent=2).encode("utf-8"),
                )
            except OSError:
                pass  # stats are best-effort; never fail the caller

    def persisted_stats(self) -> CacheStats:
        """Cumulative counters from ``stats.json`` (zeros if absent)."""
        try:
            data = json.loads(self._stats_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return CacheStats()
        return CacheStats.from_dict(data)

"""SpTRSV dataflow program construction (Sec. IV-A).

The forward solve ``L x = b`` runs column-driven: when ``x_j`` is
solved at its home, it is multicast down L's column ``j``; receiving
tiles FMAC it against their local column segments, and completed row
partials reduce into the solve site of the next rows.  The backward
solve with ``L^T`` is the same program built on the transposed
structure (columns of ``L^T`` are rows of ``L``), reusing L's nonzero
placement.
"""

from __future__ import annotations

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.dataflow.kernel_program import KernelProgram, build_kernel_program
from repro.errors import MatrixFormatError, SingularMatrixError
from repro.sparse.csr import CSRMatrix


def transpose_with_mapping(matrix: CSRMatrix):
    """Transpose a CSR matrix, tracking where each nonzero came from.

    Returns ``(transposed, source_index)`` where
    ``transposed.data[k] == matrix.data[source_index[k]]``; used to
    carry per-nonzero tile assignments through the transpose.
    """
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    cols = matrix.indices
    order = np.lexsort((rows, cols))
    counts = np.bincount(cols, minlength=matrix.n_cols)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    transposed = CSRMatrix(
        indptr, rows[order], matrix.data[order],
        (matrix.n_cols, matrix.n_rows),
    )
    return transposed, order


def _split_diagonal(tri: CSRMatrix, nnz_tile: np.ndarray, lower: bool):
    """Separate a triangular matrix into off-diagonal triplets + 1/diag."""
    n = tri.n_rows
    rows = np.repeat(np.arange(n), tri.row_nnz())
    cols = tri.indices
    on_diag = rows == cols
    bad = cols > rows if lower else cols < rows
    if bad.any():
        raise MatrixFormatError(
            "matrix is not triangular in the expected orientation"
        )
    diag = np.zeros(n)
    diag[rows[on_diag]] = tri.data[on_diag]
    if np.any(diag == 0.0):
        raise SingularMatrixError("triangular solve requires full diagonal")
    off = ~on_diag
    return rows[off], cols[off], tri.data[off], nnz_tile[off], 1.0 / diag


def build_sptrsv_program(lower: CSRMatrix, l_tile: np.ndarray,
                         vec_tile: np.ndarray, torus: TorusGeometry,
                         transpose: bool = False,
                         multicast: str = "tree") -> KernelProgram:
    """Compile a triangular solve under a placement.

    Parameters
    ----------
    lower:
        The lower-triangular factor ``L`` in CSR form.
    l_tile:
        Tile of each L nonzero (CSR order), diagonals pinned to homes.
    transpose:
        When true, build the backward solve ``L^T x = b``; L's nonzero
        placement is reused through the transpose.
    """
    l_tile = np.asarray(l_tile, dtype=np.int64)
    if transpose:
        upper, source = transpose_with_mapping(lower)
        rows, cols, values, tiles, inv_diag = _split_diagonal(
            upper, l_tile[source], lower=False
        )
        name = "sptrsv_upper"
    else:
        rows, cols, values, tiles, inv_diag = _split_diagonal(
            lower, l_tile, lower=True
        )
        name = "sptrsv_lower"
    return build_kernel_program(
        name=name,
        n=lower.n_rows,
        rows=rows,
        cols=cols,
        values=values,
        nnz_tile=tiles,
        vec_tile=vec_tile,
        torus=torus,
        inv_diag=inv_diag,
        dependent=True,
        multicast=multicast,
    )

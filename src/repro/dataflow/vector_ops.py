"""Analytic model of PCG's vector operations.

Dot products, AXPYs, and norms take a small fraction of Azul runtime
(Fig. 22, "Vector Ops") but are not free: dot products are all-reduces
across every tile holding vector elements, followed by a broadcast of
the scalar (the paper notes reductions are where GPUs lose time to
kernel-launch overheads, Sec. II-A).  Azul executes them with the same
reduction/multicast trees; here they are modeled analytically since
their dataflow is dense and regular.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig


def _vector_elements_per_tile(vec_tile: np.ndarray, n_tiles: int) -> int:
    """Elements held by the fullest tile (the critical tile)."""
    counts = np.bincount(vec_tile, minlength=n_tiles)
    return int(counts.max()) if len(counts) else 0


def _allreduce_tree_depth(torus) -> int:
    """Hop depth of a global reduction tree rooted at the grid center.

    Delegates to the geometry (``rows/2 + cols/2`` on a torus; larger
    on a mesh, which has no wraparound shortcuts).
    """
    return torus.reduction_depth()


def dot_allreduce_cycles(vec_tile: np.ndarray, torus,
                         config: AzulConfig) -> int:
    """Cycles of one global dot product.

    Local FMACs on the critical tile, a global reduction over the tree
    (one Add per level plus link hops), and a broadcast of the scalar
    back down the tree.  ``torus`` is anything exposing
    ``reduction_depth()`` — a raw geometry or a
    ``repro.sim.fabric.FabricModel`` (duck-typed; ``dataflow`` must not
    import the simulator).
    """
    local = _vector_elements_per_tile(vec_tile, config.num_tiles)
    depth = _allreduce_tree_depth(torus)
    reduce_cycles = depth * (config.hop_cycles + 1)  # hop + Add per level
    broadcast_cycles = depth * config.hop_cycles
    pipeline = config.sram_access_cycles + config.fmac_latency_cycles
    return local + pipeline + reduce_cycles + broadcast_cycles


def axpy_cycles(vec_tile: np.ndarray, config: AzulConfig) -> int:
    """Cycles of one AXPY: purely local FMACs, no communication."""
    local = _vector_elements_per_tile(vec_tile, config.num_tiles)
    pipeline = config.sram_access_cycles + config.fmac_latency_cycles
    return local + pipeline


@dataclass
class VectorPhaseModel:
    """Cycle and op accounting for PCG's per-iteration vector work.

    One PCG iteration performs 2 dot products, 1 norm (a dot), and 3
    AXPY-class updates (x, r, p — Listing 1 lines 6-12).
    """

    vec_tile: np.ndarray
    torus: TorusGeometry
    config: AzulConfig
    n_dots: int = 3
    n_axpys: int = 3

    def cycles(self) -> int:
        """Total vector-phase cycles of one PCG iteration."""
        dot = dot_allreduce_cycles(self.vec_tile, self.torus, self.config)
        axpy = axpy_cycles(self.vec_tile, self.config)
        return self.n_dots * dot + self.n_axpys * axpy

    def flops(self, n: int) -> int:
        """Useful FLOPs of the vector phase (2 per element per op)."""
        return 2 * n * (self.n_dots + self.n_axpys)

    def op_counts(self, n: int) -> dict:
        """Approximate op counts by kind for the cycle breakdown."""
        depth = _allreduce_tree_depth(self.torus)
        return {
            "fmac": n * (self.n_dots + self.n_axpys),
            "add": self.n_dots * depth,
            "send": self.n_dots * 2 * depth,
            "mul": 0,
        }

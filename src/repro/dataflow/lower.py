"""Lowering strategies: triplets + placement -> :class:`CompiledKernel`.

Compiling a kernel means grouping nonzeros into per-(tile, column)
segments, counting local FMACs per (tile, row), and building the
multicast/reduction forests — the map -> **compile** -> simulate
middle stage of the pipeline.  Two interchangeable strategies produce
bit-identical :class:`~repro.dataflow.ir.CompiledKernel` programs:

* :class:`ReferenceLowering` — the historical O(nnz) Python loop of
  dict/set mutations plus one tree build per column and per row.  The
  golden model; every array it packs defines the canonical form.
* :class:`VectorizedLowering` (default) — ``lexsort``/``np.unique``
  segment grouping, ``bincount`` local counters, and one batched
  forest build per kernel through
  :func:`repro.comm.multicast.build_multicast_forest` /
  :func:`repro.comm.reduction.build_reduction_forest` (which memoize
  shared trees and route paths across columns/rows).

The registry mirrors ``sim.issue.STRATEGIES`` /
``hypergraph``'s refine registry / ``solvers.KERNELS``: look
strategies up with :func:`resolve_lowering`, and set
``AZUL_DATAFLOW_REFERENCE=1`` to fall back to the reference loop
everywhere (the effective value is reported by
:func:`repro.config.overrides`).

Layer contract: ``lower`` sits directly above ``ir`` and may import
:mod:`repro.comm` and :mod:`repro.config`, never :mod:`repro.sim`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.comm.multicast import build_multicast_forest, build_multicast_tree
from repro.comm.reduction import build_reduction_forest, build_reduction_tree
from repro.config import ENV_DATAFLOW_REFERENCE, env_truthy
from repro.dataflow.ir import CompiledKernel


def _as_int64(array) -> np.ndarray:
    return np.asarray(array, dtype=np.int64)


def _initial_rows(n: int, rows: np.ndarray,
                  dependent: bool) -> np.ndarray:
    """SpTRSV rows with no off-diagonal dependences (solvable at t=0)."""
    if not dependent:
        return np.empty(0, dtype=np.int64)
    has_offdiag = np.zeros(n, dtype=bool)
    has_offdiag[np.unique(rows)] = True
    return np.nonzero(~has_offdiag)[0]


class LoweringStrategy:
    """One way of compiling triplets + placement into a program.

    Subclasses implement :meth:`lower`; all strategies must produce
    bit-identical :class:`CompiledKernel` arrays (enforced by
    ``tests/test_dataflow_equivalence.py``).
    """

    #: Registry key (mirrors ``sim.issue.IssueStrategy.name``).
    name: str = ""

    def lower(self, name: str, n: int, rows: np.ndarray,
              cols: np.ndarray, values: np.ndarray,
              nnz_tile: np.ndarray, vec_tile: np.ndarray,
              geometry, inv_diag=None, dependent: bool = False,
              multicast: str = "tree") -> CompiledKernel:
        raise NotImplementedError


class ReferenceLowering(LoweringStrategy):
    """The historical per-element loop (golden model, retained)."""

    name = "reference"

    def lower(self, name: str, n: int, rows: np.ndarray,
              cols: np.ndarray, values: np.ndarray,
              nnz_tile: np.ndarray, vec_tile: np.ndarray,
              geometry, inv_diag=None, dependent: bool = False,
              multicast: str = "tree") -> CompiledKernel:
        rows = _as_int64(rows)
        vec_tile = _as_int64(vec_tile)
        col_segments: Dict[int, Dict[int, Tuple[List[int],
                                                List[float]]]] = {}
        local: Dict[Tuple[int, int], int] = {}
        tiles_per_col: Dict[int, Set[int]] = {}
        tiles_per_row: Dict[int, Set[int]] = {}
        for k in range(len(rows)):
            tile = int(nnz_tile[k])
            i, j, v = int(rows[k]), int(cols[k]), float(values[k])
            segments = col_segments.setdefault(tile, {})
            entry = segments.setdefault(j, ([], []))
            entry[0].append(i)
            entry[1].append(v)
            local[(tile, i)] = local.get((tile, i), 0) + 1
            tiles_per_col.setdefault(j, set()).add(tile)
            tiles_per_row.setdefault(i, set()).add(tile)

        # -- pack segments in canonical (tile, col) order -------------
        seg_tile: List[int] = []
        seg_col: List[int] = []
        seg_ptr: List[int] = [0]
        flat_rows: List[int] = []
        flat_vals: List[float] = []
        for tile in sorted(col_segments):
            segments = col_segments[tile]
            for j in sorted(segments):
                row_list, val_list = segments[j]
                seg_tile.append(tile)
                seg_col.append(j)
                flat_rows.extend(row_list)
                flat_vals.extend(val_list)
                seg_ptr.append(len(flat_rows))

        # -- dense local counters -------------------------------------
        local_tiles = sorted(col_segments)
        tile_pos = {tile: p for p, tile in enumerate(local_tiles)}
        local_counts = np.zeros((len(local_tiles), n), dtype=np.int64)
        for (tile, i), count in local.items():
            local_counts[tile_pos[tile], i] = count

        # -- multicast trees, per column, via the single-tree builder -
        mcast_col: List[int] = []
        mcast_root: List[int] = []
        mcast_edge_ptr: List[int] = [0]
        mcast_parent: List[int] = []
        mcast_child: List[int] = []
        mcast_dst_ptr: List[int] = [0]
        mcast_dst: List[int] = []
        mcast_first = np.full(n, -1, dtype=np.int64)
        mcast_count = np.zeros(n, dtype=np.int64)
        for j in sorted(tiles_per_col):
            home = int(vec_tile[j])
            destinations = sorted(tiles_per_col[j] - {home})
            if not destinations:
                continue
            if multicast == "tree":
                trees = [build_multicast_tree(geometry, home, destinations)]
            else:
                trees = [
                    build_multicast_tree(geometry, home, [dst])
                    for dst in destinations
                ]
            mcast_first[j] = len(mcast_col)
            mcast_count[j] = len(trees)
            for tree in trees:
                mcast_col.append(j)
                mcast_root.append(tree.root)
                for parent, child in tree.edges:
                    mcast_parent.append(parent)
                    mcast_child.append(child)
                mcast_edge_ptr.append(len(mcast_parent))
                mcast_dst.extend(tree.destinations)
                mcast_dst_ptr.append(len(mcast_dst))

        # -- reduction trees, per row ---------------------------------
        red_row: List[int] = []
        red_edge_ptr: List[int] = [0]
        red_child: List[int] = []
        red_parent: List[int] = []
        red_index = np.full(n, -1, dtype=np.int64)
        row_remote_inputs = np.zeros(n, dtype=np.int64)
        for i in sorted(tiles_per_row):
            home = int(vec_tile[i])
            sources = sorted(tiles_per_row[i] - {home})
            if not sources:
                continue
            tree = build_reduction_tree(geometry, home, sources)
            red_index[i] = len(red_row)
            red_row.append(i)
            for child, parent in tree.edges:
                red_child.append(child)
                red_parent.append(parent)
            red_edge_ptr.append(len(red_child))
            # Children of the root deliver the merged partial streams.
            row_remote_inputs[i] = sum(
                1 for child, parent in tree.edges if parent == home
            )

        return CompiledKernel(
            name=name,
            n=n,
            vec_tile=vec_tile,
            seg_tile=_as_int64(seg_tile),
            seg_col=_as_int64(seg_col),
            seg_ptr=_as_int64(seg_ptr),
            rows=_as_int64(flat_rows),
            values=np.asarray(flat_vals, dtype=np.float64),
            mcast_col=_as_int64(mcast_col),
            mcast_root=_as_int64(mcast_root),
            mcast_edge_ptr=_as_int64(mcast_edge_ptr),
            mcast_parent=_as_int64(mcast_parent),
            mcast_child=_as_int64(mcast_child),
            mcast_dst_ptr=_as_int64(mcast_dst_ptr),
            mcast_dst=_as_int64(mcast_dst),
            mcast_first=mcast_first,
            mcast_count=mcast_count,
            red_row=_as_int64(red_row),
            red_edge_ptr=_as_int64(red_edge_ptr),
            red_child=_as_int64(red_child),
            red_parent=_as_int64(red_parent),
            red_index=red_index,
            row_remote_inputs=row_remote_inputs,
            local_tiles=_as_int64(local_tiles),
            local_counts=local_counts,
            total_fmacs=len(rows),
            inv_diag=(None if inv_diag is None
                      else np.asarray(inv_diag, dtype=np.float64)),
            dependent=dependent,
            initial_rows=_initial_rows(n, rows, dependent),
        )


class VectorizedLowering(LoweringStrategy):
    """Batched numpy lowering (default; bit-identical to reference)."""

    name = "vectorized"

    def lower(self, name: str, n: int, rows: np.ndarray,
              cols: np.ndarray, values: np.ndarray,
              nnz_tile: np.ndarray, vec_tile: np.ndarray,
              geometry, inv_diag=None, dependent: bool = False,
              multicast: str = "tree") -> CompiledKernel:
        rows = _as_int64(rows)
        cols = _as_int64(cols)
        values = np.asarray(values, dtype=np.float64)
        nnz_tile = _as_int64(nnz_tile)
        vec_tile = _as_int64(vec_tile)
        nnz = len(rows)

        # -- segments: stable sort by (tile, col), group boundaries ---
        order = np.lexsort((cols, nnz_tile))
        sorted_tile = nnz_tile[order]
        sorted_col = cols[order]
        flat_rows = rows[order]
        flat_vals = values[order]
        if nnz:
            new_group = np.empty(nnz, dtype=bool)
            new_group[0] = True
            new_group[1:] = (
                (sorted_tile[1:] != sorted_tile[:-1])
                | (sorted_col[1:] != sorted_col[:-1])
            )
            starts = np.nonzero(new_group)[0]
            seg_tile = sorted_tile[starts]
            seg_col = sorted_col[starts]
            seg_ptr = np.concatenate(
                (starts, np.array([nnz], dtype=np.int64))
            ).astype(np.int64)
        else:
            seg_tile = np.empty(0, dtype=np.int64)
            seg_col = np.empty(0, dtype=np.int64)
            seg_ptr = np.zeros(1, dtype=np.int64)

        # -- dense local counters via one bincount --------------------
        local_tiles = np.unique(nnz_tile)
        if nnz:
            tile_pos = np.searchsorted(local_tiles, nnz_tile)
            local_counts = np.bincount(
                tile_pos * n + rows, minlength=len(local_tiles) * n
            ).astype(np.int64).reshape(len(local_tiles), n)
        else:
            local_counts = np.zeros((0, n), dtype=np.int64)

        # -- remote destinations per column (from the unique segment
        #    pairs, re-grouped by column) -----------------------------
        col_order = np.lexsort((seg_tile, seg_col))
        group_col = seg_col[col_order]
        group_tile = seg_tile[col_order]
        remote = group_tile != vec_tile[group_col]
        dst_col = group_col[remote]
        dst_tile = group_tile[remote]
        unique_cols, col_counts = np.unique(dst_col, return_counts=True)
        col_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(col_counts))
        )
        mcast_first = np.full(n, -1, dtype=np.int64)
        mcast_count = np.zeros(n, dtype=np.int64)
        if multicast == "tree":
            mcast_col = unique_cols
            roots = vec_tile[unique_cols]
            dst_ptr = col_starts
            mcast_first[unique_cols] = np.arange(
                len(unique_cols), dtype=np.int64
            )
            mcast_count[unique_cols] = 1
        else:
            # One single-destination tree per receiver, in (col, dst)
            # order — matching the reference's per-destination lists.
            mcast_col = dst_col
            roots = vec_tile[dst_col]
            dst_ptr = np.arange(len(dst_col) + 1, dtype=np.int64)
            mcast_first[unique_cols] = col_starts[:-1]
            mcast_count[unique_cols] = col_counts
        forest = build_multicast_forest(geometry, roots, dst_ptr, dst_tile)

        # -- remote sources per row (unique (row, tile) pairs) --------
        pair_order = np.lexsort((nnz_tile, rows))
        pair_row = rows[pair_order]
        pair_tile = nnz_tile[pair_order]
        if nnz:
            keep = np.empty(nnz, dtype=bool)
            keep[0] = True
            keep[1:] = (
                (pair_row[1:] != pair_row[:-1])
                | (pair_tile[1:] != pair_tile[:-1])
            )
            pair_row = pair_row[keep]
            pair_tile = pair_tile[keep]
        src_remote = pair_tile != vec_tile[pair_row]
        src_row = pair_row[src_remote]
        src_tile = pair_tile[src_remote]
        red_row, row_counts = np.unique(src_row, return_counts=True)
        src_ptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(row_counts))
        )
        red_forest = build_reduction_forest(
            geometry, vec_tile[red_row], src_ptr, src_tile
        )
        red_index = np.full(n, -1, dtype=np.int64)
        red_index[red_row] = np.arange(len(red_row), dtype=np.int64)
        row_remote_inputs = np.zeros(n, dtype=np.int64)
        row_remote_inputs[red_row] = red_forest.remote_inputs

        return CompiledKernel(
            name=name,
            n=n,
            vec_tile=vec_tile,
            seg_tile=seg_tile,
            seg_col=seg_col,
            seg_ptr=seg_ptr,
            rows=flat_rows,
            values=flat_vals,
            mcast_col=_as_int64(mcast_col),
            mcast_root=_as_int64(roots),
            mcast_edge_ptr=forest.edge_ptr,
            mcast_parent=forest.parents,
            mcast_child=forest.children,
            mcast_dst_ptr=_as_int64(dst_ptr),
            mcast_dst=_as_int64(dst_tile),
            mcast_first=mcast_first,
            mcast_count=mcast_count,
            red_row=red_row,
            red_edge_ptr=red_forest.edge_ptr,
            red_child=red_forest.children,
            red_parent=red_forest.parents,
            red_index=red_index,
            row_remote_inputs=row_remote_inputs,
            local_tiles=local_tiles,
            local_counts=local_counts,
            total_fmacs=nnz,
            inv_diag=(None if inv_diag is None
                      else np.asarray(inv_diag, dtype=np.float64)),
            dependent=dependent,
            initial_rows=_initial_rows(n, rows, dependent),
        )


#: Lowering-strategy registry (mirrors ``sim.issue.STRATEGIES``).
LOWERINGS: Dict[str, type] = {
    ReferenceLowering.name: ReferenceLowering,
    VectorizedLowering.name: VectorizedLowering,
}


def _env_wants_reference() -> bool:
    return env_truthy(os.environ.get(ENV_DATAFLOW_REFERENCE))


def default_lowering_name() -> str:
    """The lowering the environment resolves to when none is named."""
    return "reference" if _env_wants_reference() else "vectorized"


def resolve_lowering(name: Optional[str] = None) -> type:
    """Map a lowering name (or the environment default) to its class."""
    if name is None:
        name = default_lowering_name()
    cls = LOWERINGS.get(name)
    if cls is None:
        known = ", ".join(sorted(LOWERINGS))
        raise ValueError(
            f"unknown lowering strategy {name!r}: expected one of {known}"
        )
    return cls

"""Array-backed compiled-kernel IR (structure-of-arrays).

A :class:`CompiledKernel` is everything the simulator needs to execute
one SpMV or SpTRSV under a given placement, stored as flat numpy
arrays instead of an object graph:

* **Column segments** — CSR-style grouping: segment ``s`` covers
  ``rows[seg_ptr[s]:seg_ptr[s+1]]`` / ``values[...]``, the local
  nonzeros of column ``seg_col[s]`` on tile ``seg_tile[s]``.  Segments
  are sorted by ``(tile, col)``; within a segment the original
  nonzero order is preserved, so the FMAC stream is bit-identical to
  the historical dict-of-dicts program.
* **Multicast forest** — all of the kernel's multicast trees
  concatenated, ordered by ``(col, per-col tree index)``: tree ``t``
  distributes column ``mcast_col[t]`` from root ``mcast_root[t]``
  along edges ``(mcast_parent[e], mcast_child[e])`` for ``e`` in
  ``mcast_edge_ptr[t]:mcast_edge_ptr[t+1]`` to destinations
  ``mcast_dst[mcast_dst_ptr[t]:mcast_dst_ptr[t+1]]``.  Edge lists and
  destination lists are sorted (the canonical form
  :func:`repro.comm.multicast.build_multicast_tree` produces).
  ``mcast_first``/``mcast_count`` give O(1) per-column lookup.
* **Reduction forest** — one tree per row with remote partials,
  ordered by row: reduction edges are ``(child, parent)`` pairs,
  sorted per tree; ``red_index[i]`` maps a row to its tree (or -1).
* **Dense counters** — ``local_counts[p, i]`` is the FMAC count tile
  ``local_tiles[p]`` must apply to its row-``i`` partial (tiles with
  no nonzeros are not materialized); ``row_remote_inputs[i]`` the
  number of tree children delivering partials into row ``i``'s home.

The historical :class:`KernelProgram` dict fields remain available as
lazily-materialized *views* (:attr:`col_segments`,
:attr:`mcast_trees`, :attr:`red_trees`) for tests and exploratory
code; the simulator and functional executors read the flat arrays
only.

Layer contract: ``ir`` sits above ``messages``/``tasks`` and may
import :mod:`repro.comm` tree types for the compat views, but nothing
from :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.multicast import MulticastTree
from repro.comm.reduction import ReductionTree


def _empty_int() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass(eq=False)
class CompiledKernel:
    """The mapped dataflow of one kernel, in flat-array form.

    Attributes
    ----------
    name:
        ``"spmv"``, ``"sptrsv_lower"`` or ``"sptrsv_upper"``.
    n:
        Vector length (matrix dimension).
    vec_tile:
        Home tile of each vector index.
    seg_tile, seg_col, seg_ptr, rows, values:
        Column segments: segment ``s`` holds the row indices
        ``rows[seg_ptr[s]:seg_ptr[s+1]]`` and coefficients
        ``values[...]`` of column ``seg_col[s]``'s nonzeros on tile
        ``seg_tile[s]`` (off-diagonal only for SpTRSV).  Sorted by
        ``(tile, col)``.
    mcast_col, mcast_root, mcast_edge_ptr, mcast_parent, mcast_child:
        Multicast forest: per-tree root and column, plus the
        concatenated sorted ``(parent, child)`` edge lists.
    mcast_dst_ptr, mcast_dst:
        Concatenated sorted destination lists per tree.
    mcast_first, mcast_count:
        Per-column tree lookup: column ``j`` owns trees
        ``mcast_first[j] : mcast_first[j] + mcast_count[j]`` (count 0
        when the column has no remote destinations).  Tree mode uses
        one merged tree per column; unicast mode one
        single-destination tree per receiver.
    red_row, red_edge_ptr, red_child, red_parent, red_index:
        Reduction forest: tree ``t`` reduces row ``red_row[t]``'s
        partials along sorted ``(child, parent)`` edges;
        ``red_index[i]`` is row ``i``'s tree index or -1.
    row_remote_inputs:
        Number of tree children delivering partials into each row's
        home (0 for home-only rows).
    local_tiles, local_counts:
        ``local_counts[p, i]``: FMACs tile ``local_tiles[p]`` must
        apply to its row-``i`` partial before the partial completes.
        ``local_tiles`` is sorted and holds only tiles with nonzeros.
    total_fmacs:
        Static FMAC count across all tiles, computed once at lowering
        time (``len(rows)``).
    inv_diag:
        Reciprocal diagonal per row (SpTRSV only; the paper stores
        ``1/d`` to avoid divisions, Sec. VI-A).
    dependent:
        True for SpTRSV: value ``j`` is only produced by solving row
        ``j``; False for SpMV where all values multicast at time 0.
    initial_rows:
        SpTRSV rows with no off-diagonal dependences (solvable at t=0).
    """

    name: str
    n: int
    vec_tile: np.ndarray
    # -- column segments ----------------------------------------------
    seg_tile: np.ndarray
    seg_col: np.ndarray
    seg_ptr: np.ndarray
    rows: np.ndarray
    values: np.ndarray
    # -- multicast forest ---------------------------------------------
    mcast_col: np.ndarray
    mcast_root: np.ndarray
    mcast_edge_ptr: np.ndarray
    mcast_parent: np.ndarray
    mcast_child: np.ndarray
    mcast_dst_ptr: np.ndarray
    mcast_dst: np.ndarray
    mcast_first: np.ndarray
    mcast_count: np.ndarray
    # -- reduction forest ---------------------------------------------
    red_row: np.ndarray
    red_edge_ptr: np.ndarray
    red_child: np.ndarray
    red_parent: np.ndarray
    red_index: np.ndarray
    row_remote_inputs: np.ndarray
    # -- dense local-FMAC counters ------------------------------------
    local_tiles: np.ndarray
    local_counts: np.ndarray
    # -- scalars / optionals ------------------------------------------
    total_fmacs: int = 0
    inv_diag: Optional[np.ndarray] = None
    dependent: bool = False
    initial_rows: np.ndarray = field(default_factory=_empty_int)

    def __getstate__(self):
        """Pickle the flat arrays only, never the lazy dict views."""
        return {
            key: value for key, value in self.__dict__.items()
            if not key.endswith("_view")
        }

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Number of (tile, column) segments."""
        return len(self.seg_tile)

    @property
    def n_mcast_trees(self) -> int:
        """Number of multicast trees in the forest."""
        return len(self.mcast_col)

    @property
    def n_red_trees(self) -> int:
        """Number of reduction trees in the forest."""
        return len(self.red_row)

    def flops(self) -> int:
        """Useful FLOPs of one kernel execution (FMAC = 2)."""
        fmacs = 2 * self.total_fmacs
        if self.dependent:
            fmacs += self.n  # one reciprocal-diagonal multiply per row
        return fmacs

    # ------------------------------------------------------------------
    # Exact structural equality (tests / lowering parity)
    # ------------------------------------------------------------------
    _ARRAY_FIELDS: Tuple[str, ...] = (
        "vec_tile", "seg_tile", "seg_col", "seg_ptr", "rows", "values",
        "mcast_col", "mcast_root", "mcast_edge_ptr", "mcast_parent",
        "mcast_child", "mcast_dst_ptr", "mcast_dst", "mcast_first",
        "mcast_count", "red_row", "red_edge_ptr", "red_child",
        "red_parent", "red_index", "row_remote_inputs", "local_tiles",
        "local_counts", "initial_rows",
    )

    def same_program(self, other: "CompiledKernel") -> bool:
        """Bit-exact structural equality with another compiled kernel.

        Every flat array (including ``values``, compared bit-for-bit)
        plus the scalar fields must match.  This is the property the
        lowering-equivalence suite asserts between the reference and
        vectorized strategies.
        """
        if (self.name != other.name or self.n != other.n
                or self.dependent != other.dependent
                or self.total_fmacs != other.total_fmacs):
            return False
        for attr in self._ARRAY_FIELDS:
            if not np.array_equal(getattr(self, attr), getattr(other, attr)):
                return False
        if (self.inv_diag is None) != (other.inv_diag is None):
            return False
        if self.inv_diag is not None and not np.array_equal(
                self.inv_diag, other.inv_diag):
            return False
        return True

    # ------------------------------------------------------------------
    # Historical dict views (tests / exploratory code only — the hot
    # paths read the flat arrays directly)
    # ------------------------------------------------------------------
    @property
    def col_segments(self) -> Dict[int, Dict[int, Tuple[np.ndarray,
                                                        np.ndarray]]]:
        """``{tile: {col: (rows, values)}}`` view of the segments."""
        cached = self.__dict__.get("_col_segments_view")
        if cached is not None:
            return cached
        view: Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        seg_ptr = self.seg_ptr
        for s in range(self.n_segments):
            lo, hi = int(seg_ptr[s]), int(seg_ptr[s + 1])
            view.setdefault(int(self.seg_tile[s]), {})[
                int(self.seg_col[s])
            ] = (self.rows[lo:hi], self.values[lo:hi])
        self.__dict__["_col_segments_view"] = view
        return view

    @property
    def mcast_trees(self) -> Dict[int, List[MulticastTree]]:
        """``{col: [MulticastTree, ...]}`` view of the multicast forest."""
        cached = self.__dict__.get("_mcast_trees_view")
        if cached is not None:
            return cached
        view: Dict[int, List[MulticastTree]] = {}
        edge_ptr, dst_ptr = self.mcast_edge_ptr, self.mcast_dst_ptr
        for t in range(self.n_mcast_trees):
            lo, hi = int(edge_ptr[t]), int(edge_ptr[t + 1])
            children: Dict[int, List[int]] = {}
            edges = []
            for e in range(lo, hi):
                parent = int(self.mcast_parent[e])
                child = int(self.mcast_child[e])
                children.setdefault(parent, []).append(child)
                edges.append((parent, child))
            tree = MulticastTree(
                root=int(self.mcast_root[t]),
                destinations=tuple(
                    int(d) for d in
                    self.mcast_dst[int(dst_ptr[t]):int(dst_ptr[t + 1])]
                ),
                children=children,
                edges=edges,
            )
            view.setdefault(int(self.mcast_col[t]), []).append(tree)
        self.__dict__["_mcast_trees_view"] = view
        return view

    @property
    def red_trees(self) -> Dict[int, ReductionTree]:
        """``{row: ReductionTree}`` view of the reduction forest."""
        cached = self.__dict__.get("_red_trees_view")
        if cached is not None:
            return cached
        view: Dict[int, ReductionTree] = {}
        edge_ptr = self.red_edge_ptr
        for t in range(self.n_red_trees):
            row = int(self.red_row[t])
            root = int(self.vec_tile[row])
            lo, hi = int(edge_ptr[t]), int(edge_ptr[t + 1])
            parent: Dict[int, int] = {}
            incoming: Dict[int, int] = {}
            edges = []
            for e in range(lo, hi):
                child = int(self.red_child[e])
                par = int(self.red_parent[e])
                parent[child] = par
                incoming[par] = incoming.get(par, 0) + 1
                edges.append((child, par))
            sources = tuple(
                int(tile) for tile in
                self.local_tiles[self.local_counts[:, row] > 0]
                if int(tile) != root
            )
            combine = tuple(sorted(
                tile for tile, count in incoming.items()
                if count >= 2 or tile in sources or tile == root
            ))
            view[row] = ReductionTree(
                root=root, sources=sources, parent=parent,
                edges=edges, combine_tiles=combine,
            )
        self.__dict__["_red_trees_view"] = view
        return view

"""Dataflow task-graph construction (Sec. IV-A).

Azul kernels execute as dataflow graphs of tasks: all memory accesses
are local, and inter-tile communication is messages that trigger tasks
on the destination tile (Fig. 13).  This subpackage compiles a mapped
kernel (matrix + placement) into the per-tile task structures, multicast
trees, and reduction trees the simulator executes.
"""

from repro.dataflow.messages import Message, MessageKind
from repro.dataflow.tasks import OpKind, TaskKind
from repro.dataflow.ir import CompiledKernel
from repro.dataflow.lower import (
    LOWERINGS,
    LoweringStrategy,
    ReferenceLowering,
    VectorizedLowering,
    resolve_lowering,
)
from repro.dataflow.spmv_graph import build_spmv_program
from repro.dataflow.sptrsv_graph import (
    build_sptrsv_program,
    transpose_with_mapping,
)
from repro.dataflow.kernel_program import KernelProgram, build_kernel_program
from repro.dataflow.vector_ops import (
    VectorPhaseModel,
    dot_allreduce_cycles,
    axpy_cycles,
)
from repro.dataflow.program import PCGIterationProgram, build_pcg_program

__all__ = [
    "Message",
    "MessageKind",
    "OpKind",
    "TaskKind",
    "CompiledKernel",
    "KernelProgram",
    "LOWERINGS",
    "LoweringStrategy",
    "ReferenceLowering",
    "VectorizedLowering",
    "resolve_lowering",
    "build_kernel_program",
    "build_spmv_program",
    "build_sptrsv_program",
    "transpose_with_mapping",
    "VectorPhaseModel",
    "dot_allreduce_cycles",
    "axpy_cycles",
    "PCGIterationProgram",
    "build_pcg_program",
]

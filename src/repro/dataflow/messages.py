"""Message types exchanged between tiles.

Two message kinds suffice for SpMV and SpTRSV (Sec. IV-A):

* ``VALUE`` — a vector element (``v_j`` in SpMV, a solved ``x_j`` in
  SpTRSV) multicast down a tree to every tile holding a nonzero of
  column ``j``; triggers a ScaleAndAccumCol task on arrival.
* ``PARTIAL`` — a per-row partial sum traveling up a reduction tree
  toward the row's home; triggers a ReduceY/Add task on arrival.

Each message occupies one 96-bit flit: a 64-bit double plus 32 bits of
metadata (the index and tree id).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MessageKind(enum.Enum):
    """Kinds of NoC messages."""

    VALUE = "value"
    PARTIAL = "partial"


@dataclass(frozen=True)
class Message:
    """One message flit.

    Attributes
    ----------
    kind:
        VALUE (multicast payload) or PARTIAL (reduction payload).
    index:
        The vector/row index the payload belongs to.
    value:
        The 64-bit floating-point payload.
    """

    kind: MessageKind
    index: int
    value: float

"""SpMV dataflow program construction (Fig. 12-15 of the paper).

Each vector element ``v_j`` is multicast from its home down column
``j``'s tiles; each tile scales its local column segment into per-row
partial sums; completed partials reduce into ``y_i``'s home.
"""

from __future__ import annotations

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.dataflow.kernel_program import KernelProgram, build_kernel_program
from repro.sparse.csr import CSRMatrix


def build_spmv_program(matrix: CSRMatrix, a_tile: np.ndarray,
                       vec_tile: np.ndarray,
                       torus: TorusGeometry,
                       multicast: str = "tree") -> KernelProgram:
    """Compile ``y = A x`` under a placement into a kernel program.

    ``a_tile`` assigns each CSR-ordered nonzero of ``matrix`` to a tile;
    ``vec_tile`` gives vector homes (both ``x`` and ``y`` use the same
    homes, as PCG's vectors are co-placed).
    """
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_nnz())
    return build_kernel_program(
        name="spmv",
        n=matrix.n_rows,
        rows=rows,
        cols=matrix.indices,
        values=matrix.data,
        nnz_tile=np.asarray(a_tile, dtype=np.int64),
        vec_tile=vec_tile,
        torus=torus,
        dependent=False,
        multicast=multicast,
    )

"""Compiled kernel program: the mapped dataflow of one kernel.

A :class:`KernelProgram` is everything the simulator needs to execute
one SpMV or SpTRSV under a given placement: per-tile column segments
(the local FMAC work each arriving value triggers), multicast trees for
value distribution, reduction trees for partial sums, and the counters
that detect partial-sum completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.multicast import MulticastTree, build_multicast_tree
from repro.comm.reduction import ReductionTree, build_reduction_tree
from repro.comm.torus import TorusGeometry


@dataclass
class KernelProgram:
    """The mapped dataflow of one kernel.

    Attributes
    ----------
    name:
        ``"spmv"``, ``"sptrsv_lower"`` or ``"sptrsv_upper"``.
    n:
        Vector length (matrix dimension).
    vec_tile:
        Home tile of each vector index.
    col_segments:
        ``col_segments[tile][j] = (rows, values)``: the local nonzeros
        of column ``j`` on ``tile`` (off-diagonal only for SpTRSV).
        Arrival of value ``j`` triggers these FMACs (Listing 2).
    mcast_trees:
        ``mcast_trees[j]``: list of trees distributing value ``j`` from
        its home to every tile holding column-``j`` nonzeros (absent if
        no remote destinations).  Tree mode (the default, Fig. 18
        right) uses one merged tree; unicast mode (Fig. 18 left) uses
        one single-destination tree per receiver, so the root must
        issue one Send per destination.
    red_trees:
        ``red_trees[i]``: tree reducing row-``i`` partials into the home
        (absent if the row is home-only).
    local_counts:
        ``local_counts[(tile, i)]``: FMACs tile must apply to its
        row-``i`` partial before the partial is complete.
    row_remote_inputs:
        ``row_remote_inputs[i]``: number of tree children delivering
        partials into the home (0 for home-only rows).
    inv_diag:
        Reciprocal diagonal per row (SpTRSV only; the paper stores
        ``1/d`` to avoid divisions, Sec. VI-A).
    dependent:
        True for SpTRSV: value ``j`` is only produced by solving row
        ``j``; False for SpMV where all values multicast at time 0.
    initial_rows:
        SpTRSV rows with no off-diagonal dependences (solvable at t=0).
    total_fmacs:
        Static FMAC count across all tiles (utilization accounting).
    """

    name: str
    n: int
    vec_tile: np.ndarray
    col_segments: dict
    mcast_trees: dict
    red_trees: dict
    local_counts: dict
    row_remote_inputs: dict
    inv_diag: np.ndarray = None
    dependent: bool = False
    initial_rows: np.ndarray = field(default_factory=lambda: np.empty(0, int))

    @property
    def total_fmacs(self) -> int:
        """Total FMAC operations across all tiles."""
        return sum(
            len(rows)
            for segments in self.col_segments.values()
            for rows, _ in segments.values()
        )

    def flops(self) -> int:
        """Useful FLOPs of one kernel execution (FMAC = 2)."""
        fmacs = 2 * self.total_fmacs
        if self.dependent:
            fmacs += self.n  # one reciprocal-diagonal multiply per row
        return fmacs


def build_kernel_program(name: str, n: int, rows: np.ndarray,
                         cols: np.ndarray, values: np.ndarray,
                         nnz_tile: np.ndarray, vec_tile: np.ndarray,
                         torus: TorusGeometry, inv_diag=None,
                         dependent: bool = False,
                         multicast: str = "tree") -> KernelProgram:
    """Compile nonzero triplets + placement into a kernel program.

    ``rows``/``cols``/``values``/``nnz_tile`` must exclude diagonal
    entries when ``dependent`` (SpTRSV); the diagonal is represented by
    ``inv_diag`` at each row's home tile.  ``multicast`` selects value
    distribution: ``"tree"`` (merged multicast trees, Fig. 18 right) or
    ``"unicast"`` (separate point-to-point sends, Fig. 18 left).
    """
    if multicast not in ("tree", "unicast"):
        raise ValueError(f"unknown multicast mode {multicast!r}")
    col_segments = {}
    local_counts = {}
    tiles_per_col = {}
    tiles_per_row = {}
    for k in range(len(rows)):
        tile = int(nnz_tile[k])
        i, j, v = int(rows[k]), int(cols[k]), float(values[k])
        segments = col_segments.setdefault(tile, {})
        entry = segments.setdefault(j, ([], []))
        entry[0].append(i)
        entry[1].append(v)
        local_counts[(tile, i)] = local_counts.get((tile, i), 0) + 1
        tiles_per_col.setdefault(j, set()).add(tile)
        tiles_per_row.setdefault(i, set()).add(tile)

    # Freeze segment lists into arrays.
    for segments in col_segments.values():
        for j in list(segments):
            row_list, val_list = segments[j]
            segments[j] = (
                np.array(row_list, dtype=np.int64),
                np.array(val_list, dtype=np.float64),
            )

    mcast_trees = {}
    for j, tiles in tiles_per_col.items():
        home = int(vec_tile[j])
        destinations = sorted(tiles - {home})
        if not destinations:
            continue
        if multicast == "tree":
            mcast_trees[j] = [
                build_multicast_tree(torus, home, destinations)
            ]
        else:
            mcast_trees[j] = [
                build_multicast_tree(torus, home, [dst])
                for dst in destinations
            ]

    red_trees = {}
    row_remote_inputs = {}
    for i, tiles in tiles_per_row.items():
        home = int(vec_tile[i])
        sources = sorted(tiles - {home})
        if sources:
            tree = build_reduction_tree(torus, home, sources)
            red_trees[i] = tree
            # Children of the root deliver the merged partial streams.
            row_remote_inputs[i] = sum(
                1 for child, parent in tree.edges if parent == home
            )
        else:
            row_remote_inputs[i] = 0
    for i in range(n):
        row_remote_inputs.setdefault(i, 0)

    initial_rows = np.empty(0, dtype=np.int64)
    if dependent:
        has_offdiag = np.zeros(n, dtype=bool)
        has_offdiag[np.unique(rows)] = True
        initial_rows = np.nonzero(~has_offdiag)[0]

    return KernelProgram(
        name=name,
        n=n,
        vec_tile=np.asarray(vec_tile, dtype=np.int64),
        col_segments=col_segments,
        mcast_trees=mcast_trees,
        red_trees=red_trees,
        local_counts=local_counts,
        row_remote_inputs=row_remote_inputs,
        inv_diag=None if inv_diag is None else np.asarray(inv_diag, float),
        dependent=dependent,
        initial_rows=initial_rows,
    )

"""Compiled kernel program: the mapped dataflow of one kernel.

A kernel program is everything the simulator needs to execute one SpMV
or SpTRSV under a given placement: per-tile column segments (the local
FMAC work each arriving value triggers), multicast trees for value
distribution, reduction trees for partial sums, and the counters that
detect partial-sum completion.

Since the array-backed IR refactor the program *representation* lives
in :mod:`repro.dataflow.ir` (:class:`~repro.dataflow.ir.CompiledKernel`,
structure-of-arrays) and the *construction* in
:mod:`repro.dataflow.lower` (the strategy registry).  This module is
the stable entry point: :func:`build_kernel_program` validates
arguments and dispatches to the configured lowering;
``KernelProgram`` is the historical public name for the program type.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataflow.ir import CompiledKernel
from repro.dataflow.lower import resolve_lowering

#: Historical public name: a kernel program *is* a compiled kernel.
KernelProgram = CompiledKernel


def build_kernel_program(name: str, n: int, rows: np.ndarray,
                         cols: np.ndarray, values: np.ndarray,
                         nnz_tile: np.ndarray, vec_tile: np.ndarray,
                         torus, inv_diag=None,
                         dependent: bool = False,
                         multicast: str = "tree",
                         lowering: Optional[str] = None) -> CompiledKernel:
    """Compile nonzero triplets + placement into a kernel program.

    ``rows``/``cols``/``values``/``nnz_tile`` must exclude diagonal
    entries when ``dependent`` (SpTRSV); the diagonal is represented by
    ``inv_diag`` at each row's home tile.  ``multicast`` selects value
    distribution: ``"tree"`` (merged multicast trees, Fig. 18 right) or
    ``"unicast"`` (separate point-to-point sends, Fig. 18 left).
    ``lowering`` names a :data:`~repro.dataflow.lower.LOWERINGS`
    strategy; ``None`` resolves the environment default (vectorized
    unless ``AZUL_DATAFLOW_REFERENCE`` is set).  All strategies
    produce bit-identical programs.
    """
    if multicast not in ("tree", "unicast"):
        raise ValueError(f"unknown multicast mode {multicast!r}")
    strategy = resolve_lowering(lowering)()
    return strategy.lower(
        name, n, rows, cols, values, nnz_tile, vec_tile, torus,
        inv_diag=inv_diag, dependent=dependent, multicast=multicast,
    )

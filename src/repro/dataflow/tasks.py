"""Operation and task vocabulary of the Azul PE (Sec. V-A).

The PE executes four operation kinds, all flowing through the same
pipeline:

* ``FMAC`` — fused multiply-accumulate into an Accumulator-SRAM word
  (the dominant op of ScaleAndAccumCol).
* ``ADD``  — standalone add (merging reduction partials).
* ``MUL``  — standalone multiply (solving ``x_i = acc * (1/d_i)``).
* ``SEND`` — push a value into the router.

Tasks group the operations triggered by one message.
"""

from __future__ import annotations

import enum


class OpKind(enum.IntEnum):
    """PE operation kinds (cycle-breakdown categories of Fig. 21)."""

    FMAC = 0
    ADD = 1
    MUL = 2
    SEND = 3


class TaskKind(enum.Enum):
    """Task types of the SpMV/SpTRSV dataflow (Fig. 13)."""

    SEND_V = "send_v"                  # initial multicast of held values
    SCALE_AND_ACCUM_COL = "saac"       # Listing 2
    REDUCE = "reduce"                  # merge an incoming partial
    SOLVE_ROW = "solve_row"            # SpTRSV: x_i = acc * (1/d_i)

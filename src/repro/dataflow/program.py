"""The full PCG-iteration program (Listing 1 on Azul hardware).

One iteration executes, with barriers between them (each phase consumes
the previous phase's full output through a dot product or solve):

1. SpMV:             ``Ap = A p``
2. vector phase (a): ``alpha``, ``x += alpha p``, ``r -= alpha Ap``
3. forward SpTRSV:   ``w = L^{-1} r``
4. backward SpTRSV:  ``z = L^{-T} w``
5. vector phase (b): ``rz``, ``beta``, ``p = z + beta p``

Phases 2 and 5 are folded into one :class:`VectorPhaseModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig
from repro.core.placement import Placement
from repro.dataflow.kernel_program import KernelProgram
from repro.dataflow.spmv_graph import build_spmv_program
from repro.dataflow.sptrsv_graph import build_sptrsv_program
from repro.dataflow.vector_ops import VectorPhaseModel
from repro.sparse.csr import CSRMatrix


@dataclass
class PCGIterationProgram:
    """All compiled kernels of one PCG iteration under one placement."""

    spmv: KernelProgram
    sptrsv_lower: KernelProgram
    sptrsv_upper: KernelProgram
    vector_phase: VectorPhaseModel
    n: int

    @property
    def kernels(self):
        """The three sparse kernels in execution order."""
        return (self.spmv, self.sptrsv_lower, self.sptrsv_upper)

    def flops_per_iteration(self) -> int:
        """Useful FLOPs of one full PCG iteration."""
        sparse = sum(k.flops() for k in self.kernels)
        return sparse + self.vector_phase.flops(self.n)


def build_pcg_program(matrix: CSRMatrix, lower: CSRMatrix,
                      placement: Placement, torus: TorusGeometry,
                      config: AzulConfig,
                      multicast: str = "tree") -> PCGIterationProgram:
    """Compile a PCG iteration for a mapped (A, L) pair.

    ``multicast`` selects tree-based or point-to-point distribution
    (Fig. 18's two alternatives).
    """
    spmv = build_spmv_program(
        matrix, placement.a_tile, placement.vec_tile, torus,
        multicast=multicast,
    )
    forward = build_sptrsv_program(
        lower, placement.l_tile, placement.vec_tile, torus,
        transpose=False, multicast=multicast,
    )
    backward = build_sptrsv_program(
        lower, placement.l_tile, placement.vec_tile, torus,
        transpose=True, multicast=multicast,
    )
    vector_phase = VectorPhaseModel(
        vec_tile=placement.vec_tile, torus=torus, config=config
    )
    return PCGIterationProgram(
        spmv=spmv,
        sptrsv_lower=forward,
        sptrsv_upper=backward,
        vector_phase=vector_phase,
        n=matrix.n_rows,
    )

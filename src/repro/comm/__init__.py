"""On-chip communication: torus geometry, routing, and message trees.

Azul's tiles communicate over a 2D-torus NoC with dimension-order
routing.  Multicasts (distributing vector values down matrix columns)
and reductions (collecting partial row sums) are implemented as trees
rather than point-to-point message fans, avoiding redundant link traffic
and serialization (Sec. IV-D, Fig. 18).
"""

from repro.comm.torus import TorusGeometry
from repro.comm.mesh import MeshGeometry
from repro.comm.routing import route_path, hop_distance
from repro.comm.multicast import (
    MulticastForest,
    MulticastTree,
    build_multicast_forest,
    build_multicast_tree,
)
from repro.comm.reduction import (
    ReductionForest,
    ReductionTree,
    build_reduction_forest,
    build_reduction_tree,
)

def make_geometry(config):
    """Build the NoC geometry a config describes (torus or mesh)."""
    cls = TorusGeometry if config.topology == "torus" else MeshGeometry
    return cls(config.mesh_rows, config.mesh_cols)


__all__ = [
    "TorusGeometry",
    "MeshGeometry",
    "make_geometry",
    "route_path",
    "hop_distance",
    "MulticastForest",
    "MulticastTree",
    "build_multicast_forest",
    "build_multicast_tree",
    "ReductionForest",
    "ReductionTree",
    "build_reduction_forest",
    "build_reduction_tree",
]

"""2D-torus tile geometry.

Tiles are numbered row-major; the torus wraps in both dimensions, so
every link is between grid neighbors (the paper notes torus links span
only two tile lengths when folded, Sec. VI-E).
"""

from __future__ import annotations

import numpy as np


class TorusGeometry:
    """Coordinates and neighborhoods of a ``rows x cols`` 2D torus."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("torus dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def coords(self, tile: int):
        """``(row, col)`` of a tile id."""
        return divmod(tile, self.cols)

    def tile_id(self, row: int, col: int) -> int:
        """Tile id of (possibly wrapped) coordinates."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def neighbors(self, tile: int):
        """The four torus neighbors (north, south, west, east)."""
        r, c = self.coords(tile)
        return (
            self.tile_id(r - 1, c),
            self.tile_id(r + 1, c),
            self.tile_id(r, c - 1),
            self.tile_id(r, c + 1),
        )

    # ------------------------------------------------------------------
    def _axis_steps(self, src: int, dst: int, length: int):
        """Signed steps along one axis, taking the shorter wrap direction."""
        forward = (dst - src) % length
        backward = (src - dst) % length
        if forward <= backward:
            return [1] * forward
        return [-1] * backward

    def x_steps(self, src_col: int, dst_col: int):
        """Column steps (east/west) between two columns."""
        return self._axis_steps(src_col, dst_col, self.cols)

    def y_steps(self, src_row: int, dst_row: int):
        """Row steps (north/south) between two rows."""
        return self._axis_steps(src_row, dst_row, self.rows)

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two tiles on the torus."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        dx = min((dc - sc) % self.cols, (sc - dc) % self.cols)
        dy = min((dr - sr) % self.rows, (sr - dr) % self.rows)
        return dx + dy

    def reduction_depth(self) -> int:
        """Hop depth of a global reduction tree to the torus center."""
        return self.rows // 2 + self.cols // 2

    def bisection_links(self) -> int:
        """Links crossing a balanced bisection (both wrap directions)."""
        return 4 * min(self.rows, self.cols)

    def all_links(self):
        """Every directed link ``(src, dst)`` of the torus."""
        links = []
        for tile in range(self.n_tiles):
            for neighbor in self.neighbors(tile):
                links.append((tile, neighbor))
        return links

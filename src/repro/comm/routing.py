"""Dimension-order (X-then-Y) routing on the torus.

Deterministic dimension-order routing is deadlock-free on a per-
dimension basis and, crucially for multicast trees, gives every
(root, destination) pair a unique path: merging the paths of all
destinations of one multicast yields a tree (Sec. IV-D).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.comm.mesh import MeshGeometry
from repro.comm.torus import TorusGeometry


def route_path(torus: TorusGeometry, src: int, dst: int) -> list:
    """The tile sequence from ``src`` to ``dst`` (inclusive of both).

    Routes along X (columns) first, then Y (rows), taking the shorter
    wrap direction on each axis.
    """
    path = [src]
    row, col = torus.coords(src)
    dst_row, dst_col = torus.coords(dst)
    for step in torus.x_steps(col, dst_col):
        col += step
        path.append(torus.tile_id(row, col))
    for step in torus.y_steps(row, dst_row):
        row += step
        path.append(torus.tile_id(row, col))
    return path


def hop_distance(torus: TorusGeometry, src: int, dst: int) -> int:
    """Minimal hops between two tiles (wrap-aware)."""
    return torus.hop_distance(src, dst)


def route_edges_batch(geometry, srcs,
                      dsts) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dimension-order path edges of many ``(src, dst)`` pairs at once.

    Returns ``(edge_ptr, parents, children)``: pair ``p``'s path is the
    ``(parents[e], children[e])`` link sequence for ``e`` in
    ``edge_ptr[p]:edge_ptr[p+1]`` — exactly the consecutive-node pairs
    of :func:`route_path` for the same endpoints.  Fully vectorized for
    the torus and mesh geometries; any other geometry falls back to a
    per-pair :func:`route_path` loop.
    """
    srcs = np.asarray(srcs, dtype=np.int64)
    dsts = np.asarray(dsts, dtype=np.int64)
    if not isinstance(geometry, (TorusGeometry, MeshGeometry)):
        edge_ptr = np.zeros(len(srcs) + 1, dtype=np.int64)
        parents_list = []
        children_list = []
        for p, (src, dst) in enumerate(zip(srcs.tolist(), dsts.tolist())):
            path = route_path(geometry, src, dst)
            parents_list.extend(path[:-1])
            children_list.extend(path[1:])
            edge_ptr[p + 1] = len(parents_list)
        return (edge_ptr, np.asarray(parents_list, dtype=np.int64),
                np.asarray(children_list, dtype=np.int64))
    n_rows, n_cols = geometry.rows, geometry.cols
    src_row, src_col = np.divmod(srcs, n_cols)
    dst_row, dst_col = np.divmod(dsts, n_cols)
    if isinstance(geometry, TorusGeometry):
        # Shorter wrap direction per axis; ties go forward (east/south),
        # matching TorusGeometry._axis_steps.
        forward = (dst_col - src_col) % n_cols
        backward = (src_col - dst_col) % n_cols
        n_x = np.minimum(forward, backward)
        step_x = np.where(forward <= backward, 1, -1)
        forward = (dst_row - src_row) % n_rows
        backward = (src_row - dst_row) % n_rows
        n_y = np.minimum(forward, backward)
        step_y = np.where(forward <= backward, 1, -1)
    else:
        n_x = np.abs(dst_col - src_col)
        step_x = np.where(dst_col >= src_col, 1, -1)
        n_y = np.abs(dst_row - src_row)
        step_y = np.where(dst_row >= src_row, 1, -1)
    hops = n_x + n_y
    edge_ptr = np.zeros(len(srcs) + 1, dtype=np.int64)
    np.cumsum(hops, out=edge_ptr[1:])
    n_edges = int(edge_ptr[-1])
    pair = np.repeat(np.arange(len(srcs), dtype=np.int64), hops)
    step = np.arange(n_edges, dtype=np.int64) - edge_ptr[pair]

    def _tile_after(steps_taken):
        x_taken = np.minimum(steps_taken, n_x[pair])
        y_taken = steps_taken - x_taken
        col = (src_col[pair] + step_x[pair] * x_taken) % n_cols
        row = (src_row[pair] + step_y[pair] * y_taken) % n_rows
        return row * n_cols + col

    return edge_ptr, _tile_after(step), _tile_after(step + 1)

"""Dimension-order (X-then-Y) routing on the torus.

Deterministic dimension-order routing is deadlock-free on a per-
dimension basis and, crucially for multicast trees, gives every
(root, destination) pair a unique path: merging the paths of all
destinations of one multicast yields a tree (Sec. IV-D).
"""

from __future__ import annotations

from repro.comm.torus import TorusGeometry


def route_path(torus: TorusGeometry, src: int, dst: int) -> list:
    """The tile sequence from ``src`` to ``dst`` (inclusive of both).

    Routes along X (columns) first, then Y (rows), taking the shorter
    wrap direction on each axis.
    """
    path = [src]
    row, col = torus.coords(src)
    dst_row, dst_col = torus.coords(dst)
    for step in torus.x_steps(col, dst_col):
        col += step
        path.append(torus.tile_id(row, col))
    for step in torus.y_steps(row, dst_row):
        row += step
        path.append(torus.tile_id(row, col))
    return path


def hop_distance(torus: TorusGeometry, src: int, dst: int) -> int:
    """Minimal hops between two tiles (wrap-aware)."""
    return torus.hop_distance(src, dst)

"""Multicast trees (paper Fig. 18, right).

A tile multicasting a value to many destinations sends it once down a
tree embedded in the torus: each tree edge is a single link traversal,
and forking happens at intermediate tiles.  This avoids both redundant
link traffic and the serialization of issuing hundreds of point-to-point
sends from one PE (Sec. IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.comm.routing import route_edges_batch, route_path
from repro.comm.torus import TorusGeometry


@dataclass
class MulticastTree:
    """A multicast tree rooted at ``root`` covering ``destinations``.

    Attributes
    ----------
    root:
        Source tile.
    destinations:
        The tiles that must receive the value (excluding the root).
    children:
        ``children[tile]`` lists the tiles this node forwards to.
    edges:
        All ``(parent, child)`` link traversals, one per tree edge.
    """

    root: int
    destinations: tuple
    children: dict = field(default_factory=dict)
    edges: list = field(default_factory=list)

    @property
    def n_link_activations(self) -> int:
        """Link traversals used by one multicast down this tree."""
        return len(self.edges)

    def depth(self) -> int:
        """Longest root-to-leaf hop count."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in self.children.get(node, ()):
                stack.append((child, d + 1))
        return best

    def fanout(self, tile: int) -> int:
        """Number of children a tile forwards to."""
        return len(self.children.get(tile, ()))


def build_multicast_tree(torus: TorusGeometry, root: int,
                         destinations) -> MulticastTree:
    """Merge the dimension-order paths to all destinations into a tree.

    Because X-then-Y routing gives each destination a unique path from
    the root, the union of paths is a tree; shared prefixes are traversed
    once (e.g. one east-west message forwarded north and south,
    Fig. 18).
    """
    destinations = tuple(sorted({int(d) for d in destinations} - {int(root)}))
    children = {}
    edge_set = set()
    for dst in destinations:
        path = route_path(torus, root, dst)
        for parent, child in zip(path, path[1:]):
            if (parent, child) not in edge_set:
                edge_set.add((parent, child))
                children.setdefault(parent, []).append(child)
    edges = sorted(edge_set)
    return MulticastTree(
        root=int(root),
        destinations=destinations,
        children=children,
        edges=edges,
    )


@dataclass
class MulticastForest:
    """Many multicast trees in flat-array form (one batched build).

    Tree ``t`` is rooted at ``roots[t]`` with sorted ``(parent,
    child)`` edges ``(parents[e], children[e])`` for ``e`` in
    ``edge_ptr[t]:edge_ptr[t+1]`` — exactly the edge list
    :func:`build_multicast_tree` produces for the same root and
    destination set.
    """

    roots: np.ndarray
    edge_ptr: np.ndarray
    parents: np.ndarray
    children: np.ndarray

    @property
    def n_trees(self) -> int:
        return len(self.roots)


def build_multicast_forest(geometry: TorusGeometry, roots,
                           dst_ptr, destinations) -> MulticastForest:
    """Build all of a kernel's multicast trees in one batched call.

    ``roots[t]`` and ``destinations[dst_ptr[t]:dst_ptr[t+1]]`` define
    tree ``t`` (destinations sorted, deduplicated, root excluded —
    the canonical form the lowering strategies supply).  Two levels of
    memoization exploit the heavy structural sharing across a kernel's
    columns/rows: whole trees are cached on ``(root, destinations)``
    (many columns share one home/tile-set pattern) and dimension-order
    route paths on ``(root, dst)``, so each distinct path is computed
    once per kernel instead of once per column.

    The per-tree edge lists are bit-identical to what
    :func:`build_multicast_tree` returns.
    """
    roots_arr = np.asarray(roots, dtype=np.int64)
    ptr = np.asarray(dst_ptr, dtype=np.int64)
    dsts_arr = np.asarray(destinations, dtype=np.int64)
    n_trees = len(roots_arr)
    # Canonicalize every destination group at once: per-tree sorted,
    # deduplicated, root excluded (matches build_multicast_tree).
    tree_id = np.repeat(np.arange(n_trees, dtype=np.int64), np.diff(ptr))
    order = np.lexsort((dsts_arr, tree_id))
    tid = tree_id[order]
    dst_sorted = dsts_arr[order]
    keep = dst_sorted != roots_arr[tid]
    if len(tid):
        first = np.ones(len(tid), dtype=bool)
        first[1:] = (tid[1:] != tid[:-1]) | (dst_sorted[1:] != dst_sorted[:-1])
        keep &= first
    counts = np.bincount(tid[keep], minlength=n_trees)
    norm_ptr = np.zeros(n_trees + 1, dtype=np.int64)
    np.cumsum(counts, out=norm_ptr[1:])
    # Deduplicate whole trees vectorized: fingerprint every tree as a
    # fixed-width (root, padded destinations) row so the path-merging
    # loop below runs once per *distinct* tree (many columns share one
    # home/tile-set pattern).
    width = int(counts.max()) if n_trees else 0
    dst_norm = dst_sorted[keep]
    padded = np.full((max(n_trees, 1), width + 1), -1, dtype=np.int64)
    padded[:n_trees, 0] = roots_arr
    if len(dst_norm):
        col = np.arange(len(dst_norm), dtype=np.int64) - norm_ptr[tid[keep]]
        padded[tid[keep], col + 1] = dst_norm
    rows = np.ascontiguousarray(padded[:n_trees])
    view = rows.view([("", rows.dtype)] * (width + 1)).ravel()
    _, rep_index, inverse = np.unique(
        view, return_index=True, return_inverse=True
    )
    n_unique = len(rep_index)
    # Gather the (root, dst) pairs of the unique trees (CSR gather).
    u_len = counts[rep_index]
    u_ptr = np.zeros(n_unique + 1, dtype=np.int64)
    np.cumsum(u_len, out=u_ptr[1:])
    n_pairs = int(u_ptr[-1])
    u_tree = np.repeat(np.arange(n_unique, dtype=np.int64), u_len)
    within = np.arange(n_pairs, dtype=np.int64) - u_ptr[u_tree]
    gather = norm_ptr[rep_index][u_tree] + within
    pair_dst = dst_norm[gather]
    pair_root = roots_arr[rep_index][u_tree]
    # One batched route computation per *distinct* (root, dst) pair.
    span = int(max(pair_dst.max(), pair_root.max())) + 1 if n_pairs else 1
    pair_key, pair_inv = np.unique(
        pair_root * span + pair_dst, return_inverse=True
    )
    path_ptr, path_parent, path_child = route_edges_batch(
        geometry, pair_key // span, pair_key % span
    )
    # Expand every pair's path edges, tagged with its unique-tree id.
    path_len = np.diff(path_ptr)
    pair_len = path_len[pair_inv]
    pair_off = np.zeros(n_pairs + 1, dtype=np.int64)
    np.cumsum(pair_len, out=pair_off[1:])
    n_raw = int(pair_off[-1])
    raw_pair = np.repeat(np.arange(n_pairs, dtype=np.int64), pair_len)
    raw_within = np.arange(n_raw, dtype=np.int64) - pair_off[raw_pair]
    raw_src = path_ptr[pair_inv][raw_pair] + raw_within
    raw_parent = path_parent[raw_src]
    raw_child = path_child[raw_src]
    raw_tree = u_tree[raw_pair]
    # Canonical per-tree form: sorted (parent, child), shared-prefix
    # edges deduplicated — matching build_multicast_tree exactly.
    order = np.lexsort((raw_child, raw_parent, raw_tree))
    e_tree = raw_tree[order]
    e_parent = raw_parent[order]
    e_child = raw_child[order]
    if n_raw:
        first = np.ones(n_raw, dtype=bool)
        first[1:] = (
            (e_tree[1:] != e_tree[:-1])
            | (e_parent[1:] != e_parent[:-1])
            | (e_child[1:] != e_child[:-1])
        )
        e_tree = e_tree[first]
        e_parent = e_parent[first]
        e_child = e_child[first]
    u_edge_len = np.bincount(e_tree, minlength=n_unique)
    u_edge_ptr = np.zeros(n_unique + 1, dtype=np.int64)
    np.cumsum(u_edge_len, out=u_edge_ptr[1:])
    # Expand the unique trees back to every requested tree.
    out_len = u_edge_len[inverse]
    edge_ptr = np.zeros(n_trees + 1, dtype=np.int64)
    np.cumsum(out_len, out=edge_ptr[1:])
    n_out = int(edge_ptr[-1])
    out_tree = np.repeat(np.arange(n_trees, dtype=np.int64), out_len)
    out_within = np.arange(n_out, dtype=np.int64) - edge_ptr[out_tree]
    out_src = u_edge_ptr[inverse][out_tree] + out_within
    return MulticastForest(
        roots=roots_arr,
        edge_ptr=edge_ptr,
        parents=e_parent[out_src],
        children=e_child[out_src],
    )

"""Multicast trees (paper Fig. 18, right).

A tile multicasting a value to many destinations sends it once down a
tree embedded in the torus: each tree edge is a single link traversal,
and forking happens at intermediate tiles.  This avoids both redundant
link traffic and the serialization of issuing hundreds of point-to-point
sends from one PE (Sec. IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.routing import route_path
from repro.comm.torus import TorusGeometry


@dataclass
class MulticastTree:
    """A multicast tree rooted at ``root`` covering ``destinations``.

    Attributes
    ----------
    root:
        Source tile.
    destinations:
        The tiles that must receive the value (excluding the root).
    children:
        ``children[tile]`` lists the tiles this node forwards to.
    edges:
        All ``(parent, child)`` link traversals, one per tree edge.
    """

    root: int
    destinations: tuple
    children: dict = field(default_factory=dict)
    edges: list = field(default_factory=list)

    @property
    def n_link_activations(self) -> int:
        """Link traversals used by one multicast down this tree."""
        return len(self.edges)

    def depth(self) -> int:
        """Longest root-to-leaf hop count."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in self.children.get(node, ()):
                stack.append((child, d + 1))
        return best

    def fanout(self, tile: int) -> int:
        """Number of children a tile forwards to."""
        return len(self.children.get(tile, ()))


def build_multicast_tree(torus: TorusGeometry, root: int,
                         destinations) -> MulticastTree:
    """Merge the dimension-order paths to all destinations into a tree.

    Because X-then-Y routing gives each destination a unique path from
    the root, the union of paths is a tree; shared prefixes are traversed
    once (e.g. one east-west message forwarded north and south,
    Fig. 18).
    """
    destinations = tuple(sorted({int(d) for d in destinations} - {int(root)}))
    children = {}
    edge_set = set()
    for dst in destinations:
        path = route_path(torus, root, dst)
        for parent, child in zip(path, path[1:]):
            if (parent, child) not in edge_set:
                edge_set.add((parent, child))
                children.setdefault(parent, []).append(child)
    edges = sorted(edge_set)
    return MulticastTree(
        root=int(root),
        destinations=destinations,
        children=children,
        edges=edges,
    )

"""2D-mesh tile geometry (no wraparound links).

A design-space alternative to the paper's 2D torus (Table III): meshes
have shorter physical links and simpler layout but roughly double the
average hop distance and halve the bisection bandwidth.  The topology
ablation (``abl_topology``) quantifies what the torus buys Azul.

Implements the same interface as :class:`~repro.comm.torus
.TorusGeometry`, so routing, tree construction, and the simulator work
unchanged.
"""

from __future__ import annotations


class MeshGeometry:
    """Coordinates and neighborhoods of a ``rows x cols`` 2D mesh."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def coords(self, tile: int):
        """``(row, col)`` of a tile id."""
        return divmod(tile, self.cols)

    def tile_id(self, row: int, col: int) -> int:
        """Tile id of in-grid coordinates (no wrapping)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) outside the mesh")
        return row * self.cols + col

    def neighbors(self, tile: int):
        """In-grid neighbors only (2-4 of them)."""
        r, c = self.coords(tile)
        result = []
        if r > 0:
            result.append(self.tile_id(r - 1, c))
        if r < self.rows - 1:
            result.append(self.tile_id(r + 1, c))
        if c > 0:
            result.append(self.tile_id(r, c - 1))
        if c < self.cols - 1:
            result.append(self.tile_id(r, c + 1))
        return tuple(result)

    # ------------------------------------------------------------------
    def x_steps(self, src_col: int, dst_col: int):
        """Column steps; no wrap, so direction is fixed."""
        if dst_col >= src_col:
            return [1] * (dst_col - src_col)
        return [-1] * (src_col - dst_col)

    def y_steps(self, src_row: int, dst_row: int):
        """Row steps; no wrap."""
        if dst_row >= src_row:
            return [1] * (dst_row - src_row)
        return [-1] * (src_row - dst_row)

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance (no wraparound shortcuts)."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        return abs(dr - sr) + abs(dc - sc)

    def reduction_depth(self) -> int:
        """Hop depth of a global reduction to the mesh center."""
        return (self.rows - 1 + 1) // 2 + (self.cols - 1 + 1) // 2

    def bisection_links(self) -> int:
        """Directed links crossing a balanced bisection (no wrap links)."""
        return 2 * min(self.rows, self.cols)

    def all_links(self):
        """Every directed link ``(src, dst)`` of the mesh."""
        links = []
        for tile in range(self.n_tiles):
            for neighbor in self.neighbors(tile):
                links.append((tile, neighbor))
        return links

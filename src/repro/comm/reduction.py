"""Reduction trees (Sec. IV-D: "the above also applies to reductions").

Partial sums produced on many tiles flow *up* a tree toward the home
tile of the output element; junction tiles add incoming partials before
forwarding, so each link carries a single combined value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.multicast import build_multicast_forest, build_multicast_tree
from repro.comm.torus import TorusGeometry


@dataclass
class ReductionTree:
    """A reduction tree collecting values from ``sources`` into ``root``.

    Attributes
    ----------
    root:
        The home tile receiving the fully-reduced value.
    sources:
        Tiles contributing partial values (excluding the root).
    parent:
        ``parent[tile]`` is the next hop toward the root.
    edges:
        All ``(child, parent)`` link traversals.
    combine_tiles:
        Tiles where two or more incoming partials meet and are added
        before forwarding (each costs a standalone Add, which is why
        the mapping weights row hyperedges higher, Sec. IV-C).
    """

    root: int
    sources: tuple
    parent: dict = field(default_factory=dict)
    edges: list = field(default_factory=list)
    combine_tiles: tuple = ()

    @property
    def n_link_activations(self) -> int:
        """Link traversals used by one full reduction up this tree."""
        return len(self.edges)

    def depth(self) -> int:
        """Longest source-to-root hop count."""
        best = 0
        for source in self.sources:
            hops = 0
            node = source
            while node != self.root:
                node = self.parent[node]
                hops += 1
            best = max(best, hops)
        return best


def build_reduction_tree(torus: TorusGeometry, root: int,
                         sources) -> ReductionTree:
    """Build a reduction tree as the reverse of a multicast tree.

    The multicast tree from the root to all sources is reversed: each
    tree edge ``(parent, child)`` becomes a child-to-parent send.
    """
    multicast = build_multicast_tree(torus, root, sources)
    parent = {}
    incoming = {}
    for p, c in multicast.edges:
        parent[c] = p
        incoming[p] = incoming.get(p, 0) + 1
    edges = sorted((c, p) for p, c in multicast.edges)
    # A tile combines when it merges more than one incoming partial, or
    # merges an incoming partial with one it produced locally.
    combine = tuple(
        sorted(
            tile for tile, count in incoming.items()
            if count >= 2 or tile in multicast.destinations or tile == root
        )
    )
    return ReductionTree(
        root=int(root),
        sources=multicast.destinations,
        parent=parent,
        edges=edges,
        combine_tiles=combine,
    )


@dataclass
class ReductionForest:
    """Many reduction trees in flat-array form (one batched build).

    Tree ``t`` reduces into ``roots[t]`` along sorted ``(child,
    parent)`` edges ``(children[e], parents[e])`` for ``e`` in
    ``edge_ptr[t]:edge_ptr[t+1]`` — the edge list
    :func:`build_reduction_tree` produces for the same root and
    source set.  ``remote_inputs[t]`` counts the tree children
    delivering merged partial streams directly into the root.
    """

    roots: np.ndarray
    edge_ptr: np.ndarray
    children: np.ndarray
    parents: np.ndarray
    remote_inputs: np.ndarray

    @property
    def n_trees(self) -> int:
        return len(self.roots)


def build_reduction_forest(geometry: TorusGeometry, roots,
                           src_ptr, sources) -> ReductionForest:
    """Build all of a kernel's reduction trees in one batched call.

    Each tree is the reverse of the multicast tree from its root to
    its sources; the whole batch shares
    :func:`~repro.comm.multicast.build_multicast_forest`'s tree and
    route-path memoization.  Per-tree edges come back sorted by
    ``(child, parent)``, bit-identical to
    :func:`build_reduction_tree`.
    """
    forest = build_multicast_forest(geometry, roots, src_ptr, sources)
    n_edges = len(forest.parents)
    n_trees = forest.n_trees
    edge_tree = np.repeat(
        np.arange(n_trees, dtype=np.int64), np.diff(forest.edge_ptr)
    )
    # Reverse each multicast edge (parent, child) -> (child, parent)
    # and re-sort within each tree by the reversed orientation.
    children = forest.children
    parents = forest.parents
    order = np.lexsort((parents, children, edge_tree))
    remote_inputs = np.zeros(n_trees, dtype=np.int64)
    if n_edges:
        at_root = parents == forest.roots[edge_tree]
        np.add.at(remote_inputs, edge_tree[at_root], 1)
    return ReductionForest(
        roots=forest.roots,
        edge_ptr=forest.edge_ptr,
        children=children[order],
        parents=parents[order],
        remote_inputs=remote_inputs,
    )

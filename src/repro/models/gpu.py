"""Analytic V100 GPU model for PCG (the paper's GPU baseline).

The paper measures Ginkgo's PCG on a V100 (Figs. 1, 3, 7).  Offline we
model the same three bottlenecks it identifies:

* **Memory bandwidth** — sparse matrices stream from HBM every
  iteration with no reuse (Sec. I), so SpMV/SpTRSV time is at least
  ``bytes / effective_bandwidth``.
* **SpTRSV dependence levels** — each level of the triangular solve is
  a dependent step with launch/sync cost, so few-level (colored)
  matrices run far faster (Fig. 7).
* **Kernel-launch and reduction overheads** — dot products force
  kernel boundaries and device synchronization (Sec. II-A).

Default constants are calibrated so paper-scale matrices land in the
observed 0.1-0.6%-of-peak utilization band of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.levels import level_schedule
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmv_flops, sptrsv_flops


@dataclass(frozen=True)
class GPUIterationTime:
    """Seconds per PCG iteration, by kernel class (Fig. 3's categories)."""

    spmv: float
    sptrsv: float
    vector: float

    @property
    def total(self) -> float:
        return self.spmv + self.sptrsv + self.vector

    def fractions(self) -> dict:
        """Normalized runtime breakdown."""
        total = self.total
        return {
            "spmv": self.spmv / total,
            "sptrsv": self.sptrsv / total,
            "vector": self.vector / total,
        }


@dataclass(frozen=True)
class GPUModel:
    """A roofline + level-latency model of PCG on a data-center GPU.

    Attributes
    ----------
    peak_flops:
        Double-precision peak (V100: 7 TFLOP/s).
    mem_bandwidth:
        HBM bandwidth in bytes/s (V100: 900 GB/s).
    bandwidth_efficiency:
        Achievable fraction of peak bandwidth for sparse streams.
    kernel_launch_s:
        Cost of one kernel launch / device sync.
    level_sync_s:
        Cost per SpTRSV dependence level (sync between level kernels).
    nnz_bytes:
        Bytes streamed per nonzero (8B value + 4B index).
    """

    peak_flops: float = 7.0e12
    mem_bandwidth: float = 900.0e9
    bandwidth_efficiency: float = 0.80
    kernel_launch_s: float = 5.0e-6
    level_sync_s: float = 2.0e-6
    nnz_bytes: int = 12
    vector_bytes: int = 8

    #: Kernel launches per PCG iteration beyond SpMV/SpTRSV: dots,
    #: AXPYs, and the syncs around them (Listing 1 lines 6-12).
    vector_kernels: int = 8

    @property
    def effective_bandwidth(self) -> float:
        return self.mem_bandwidth * self.bandwidth_efficiency

    # ------------------------------------------------------------------
    def spmv_time(self, matrix: CSRMatrix) -> float:
        """One SpMV: matrix streamed once from HBM, plus a launch."""
        bytes_moved = (
            matrix.nnz * self.nnz_bytes
            + 2 * matrix.n_rows * self.vector_bytes
        )
        return bytes_moved / self.effective_bandwidth + self.kernel_launch_s

    def sptrsv_time(self, lower: CSRMatrix, n_levels: int = None) -> float:
        """One triangular solve: bandwidth plus per-level sync cost."""
        if n_levels is None:
            n_levels = level_schedule(lower).n_levels
        bytes_moved = (
            lower.nnz * self.nnz_bytes
            + 2 * lower.n_rows * self.vector_bytes
        )
        stream = bytes_moved / self.effective_bandwidth
        levels = n_levels * self.level_sync_s
        return stream + levels + self.kernel_launch_s

    def vector_time(self, n: int) -> float:
        """PCG's per-iteration vector work: launches dominate."""
        bytes_moved = 14 * n * self.vector_bytes  # ~7 vector sweeps r/w
        return (
            bytes_moved / self.effective_bandwidth
            + self.vector_kernels * self.kernel_launch_s
        )

    # ------------------------------------------------------------------
    def pcg_iteration_time(self, matrix: CSRMatrix,
                           lower: CSRMatrix) -> GPUIterationTime:
        """Seconds per PCG iteration (one SpMV + two SpTRSVs + vectors)."""
        schedule = level_schedule(lower)
        solve = (
            self.sptrsv_time(lower, schedule.n_levels)
            + self.sptrsv_time(lower, schedule.n_levels)
        )
        return GPUIterationTime(
            spmv=self.spmv_time(matrix),
            sptrsv=solve,
            vector=self.vector_time(matrix.n_rows),
        )

    def pcg_flops_per_iteration(self, matrix: CSRMatrix,
                                lower: CSRMatrix) -> int:
        """Useful FLOPs per iteration (same accounting as Azul's)."""
        return (
            spmv_flops(matrix)
            + 2 * sptrsv_flops(lower)
            + 2 * matrix.n_rows * 6
        )

    def gflops(self, matrix: CSRMatrix, lower: CSRMatrix) -> float:
        """Sustained GFLOP/s on PCG."""
        time = self.pcg_iteration_time(matrix, lower).total
        return self.pcg_flops_per_iteration(matrix, lower) / time / 1e9

    def utilization(self, matrix: CSRMatrix, lower: CSRMatrix) -> float:
        """Fraction of peak throughput achieved (Fig. 1's right axis)."""
        return self.gflops(matrix, lower) * 1e9 / self.peak_flops

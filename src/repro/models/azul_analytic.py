"""Analytic (first-order) performance model of the Azul machine.

The event simulator is exact but costs seconds per kernel; exploring
mappings at the paper's 4096-tile scale needs something cheaper.  This
model predicts kernel cycles from *static* quantities only — per-tile
operation counts, per-link traffic, and the dependence critical path —
using the classic bound composition:

    cycles ~ max(compute bound, network bound, critical path) + startup

* **compute bound**: the busiest PE's issue slots (FMACs + Adds + Sends
  it must issue, times the PE's issue cost);
* **network bound**: the busiest directed link's flit count (one flit
  per cycle per link);
* **critical path** (SpTRSV only): the longest dependence chain, each
  level paying the ALU latency plus an average hop traversal.

The ``model_validation`` experiment quantifies the model's error
against the cycle-level simulator across matrices and mappings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.torus import TorusGeometry
from repro.config import AzulConfig
from repro.core.placement import Placement
from repro.core.traffic import analyze_traffic
from repro.dataflow.vector_ops import VectorPhaseModel
from repro.graph.levels import critical_path_ops, level_schedule
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class KernelPrediction:
    """Predicted cycles of one kernel, with the contributing bounds."""

    name: str
    compute_bound: float
    network_bound: float
    critical_path: float
    startup: float

    @property
    def cycles(self) -> float:
        return max(
            self.compute_bound, self.network_bound, self.critical_path
        ) + self.startup

    def dominant_bound(self) -> str:
        """Which bound limits this kernel (``compute``/``network``/
        ``dependences``)."""
        bounds = {
            "compute": self.compute_bound,
            "network": self.network_bound,
            "dependences": self.critical_path,
        }
        return max(bounds, key=bounds.get)


@dataclass(frozen=True)
class IterationPrediction:
    """Predicted cycles of a full PCG iteration."""

    kernels: tuple
    vector_cycles: int
    flops: int
    config: AzulConfig

    @property
    def total_cycles(self) -> float:
        return sum(k.cycles for k in self.kernels) + self.vector_cycles

    def gflops(self) -> float:
        seconds = self.total_cycles / self.config.frequency_hz
        return self.flops / seconds / 1e9 if seconds > 0 else 0.0


def _per_tile_ops(rows: np.ndarray, tiles: np.ndarray, vec_tile: np.ndarray,
                  n: int, n_tiles: int, issue: int) -> float:
    """Issue slots of the busiest tile: local FMACs plus the Adds/Sends
    induced by rows it homes that are spread over other tiles."""
    fmacs = np.bincount(tiles, minlength=n_tiles).astype(np.float64)
    # Each row spread over k tiles induces ~k partial messages; Adds
    # land at the home, Sends at the sources.  Approximate both with
    # one extra op charged to the home tile per foreign source tile.
    order = np.lexsort((tiles, rows))
    sorted_rows = rows[order]
    sorted_tiles = tiles[order]
    boundaries = np.concatenate((
        [True], (sorted_rows[1:] != sorted_rows[:-1])
        | (sorted_tiles[1:] != sorted_tiles[:-1])
    ))
    unique_rows = sorted_rows[boundaries]
    unique_tiles = sorted_tiles[boundaries]
    extra = np.zeros(n_tiles)
    foreign = unique_tiles != vec_tile[unique_rows]
    np.add.at(extra, vec_tile[unique_rows[foreign]], 1.0)  # Add at home
    np.add.at(extra, unique_tiles[foreign], 1.0)           # Send at source
    return float((fmacs + extra).max()) * issue


def predict_spmv(matrix: CSRMatrix, placement: Placement,
                 torus: TorusGeometry, config: AzulConfig,
                 traffic=None) -> KernelPrediction:
    """Predict SpMV cycles from placement statistics."""
    n = matrix.n_rows
    rows = np.repeat(np.arange(n), matrix.row_nnz())
    compute = _per_tile_ops(
        rows, placement.a_tile, placement.vec_tile, n,
        config.num_tiles, 1,
    )
    if traffic is None:
        traffic = analyze_traffic(
            placement, matrix, matrix.lower_triangle(), torus
        )
    spmv_traffic = traffic.kernels[0]
    network = max(
        list(spmv_traffic.per_link.values()) or [0]
    ) * 1.0
    startup = (
        config.sram_access_cycles + config.fmac_latency_cycles
        + torus.reduction_depth() * config.hop_cycles
    )
    return KernelPrediction(
        name="spmv",
        compute_bound=compute,
        network_bound=network,
        critical_path=0.0,
        startup=startup,
    )


def predict_sptrsv(lower: CSRMatrix, placement: Placement,
                   torus: TorusGeometry, config: AzulConfig,
                   kernel_traffic=None, transpose: bool = False,
                   ) -> KernelPrediction:
    """Predict triangular-solve cycles including the dependence bound."""
    n = lower.n_rows
    rows = np.repeat(np.arange(n), lower.row_nnz())
    compute = _per_tile_ops(
        rows, placement.l_tile, placement.vec_tile, n,
        config.num_tiles, 1,
    )
    network = 0.0
    if kernel_traffic is not None:
        network = max(list(kernel_traffic.per_link.values()) or [0]) * 1.0
    # Dependence bound: the weighted critical path pays one issue slot
    # per op; each level additionally pays ALU latency plus an average
    # traversal toward the next dependent row.
    schedule = level_schedule(lower)
    chain_ops = critical_path_ops(lower)
    avg_hops = (torus.rows + torus.cols) / 4.0
    per_level_latency = (
        config.sram_access_cycles + config.fmac_latency_cycles
        + avg_hops * config.hop_cycles
    )
    critical = chain_ops + schedule.n_levels * per_level_latency
    return KernelPrediction(
        name="sptrsv_upper" if transpose else "sptrsv_lower",
        compute_bound=compute,
        network_bound=network,
        critical_path=critical,
        startup=config.sram_access_cycles + config.fmac_latency_cycles,
    )


def predict_iteration(matrix: CSRMatrix, lower: CSRMatrix,
                      placement: Placement, config: AzulConfig,
                      ) -> IterationPrediction:
    """Predict a full PCG iteration's cycles and throughput."""
    from repro.comm import make_geometry
    from repro.sparse.ops import spmv_flops, sptrsv_flops

    torus = make_geometry(config)
    traffic = analyze_traffic(placement, matrix, lower, torus)
    spmv = predict_spmv(matrix, placement, torus, config, traffic=traffic)
    forward = predict_sptrsv(
        lower, placement, torus, config,
        kernel_traffic=traffic.kernels[1],
    )
    backward = predict_sptrsv(
        lower, placement, torus, config,
        kernel_traffic=traffic.kernels[2], transpose=True,
    )
    vector = VectorPhaseModel(
        vec_tile=placement.vec_tile, torus=torus, config=config
    )
    flops = (
        spmv_flops(matrix) + 2 * sptrsv_flops(lower)
        + vector.flops(matrix.n_rows)
    )
    return IterationPrediction(
        kernels=(spmv, forward, backward),
        vector_cycles=vector.cycles(),
        flops=flops,
        config=config,
    )

"""Area estimation (paper Table V, Sec. VI-E).

Component areas at 7nm from the paper's synthesis and modeling flow:
the custom PE synthesized on ASAP7, routers via DSENT, SRAM at the
published 7nm macro density of 3.75 MB/mm^2, and an HBM2e-PHY-sized I/O
block.  For the paper's 4096-tile configuration this reproduces the
~155 mm^2 total of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AzulConfig

#: Synthesized PE area at 7nm (Table V).
PE_AREA_MM2 = 0.0043
#: Router area at 7nm from DSENT scaling (Table V).
ROUTER_AREA_MM2 = 0.0016
#: Fabricated 7nm SRAM macro density (Yokoyama et al.): 3.75 MB/mm^2.
SRAM_DENSITY_MB_PER_MM2 = 3.75
#: HBM2e PHY area for the 512 GB/s I/O interface (Table V).
IO_AREA_MM2 = 15.0


@dataclass(frozen=True)
class AreaReport:
    """Per-component chip area in mm^2 (the Table V rows)."""

    pes: float
    routers: float
    srams: float
    io: float

    @property
    def total(self) -> float:
        return self.pes + self.routers + self.srams + self.io

    def rows(self) -> list:
        """(component, area_mm2) rows in Table V order."""
        return [
            ("PEs", self.pes),
            ("Routers", self.routers),
            ("SRAMs", self.srams),
            ("I/O", self.io),
            ("Total", self.total),
        ]


def area_report(config: AzulConfig = None) -> AreaReport:
    """Estimate chip area for a machine configuration."""
    config = config or AzulConfig()
    tiles = config.num_tiles
    sram_mb_per_tile = config.sram_bytes_per_tile / (1024 * 1024)
    return AreaReport(
        pes=tiles * PE_AREA_MM2,
        routers=tiles * ROUTER_AREA_MM2,
        srams=tiles * sram_mb_per_tile / SRAM_DENSITY_MB_PER_MM2,
        io=IO_AREA_MM2,
    )

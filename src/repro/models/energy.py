"""Energy constants and per-event energy model (Sec. VI-E).

The paper combines CACTI SRAM energies (10.9 pJ per 96-bit read of a
36 KB macro, scaled to 7nm), DSENT NoC energies, and synthesis power for
the PE, with activity factors from simulation.  The constants below
follow those sources; leakage is calibrated so the 4096-tile machine's
idle floor matches the leakage band visible in Fig. 24.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (joules) and leakage.

    Attributes
    ----------
    accum_sram_read_j:
        96-bit access to the 36 KB Accumulator SRAM (10.9 pJ, CACTI).
    data_sram_read_j:
        96-bit access to the 72 KB Data SRAM (scaled up from the 36 KB
        figure by the usual ~sqrt-capacity growth).
    fmac_j:
        One double-precision FMAC in the synthesized PE at 7nm.
    noc_hop_j:
        Moving one 96-bit flit one hop (router traversal + link).
    leakage_w_per_tile:
        Static power per tile (PE + router + SRAM periphery).
    """

    accum_sram_read_j: float = 10.9e-12
    data_sram_read_j: float = 15.4e-12
    fmac_j: float = 12.0e-12
    noc_hop_j: float = 5.0e-12
    leakage_w_per_tile: float = 6.0e-3

    # ------------------------------------------------------------------
    def sram_energy(self, fmacs: int, adds: int, muls: int,
                    sends: int) -> float:
        """SRAM energy of a kernel's operations.

        Each FMAC reads the Data SRAM (nonzero fetch) and performs an
        Accumulator SRAM read-modify-write; Adds/Muls touch the
        accumulator; Sends read the value being shipped.
        """
        data_accesses = fmacs + sends
        accum_accesses = 2 * (fmacs + adds) + muls
        return (
            data_accesses * self.data_sram_read_j
            + accum_accesses * self.accum_sram_read_j
        )

    def compute_energy(self, fmacs: int, adds: int, muls: int) -> float:
        """ALU energy (Adds/Muls are cheaper than full FMACs)."""
        return self.fmac_j * (fmacs + 0.5 * adds + 0.5 * muls)

    def noc_energy(self, link_hops: int) -> float:
        """Network energy for a number of single-hop flit traversals."""
        return link_hops * self.noc_hop_j

    def leakage_power(self, n_tiles: int) -> float:
        """Total static power in watts."""
        return n_tiles * self.leakage_w_per_tile

"""Power estimation from simulation activity factors (Fig. 24).

Combines the :class:`~repro.models.energy.EnergyModel` event energies
with an :class:`~repro.sim.machine.IterationResult`'s operation and
link-activation counts: dynamic power is per-iteration energy divided by
per-iteration time, plus leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AzulConfig
from repro.models.energy import EnergyModel


@dataclass(frozen=True)
class PowerReport:
    """Watts by component (the Fig. 24 stack)."""

    sram: float
    compute: float
    noc: float
    leakage: float

    @property
    def total(self) -> float:
        return self.sram + self.compute + self.noc + self.leakage

    def as_dict(self) -> dict:
        return {
            "sram": self.sram,
            "compute": self.compute,
            "noc": self.noc,
            "leakage": self.leakage,
            "total": self.total,
        }


def power_report(iteration_result, config: AzulConfig = None,
                 energy: EnergyModel = None) -> PowerReport:
    """Estimate power while running one matrix's PCG steady state."""
    config = config or iteration_result.config or AzulConfig()
    energy = energy or EnergyModel()
    seconds = iteration_result.total_cycles / config.frequency_hz
    if seconds <= 0:
        raise ValueError("iteration result has zero duration")
    ops = iteration_result.op_totals()
    sram_j = energy.sram_energy(
        ops["fmac"], ops["add"], ops["mul"], ops["send"]
    )
    compute_j = energy.compute_energy(ops["fmac"], ops["add"], ops["mul"])
    noc_j = energy.noc_energy(iteration_result.link_activations())
    return PowerReport(
        sram=sram_j / seconds,
        compute=compute_j / seconds,
        noc=noc_j / seconds,
        leakage=energy.leakage_power(config.num_tiles),
    )

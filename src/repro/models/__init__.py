"""Analytic models of baseline architectures and of Azul's area/power.

The paper models its non-simulated baselines analytically (ALRESCHA as
a full-utilization memory-bandwidth-bound accelerator, Sec. VI-A) and
derives Azul's area and power from synthesis constants plus simulation
activity factors (Sec. VI-E).  This subpackage reproduces those models;
the GPU model is a calibrated roofline standing in for the V100+Ginkgo
measurements.
"""

from repro.models.gpu import GPUModel, GPUIterationTime
from repro.models.alrescha import AlreschaModel
from repro.models.area import AreaReport, area_report
from repro.models.energy import EnergyModel
from repro.models.power import PowerReport, power_report
from repro.models.azul_analytic import (
    IterationPrediction,
    KernelPrediction,
    predict_iteration,
)

__all__ = [
    "GPUModel",
    "GPUIterationTime",
    "AlreschaModel",
    "AreaReport",
    "area_report",
    "EnergyModel",
    "PowerReport",
    "power_report",
    "KernelPrediction",
    "IterationPrediction",
    "predict_iteration",
]

"""ALRESCHA baseline model (Sec. VI-A, baseline 2).

The paper models ALRESCHA generously: a full-utilization accelerator
that completely saturates its 288 GB/s main-memory bandwidth, with
perfect reuse of all vectors, so the only memory traffic is the sparse
matrices streamed once per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmv_flops, sptrsv_flops


@dataclass(frozen=True)
class AlreschaModel:
    """Bandwidth-bound accelerator model.

    Attributes
    ----------
    mem_bandwidth:
        Main-memory bandwidth (288 GB/s in the ALRESCHA paper).
    nnz_bytes:
        Bytes streamed per matrix nonzero.
    """

    mem_bandwidth: float = 288.0e9
    nnz_bytes: int = 12

    def pcg_iteration_time(self, matrix: CSRMatrix,
                           lower: CSRMatrix) -> float:
        """Seconds per iteration: A once (SpMV) + L twice (two solves)."""
        bytes_moved = (matrix.nnz + 2 * lower.nnz) * self.nnz_bytes
        return bytes_moved / self.mem_bandwidth

    def gflops(self, matrix: CSRMatrix, lower: CSRMatrix) -> float:
        """Sustained GFLOP/s on PCG.

        Counts only the matrix-kernel FLOPs (vector work is assumed
        free and overlapped), which bounds throughput at
        ``2 FLOPs / nnz_bytes * bandwidth`` — the ~48 GFLOP/s ceiling
        the paper cites.
        """
        flops = spmv_flops(matrix) + 2 * sptrsv_flops(lower)
        return flops / self.pcg_iteration_time(matrix, lower) / 1e9

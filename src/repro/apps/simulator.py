"""Generic physical-system simulation harness (paper Fig. 8).

The loop:

    solve A x = b  ->  update b (and optionally A's values)  ->  next step

A *model* supplies the system matrix, the initial right-hand side, and
the update rules; the harness runs the timestep loop with warm-started
PCG, refreshes the preconditioner when the model says A drifted enough,
and (optionally) accounts the time a mapped Azul machine would take —
demonstrating the paper's amortization story: one expensive mapping,
reused across every timestep because the sparsity pattern is static.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.precond import IncompleteCholesky
from repro.solvers import SolveOptions, pcg
from repro.sparse.csr import CSRMatrix


@dataclass
class TimestepRecord:
    """Per-timestep solver statistics."""

    step: int
    iterations: int
    residual_norm: float
    preconditioner_refreshed: bool


@dataclass
class SimulationTrace:
    """Full-run record returned by the harness."""

    records: list = field(default_factory=list)
    x: np.ndarray = None

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.records)

    @property
    def n_steps(self) -> int:
        return len(self.records)

    @property
    def refresh_count(self) -> int:
        return sum(r.preconditioner_refreshed for r in self.records)


@dataclass
class AzulExecutionEstimate:
    """Accelerator-time accounting for a simulation run.

    ``cycles_per_iteration`` comes from one steady-state simulation of
    the mapped PCG iteration; every timestep's solve reuses it (static
    pattern + static mapping).
    """

    cycles_per_iteration: int
    frequency_hz: float
    mapping_seconds: float = 0.0

    def solve_seconds(self, total_iterations: int) -> float:
        """Accelerator time for the whole run's solves."""
        return (
            total_iterations * self.cycles_per_iteration / self.frequency_hz
        )

    def amortization_steps(self, iterations_per_step: float) -> float:
        """Timesteps needed for mapping cost to drop below 1% of solve
        time — the Sec. VI-D break-even measure."""
        per_step = self.solve_seconds(iterations_per_step)
        if per_step <= 0:
            return float("inf")
        return 0.01 * self.mapping_seconds / per_step


class PhysicalSystemSimulator:
    """Timestep loop around an iterative solver (Fig. 8).

    Parameters
    ----------
    model:
        An object providing:

        * ``initial_matrix() -> CSRMatrix`` — the system matrix A;
        * ``initial_state() -> ndarray`` — x at t=0;
        * ``rhs(x) -> ndarray`` — b for the next solve, from the state;
        * optionally ``update_values(matrix, x) -> CSRMatrix`` — new A
          *values* on the same pattern (return the same object if A is
          static);
        * optionally ``needs_refresh(drift) -> bool`` — whether the
          preconditioner should be rebuilt given relative value drift.
    options:
        Solver options for the per-step PCG solves.
    """

    def __init__(self, model, options: SolveOptions = None):
        self.model = model
        self.options = options or SolveOptions(tol=1e-8)
        self.matrix = model.initial_matrix()
        if self.matrix.shape[0] != self.matrix.shape[1]:
            raise ReproError("system matrix must be square")
        self._pattern = (
            self.matrix.indptr.copy(), self.matrix.indices.copy()
        )
        self._reference_values = self.matrix.data.copy()
        self.preconditioner = IncompleteCholesky(self.matrix)

    # ------------------------------------------------------------------
    def _maybe_update_matrix(self, x: np.ndarray) -> bool:
        """Apply the model's A-update; returns True if M was rebuilt."""
        update = getattr(self.model, "update_values", None)
        if update is None:
            return False
        updated = update(self.matrix, x)
        if updated is self.matrix:
            return False
        indptr, indices = self._pattern
        if not (
            np.array_equal(updated.indptr, indptr)
            and np.array_equal(updated.indices, indices)
        ):
            raise ReproError(
                "model changed A's sparsity pattern; Sec. II-C requires a "
                "static pattern (only values may change)"
            )
        self.matrix = updated
        drift = float(
            np.linalg.norm(updated.data - self._reference_values)
            / np.linalg.norm(self._reference_values)
        )
        needs_refresh = getattr(self.model, "needs_refresh", None)
        if needs_refresh is not None and needs_refresh(drift):
            self.preconditioner = IncompleteCholesky(self.matrix)
            self._reference_values = self.matrix.data.copy()
            return True
        return False

    def run(self, n_steps: int) -> SimulationTrace:
        """Execute the timestep loop."""
        trace = SimulationTrace()
        x = np.asarray(self.model.initial_state(), dtype=np.float64)
        for step in range(n_steps):
            b = self.model.rhs(x)
            result = pcg(
                self.matrix, b, self.preconditioner,
                options=self.options, x0=x,
            )
            x = result.x
            refreshed = self._maybe_update_matrix(x)
            trace.records.append(TimestepRecord(
                step=step,
                iterations=result.iterations,
                residual_norm=result.residual_norm,
                preconditioner_refreshed=refreshed,
            ))
        trace.x = x
        return trace

    # ------------------------------------------------------------------
    def azul_estimate(self, config=None, preset: str = "speed",
                      ) -> AzulExecutionEstimate:
        """Map the system onto Azul and time one steady-state iteration.

        Returns the per-iteration cycle cost to combine with a
        :class:`SimulationTrace`'s iteration totals.
        """
        import time

        from repro.config import AzulConfig
        from repro.core import map_azul
        from repro.hypergraph import PartitionerOptions
        from repro.sim import AzulMachine

        config = config or AzulConfig()
        lower = self.preconditioner.lower_factor()
        options = (
            PartitionerOptions.speed(seed=0) if preset == "speed"
            else PartitionerOptions.quality(seed=0)
        )
        start = time.perf_counter()
        placement = map_azul(
            self.matrix, lower, config.num_tiles, options=options
        )
        mapping_seconds = time.perf_counter() - start
        machine = AzulMachine(config)
        b = self.model.rhs(self.model.initial_state())
        timing = machine.simulate_pcg(
            self.matrix, lower, placement, b, check=False
        )
        return AzulExecutionEstimate(
            cycles_per_iteration=timing.total_cycles,
            frequency_hz=config.frequency_hz,
            mapping_seconds=mapping_seconds,
        )

"""Heat-transfer model: the paper's simplest end-to-end category.

Implicit-Euler heat conduction on a 2D plate: each timestep solves
``(I + dt*K) x_next = x`` where ``K`` is the grid Laplacian.  A is
static — "in some cases, for example heat transfer, A is static, and
only b changes over time; b_next is calculated by a sparse matrix-
vector product with the resulting x" (Sec. II-C).  Here ``M = I`` so
the b-update is the identity SpMV.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import grid_laplacian_2d


class HeatTransferModel:
    """2D implicit-Euler heat conduction.

    Parameters
    ----------
    nx, ny:
        Plate resolution.
    dt:
        Timestep length.
    conductivity:
        Thermal conductivity scaling of the Laplacian.
    hotspot:
        ``(row_lo, row_hi, col_lo, col_hi, temperature)`` of the initial
        hot region; defaults to a centered square at 100 degrees.
    """

    def __init__(self, nx: int = 24, ny: int = 24, dt: float = 0.1,
                 conductivity: float = 1.0, hotspot=None):
        self.nx = nx
        self.ny = ny
        self.dt = dt
        self.conductivity = conductivity
        if hotspot is None:
            lo_r, hi_r = nx // 3, 2 * nx // 3
            lo_c, hi_c = ny // 3, 2 * ny // 3
            hotspot = (lo_r, hi_r, lo_c, hi_c, 100.0)
        self.hotspot = hotspot

    # ------------------------------------------------------------------
    def initial_matrix(self) -> CSRMatrix:
        """A = I + dt * conductivity * K (SPD, static)."""
        laplacian = grid_laplacian_2d(self.nx, self.ny, shift=0.0)
        data = laplacian.data * (self.dt * self.conductivity)
        rows = np.repeat(np.arange(laplacian.n_rows), laplacian.row_nnz())
        data[rows == laplacian.indices] += 1.0
        return CSRMatrix(
            laplacian.indptr.copy(), laplacian.indices.copy(), data,
            laplacian.shape,
        )

    def initial_state(self) -> np.ndarray:
        """Temperature field with the configured hotspot."""
        field = np.zeros((self.nx, self.ny))
        lo_r, hi_r, lo_c, hi_c, temperature = self.hotspot
        field[lo_r:hi_r, lo_c:hi_c] = temperature
        return field.ravel()

    def rhs(self, x: np.ndarray) -> np.ndarray:
        """b = M x with M = I: the previous temperature field."""
        return np.array(x, copy=True)

    # A is static: no update_values / needs_refresh hooks.

    # ------------------------------------------------------------------
    def total_heat(self, x: np.ndarray) -> float:
        """Integral of the temperature field (conserved on an insulated
        plate up to the implicit scheme's boundary handling)."""
        return float(np.sum(x))

"""End-to-end applications of sparse iterative solvers (paper Sec. II-C).

The paper motivates Azul with physical-system simulators (Fig. 8):
timestep loops where each step solves ``A x = b``, then updates ``b``
(and sometimes A's values) from ``x``.  This subpackage provides that
harness — :class:`~repro.apps.simulator.PhysicalSystemSimulator` — plus
two concrete models matching the paper's taxonomy:

* :mod:`repro.apps.heat` — heat transfer: A static, only b changes
  (the simplest Sec. II-C category);
* :mod:`repro.apps.structural` — rigid-body-style stiffness: A's
  *values* are a function of the state while its *pattern* is static,
  with periodic preconditioner refresh.
"""

from repro.apps.simulator import (
    AzulExecutionEstimate,
    PhysicalSystemSimulator,
    SimulationTrace,
    TimestepRecord,
)
from repro.apps.heat import HeatTransferModel
from repro.apps.structural import StructuralModel

__all__ = [
    "PhysicalSystemSimulator",
    "SimulationTrace",
    "TimestepRecord",
    "AzulExecutionEstimate",
    "HeatTransferModel",
    "StructuralModel",
]

"""Structural-dynamics model: state-dependent stiffness values.

The paper's middle category (Sec. II-C): "in many rigid-body
simulations, A_next's nonzero values are a linear function of x" while
the sparsity pattern — the mesh connectivity — never changes.  This
model scales the off-diagonal stiffness values by a smooth function of
the state's energy and refreshes the preconditioner only when values
have drifted past a threshold, matching the paper's observation that
preconditioner updates "can be infrequent".
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import random_geometric_fem


class StructuralModel:
    """Mesh stiffness system with state-dependent values.

    Parameters
    ----------
    n_nodes:
        Mesh nodes (each carries ``dofs`` degrees of freedom).
    dofs:
        Degrees of freedom per node.
    softening:
        How strongly the state modulates stiffness values (0 disables
        updates, recovering the static case).
    refresh_threshold:
        Relative value drift beyond which the preconditioner is
        rebuilt.
    """

    def __init__(self, n_nodes: int = 120, dofs: int = 2,
                 softening: float = 0.02, refresh_threshold: float = 0.05,
                 seed: int = 0):
        self.softening = softening
        self.refresh_threshold = refresh_threshold
        self._base = random_geometric_fem(
            n_nodes, avg_degree=6, dofs_per_node=dofs, seed=seed
        )
        self._rng = np.random.default_rng(seed + 1)
        self._load = self._rng.standard_normal(self._base.n_rows)

    # ------------------------------------------------------------------
    def initial_matrix(self) -> CSRMatrix:
        """The undeformed stiffness matrix."""
        return CSRMatrix(
            self._base.indptr.copy(), self._base.indices.copy(),
            self._base.data.copy(), self._base.shape,
        )

    def initial_state(self) -> np.ndarray:
        return np.zeros(self._base.n_rows)

    def rhs(self, x: np.ndarray) -> np.ndarray:
        """External load plus a restoring component of the state."""
        return self._load + 0.5 * x

    def update_values(self, matrix: CSRMatrix, x: np.ndarray) -> CSRMatrix:
        """New stiffness values: linear modulation by state energy.

        The *pattern* (mesh connectivity) is untouched; only values
        scale — the floppy-eared-bunny property of Sec. II-C.
        """
        if self.softening == 0.0:
            return matrix
        energy = float(np.dot(x, x)) / max(len(x), 1)
        factor = 1.0 + self.softening * np.tanh(energy)
        rows = np.repeat(np.arange(self._base.n_rows), self._base.row_nnz())
        data = self._base.data.copy()
        off_diag = rows != self._base.indices
        data[off_diag] *= factor
        # Keep diagonal dominance (hence SPD) regardless of the factor.
        row_abs = np.zeros(self._base.n_rows)
        np.add.at(row_abs, rows[off_diag], np.abs(data[off_diag]))
        data[~off_diag] = row_abs + 1.0
        return CSRMatrix(
            self._base.indptr.copy(), self._base.indices.copy(), data,
            self._base.shape,
        )

    def needs_refresh(self, drift: float) -> bool:
        """Rebuild IC(0) only after significant value drift."""
        return drift > self.refresh_threshold

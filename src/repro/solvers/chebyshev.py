"""Chebyshev iteration: a Krylov-free, inner-product-free solver.

A classical polynomial iterative method (Saad, "Iterative Methods for
Sparse Linear Systems", Alg. 12.1).  Its per-iteration kernel mix is a
single SpMV plus AXPYs — *no dot products* — which makes it attractive
exactly where the paper notes reductions hurt (Sec. II-A: on GPUs,
"reductions ... consume non-trivial amounts of time"; on Azul they are
all-to-all tree traversals).  It needs eigenvalue bounds of A, supplied
or estimated from Gershgorin discs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.kernels import KernelCounter
from repro.solvers.tracking import ConvergenceHistory
from repro.sparse.csr import CSRMatrix


def gershgorin_bounds(matrix: CSRMatrix):
    """Eigenvalue bounds ``(lmin, lmax)`` from Gershgorin discs.

    For the diagonally dominant SPD matrices of the benchmark suite,
    the lower bound is strictly positive.
    """
    n = matrix.n_rows
    rows = np.repeat(np.arange(n), matrix.row_nnz())
    off = rows != matrix.indices
    radius = np.zeros(n)
    np.add.at(radius, rows[off], np.abs(matrix.data[off]))
    diag = matrix.diagonal()
    return float((diag - radius).min()), float((diag + radius).max())


def chebyshev(matrix: CSRMatrix, b, bounds=None,
              options: SolveOptions = None, x0=None) -> SolveResult:
    """Solve ``A x = b`` with Chebyshev iteration.

    Parameters
    ----------
    bounds:
        ``(lmin, lmax)`` eigenvalue bounds; estimated by Gershgorin when
        omitted.  Tighter bounds converge faster; an ``lmin <= 0`` bound
        is rejected (the method requires a definite interval).
    """
    options = options or SolveOptions()
    b = np.asarray(b, dtype=np.float64)
    if bounds is None:
        bounds = gershgorin_bounds(matrix)
    lmin, lmax = bounds
    if lmin <= 0 or lmax <= lmin:
        raise ReproError(
            f"Chebyshev needs 0 < lmin < lmax; got ({lmin:g}, {lmax:g})"
        )
    counter = KernelCounter()
    history = ConvergenceHistory()

    theta = (lmax + lmin) / 2.0
    delta = (lmax - lmin) / 2.0
    sigma1 = theta / delta
    rho = 1.0 / sigma1

    n = matrix.n_rows
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - counter.spmv(matrix, x) if x0 is not None else b.copy()
    d = r / theta

    b_norm = float(np.linalg.norm(b))
    threshold = options.tol * (b_norm if b_norm > 0 else 1.0)
    residual_norm = counter.norm(r)
    if options.record_history:
        history.record(residual_norm)

    iterations = 0
    converged = residual_norm <= threshold
    while not converged and iterations < options.max_iterations:
        x = counter.axpy(1.0, d, x)
        r = counter.axpy(-1.0, counter.spmv(matrix, d), r)
        rho_new = 1.0 / (2.0 * sigma1 - rho)
        d = counter.scale_add(
            (2.0 * rho_new / delta) * r, rho_new * rho, d
        )
        rho = rho_new
        iterations += 1
        residual_norm = counter.norm(r)
        if options.record_history:
            history.record(residual_norm)
        converged = residual_norm <= threshold

    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norm=residual_norm,
        history=history,
        flops=counter.snapshot(),
    )

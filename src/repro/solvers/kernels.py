"""FLOP-accounted kernel wrappers used by the solvers.

The performance analysis (Figs. 3, 21, 22) needs FLOPs broken down by
kernel class (SpMV, SpTRSV, vector ops).  Solvers route all their linear
algebra through a :class:`KernelCounter`, which both executes the
operation and accumulates the accounting.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    axpy_flops,
    dot_flops,
    spmv_flops,
    sptrsv_flops,
    sptrsv_lower,
    sptrsv_upper,
)


class KernelCounter:
    """Executes kernels while accumulating per-class FLOP counts.

    Counts follow the paper's convention (FMAC = 2 FLOPs) and are split
    into the three classes of Fig. 3: ``spmv``, ``sptrsv``, ``vector``.
    Call counts per kernel are tracked as well.
    """

    def __init__(self):
        self.flops = {"spmv": 0, "sptrsv": 0, "vector": 0}
        self.calls = {"spmv": 0, "sptrsv": 0, "vector": 0}

    # -- sparse kernels -------------------------------------------------
    def spmv(self, matrix: CSRMatrix, x) -> np.ndarray:
        """Counted ``y = A @ x``."""
        self.flops["spmv"] += spmv_flops(matrix)
        self.calls["spmv"] += 1
        return matrix.spmv(x)

    def sptrsv_lower(self, lower: CSRMatrix, b) -> np.ndarray:
        """Counted forward triangular solve."""
        self.flops["sptrsv"] += sptrsv_flops(lower)
        self.calls["sptrsv"] += 1
        return sptrsv_lower(lower, b)

    def sptrsv_upper(self, upper: CSRMatrix, b) -> np.ndarray:
        """Counted backward triangular solve."""
        self.flops["sptrsv"] += sptrsv_flops(upper)
        self.calls["sptrsv"] += 1
        return sptrsv_upper(upper, b)

    # -- vector kernels -------------------------------------------------
    def dot(self, a, b) -> float:
        """Counted dot product."""
        self.flops["vector"] += dot_flops(len(a))
        self.calls["vector"] += 1
        return float(np.dot(a, b))

    def axpy(self, alpha: float, x, y) -> np.ndarray:
        """Counted ``y + alpha * x`` (returns a new vector)."""
        self.flops["vector"] += axpy_flops(len(x))
        self.calls["vector"] += 1
        return y + alpha * x

    def scale_add(self, x, beta: float, y) -> np.ndarray:
        """Counted ``x + beta * y`` (PCG's search-direction update)."""
        self.flops["vector"] += axpy_flops(len(x))
        self.calls["vector"] += 1
        return x + beta * y

    def norm(self, x) -> float:
        """Counted 2-norm."""
        self.flops["vector"] += dot_flops(len(x))
        self.calls["vector"] += 1
        return float(np.linalg.norm(x))

    def snapshot(self) -> dict:
        """A copy of the per-class FLOP totals."""
        return dict(self.flops)

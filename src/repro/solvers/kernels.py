"""FLOP-accounted kernel wrappers used by the solvers.

The performance analysis (Figs. 3, 21, 22) needs FLOPs broken down by
kernel class (SpMV, SpTRSV, vector ops).  Solvers route all their linear
algebra through a :class:`KernelCounter`, which both executes the
operation and accumulates the accounting.

Numeric execution of the sparse kernels is delegated to a
:class:`~repro.sparse.ops.KernelEngine` resolved by name through the
kernel registry (:data:`repro.sparse.ops.KERNELS`): the default
``"level"`` engine runs level-scheduled batched kernels over cached
triangular schedules, while ``kernels="reference"`` (or
``AZUL_SOLVER_REFERENCE=1``) selects the golden per-row loops.  The
sparse kernels carry ``solve.kernel.*`` observability timers and
counters here — one span per kernel invocation; the engines' inner
level loops stay uninstrumented so the hot path is untouched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.obs as obs
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    KernelEngine,
    axpy_flops,
    dot_flops,
    resolve_kernels,
    spmv_flops,
    sptrsv_flops,
)


class KernelCounter:
    """Executes kernels while accumulating per-class FLOP counts.

    Counts follow the paper's convention (FMAC = 2 FLOPs) and are split
    into the three classes of Fig. 3: ``spmv``, ``sptrsv``, ``vector``.
    Call counts per kernel are tracked as well.

    Parameters
    ----------
    kernels:
        Kernel-engine name (``"level"``, ``"reference"``); ``None``
        resolves the default (``AZUL_SOLVER_REFERENCE=1`` forces the
        reference loops).
    """

    def __init__(self, kernels: Optional[str] = None):
        self.engine: KernelEngine = resolve_kernels(kernels)
        self.flops = {"spmv": 0, "sptrsv": 0, "vector": 0}
        self.calls = {"spmv": 0, "sptrsv": 0, "vector": 0}

    # -- sparse kernels -------------------------------------------------
    def spmv(self, matrix: CSRMatrix, x) -> np.ndarray:
        """Counted ``y = A @ x``."""
        self.flops["spmv"] += spmv_flops(matrix)
        self.calls["spmv"] += 1
        obs.counter("solve.kernel.spmv.calls")
        with obs.timer("solve.kernel.spmv", n=matrix.n_rows):
            return matrix.spmv(x)

    def sptrsv_lower(self, lower: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        """Counted forward triangular solve."""
        self.flops["sptrsv"] += sptrsv_flops(lower, unit_diagonal=unit_diagonal)
        self.calls["sptrsv"] += 1
        obs.counter("solve.kernel.sptrsv.calls")
        with obs.timer("solve.kernel.sptrsv", n=lower.n_rows,
                       direction="lower", engine=self.engine.name):
            return self.engine.sptrsv_lower(
                lower, b, unit_diagonal=unit_diagonal
            )

    def sptrsv_upper(self, upper: CSRMatrix, b,
                     unit_diagonal: bool = False) -> np.ndarray:
        """Counted backward triangular solve."""
        self.flops["sptrsv"] += sptrsv_flops(upper, unit_diagonal=unit_diagonal)
        self.calls["sptrsv"] += 1
        obs.counter("solve.kernel.sptrsv.calls")
        with obs.timer("solve.kernel.sptrsv", n=upper.n_rows,
                       direction="upper", engine=self.engine.name):
            return self.engine.sptrsv_upper(
                upper, b, unit_diagonal=unit_diagonal
            )

    # -- vector kernels -------------------------------------------------
    def dot(self, a, b) -> float:
        """Counted dot product."""
        self.flops["vector"] += dot_flops(len(a))
        self.calls["vector"] += 1
        return float(np.dot(a, b))

    def axpy(self, alpha: float, x, y) -> np.ndarray:
        """Counted ``y + alpha * x`` (returns a new vector)."""
        self.flops["vector"] += axpy_flops(len(x))
        self.calls["vector"] += 1
        return y + alpha * x

    def scale_add(self, x, beta: float, y) -> np.ndarray:
        """Counted ``x + beta * y`` (PCG's search-direction update)."""
        self.flops["vector"] += axpy_flops(len(x))
        self.calls["vector"] += 1
        return x + beta * y

    def norm(self, x) -> float:
        """Counted 2-norm."""
        self.flops["vector"] += dot_flops(len(x))
        self.calls["vector"] += 1
        return float(np.linalg.norm(x))

    def snapshot(self) -> dict:
        """A copy of the per-class FLOP totals."""
        return dict(self.flops)

"""BiCGStab solver for general (non-symmetric) systems (Table II)."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.kernels import KernelCounter
from repro.solvers.tracking import ConvergenceHistory
from repro.sparse.csr import CSRMatrix


def bicgstab(matrix: CSRMatrix, b, preconditioner: Preconditioner = None,
             options: SolveOptions = None, x0=None) -> SolveResult:
    """Solve ``A x = b`` with the stabilized bi-conjugate gradient method.

    Uses right preconditioning, so the reported residual is the true
    residual of the original system.  Each iteration performs two SpMVs
    and two preconditioner applications — the same kernel mix Azul
    accelerates (Sec. II-B).
    """
    options = options or SolveOptions()
    preconditioner = preconditioner or IdentityPreconditioner()
    b = np.asarray(b, dtype=np.float64)
    counter = KernelCounter()
    history = ConvergenceHistory()

    def apply_preconditioner(v):
        lower = preconditioner.lower_factor()
        upper = preconditioner.upper_factor()
        if lower is not None and upper is not None:
            y = counter.sptrsv_lower(
                lower, v,
                unit_diagonal=preconditioner.lower_unit_diagonal,
            )
            return counter.sptrsv_upper(upper, y)
        return preconditioner.apply(v)

    n = matrix.n_rows
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - counter.spmv(matrix, x) if x0 is not None else b.copy()
    r_hat = r.copy()
    rho_old = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    b_norm = float(np.linalg.norm(b))
    threshold = options.tol * (b_norm if b_norm > 0 else 1.0)

    residual_norm = counter.norm(r)
    if options.record_history:
        history.record(residual_norm)
    iterations = 0
    converged = residual_norm <= threshold

    while not converged and iterations < options.max_iterations:
        rho = counter.dot(r_hat, r)
        if rho == 0.0:
            break
        if iterations == 0:
            p = r.copy()
        else:
            beta = (rho / rho_old) * (alpha / omega)
            p = counter.scale_add(r, beta, p - omega * v)
        p_hat = apply_preconditioner(p)
        v = counter.spmv(matrix, p_hat)
        denom = counter.dot(r_hat, v)
        if denom == 0.0:
            break
        alpha = rho / denom
        s = counter.axpy(-alpha, v, r)
        if float(np.linalg.norm(s)) <= threshold:
            x = counter.axpy(alpha, p_hat, x)
            residual_norm = float(np.linalg.norm(s))
            iterations += 1
            if options.record_history:
                history.record(residual_norm)
            converged = True
            break
        s_hat = apply_preconditioner(s)
        t = counter.spmv(matrix, s_hat)
        tt = counter.dot(t, t)
        if tt == 0.0:
            break
        omega = counter.dot(t, s) / tt
        x = counter.axpy(alpha, p_hat, x)
        x = counter.axpy(omega, s_hat, x)
        r = counter.axpy(-omega, t, s)
        rho_old = rho
        iterations += 1
        residual_norm = counter.norm(r)
        if options.record_history:
            history.record(residual_norm)
        converged = residual_norm <= threshold
        if omega == 0.0:
            break

    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norm=residual_norm,
        history=history,
        flops=counter.snapshot(),
    )

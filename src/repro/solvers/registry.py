"""Solver/preconditioner registry (paper Table II).

Maps each (algorithm, preconditioner) pair to the sparse kernels it
needs, demonstrating that SpMV and SpTRSV cover the widely used
iterative solvers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SolverSpec:
    """One row of Table II."""

    algorithm: str
    preconditioner: str
    kernels: tuple

    def uses_sptrsv(self) -> bool:
        return "SpTRSV" in self.kernels

    def uses_spmv(self) -> bool:
        return "SpMV" in self.kernels


_TABLE = [
    SolverSpec("Conjugate Gradients", "None", ("SpMV",)),
    SolverSpec("Conjugate Gradients", "Diagonal/Jacobi", ("SpMV",)),
    SolverSpec("Conjugate Gradients", "Sym. Gauss-Seidel", ("SpMV", "SpTRSV")),
    SolverSpec("Conjugate Gradients", "Incomplete Cholesky", ("SpMV", "SpTRSV")),
    SolverSpec("Power Iteration", "None", ("SpMV",)),
    SolverSpec("SSOR", "None", ("SpTRSV",)),
    SolverSpec("BiCGStab", "None", ("SpMV",)),
    SolverSpec("BiCGStab", "Gauss-Seidel", ("SpMV", "SpTRSV")),
    SolverSpec("BiCGStab", "Incomplete LU", ("SpMV", "SpTRSV")),
]


def solver_table() -> list:
    """All rows of the Table II analog."""
    return list(_TABLE)


def kernels_for(algorithm: str, preconditioner: str = "None") -> tuple:
    """Kernels required by a given solver/preconditioner combination."""
    for spec in _TABLE:
        if (
            spec.algorithm.lower() == algorithm.lower()
            and spec.preconditioner.lower() == preconditioner.lower()
        ):
            return spec.kernels
    raise KeyError(
        f"no Table II entry for {algorithm!r} with {preconditioner!r}"
    )

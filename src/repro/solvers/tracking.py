"""Convergence tracking for iterative solvers."""

from __future__ import annotations


class ConvergenceHistory:
    """Records the residual norm at each iteration of a solve."""

    def __init__(self):
        self._residuals = []

    def record(self, residual_norm: float):
        """Append one iteration's residual norm."""
        self._residuals.append(float(residual_norm))

    @property
    def residuals(self) -> list:
        """Residual norms, one per recorded iteration."""
        return list(self._residuals)

    def __len__(self):
        return len(self._residuals)

    def reduction_factor(self) -> float:
        """Geometric-mean per-iteration residual reduction."""
        if len(self._residuals) < 2 or self._residuals[0] == 0.0:
            return 1.0
        ratio = self._residuals[-1] / self._residuals[0]
        if ratio <= 0.0:
            return 0.0
        return ratio ** (1.0 / (len(self._residuals) - 1))

    def is_monotonic(self) -> bool:
        """Whether the residual decreased at every recorded iteration."""
        return all(
            later <= earlier
            for earlier, later in zip(self._residuals, self._residuals[1:])
        )

"""Common solver types: options and results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solvers.tracking import ConvergenceHistory


@dataclass(frozen=True)
class SolveOptions:
    """Options shared by all iterative solvers.

    Attributes
    ----------
    tol:
        Relative residual tolerance: converged when
        ``||r|| <= tol * ||b||`` (matching Ginkgo's default criterion).
    max_iterations:
        Iteration budget; exceeding it marks the result unconverged.
    record_history:
        When true (default), per-iteration residual norms are recorded.
    """

    tol: float = 1e-10
    max_iterations: int = 5000
    record_history: bool = True


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The computed solution vector.
    converged:
        Whether the residual criterion was met within budget.
    iterations:
        Number of iterations executed.
    residual_norm:
        Final residual 2-norm.
    history:
        Per-iteration convergence record.
    flops:
        FLOPs executed per kernel class (keys ``"spmv"``, ``"sptrsv"``,
        ``"vector"``), from the solver's :class:`KernelCounter`.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    flops: dict = field(default_factory=dict)

    @property
    def total_flops(self) -> int:
        """Total useful FLOPs across all kernels."""
        return sum(self.flops.values())

    def flops_per_iteration(self) -> float:
        """Average useful FLOPs per iteration."""
        if self.iterations == 0:
            return 0.0
        return self.total_flops / self.iterations

"""Iterative solvers (Sec. II of the paper).

These are the functional reference implementations: they establish
ground-truth solutions and iteration counts.  The accelerator simulator
measures the *time per iteration* of the same kernel sequence; combining
both yields end-to-end performance, mirroring the paper's methodology
(its simulator is validated against Ginkgo's PCG results).
"""

from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.kernels import KernelCounter
from repro.solvers.cg import conjugate_gradient
from repro.solvers.pcg import pcg
from repro.solvers.bicgstab import bicgstab
from repro.solvers.gmres import gmres
from repro.solvers.power_iteration import power_iteration
from repro.solvers.chebyshev import chebyshev, gershgorin_bounds
from repro.solvers.registry import (
    SolverSpec,
    solver_table,
    kernels_for,
)
from repro.solvers.tracking import ConvergenceHistory

__all__ = [
    "SolveOptions",
    "SolveResult",
    "KernelCounter",
    "conjugate_gradient",
    "pcg",
    "bicgstab",
    "gmres",
    "power_iteration",
    "chebyshev",
    "gershgorin_bounds",
    "SolverSpec",
    "solver_table",
    "kernels_for",
    "ConvergenceHistory",
]

"""Preconditioned conjugate gradients (paper Listing 1).

The structure follows the paper's pseudocode exactly: one SpMV with A
and one preconditioner application (two SpTRSVs for IC(0)) per
iteration, plus a handful of vector operations.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.errors import ConvergenceError
from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.kernels import KernelCounter
from repro.solvers.tracking import ConvergenceHistory
from repro.sparse.csr import CSRMatrix


def pcg(matrix: CSRMatrix, b, preconditioner: Preconditioner = None,
        options: SolveOptions = None, x0=None,
        raise_on_divergence: bool = False) -> SolveResult:
    """Solve ``A x = b`` with preconditioned conjugate gradients.

    Parameters
    ----------
    matrix:
        SPD system matrix ``A``.
    b:
        Right-hand-side vector.
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`; defaults to the
        identity (plain CG).
    options:
        Tolerance and iteration budget.
    x0:
        Initial guess (default: zero vector, as in Listing 1).
    raise_on_divergence:
        When true, an unconverged solve raises
        :class:`~repro.errors.ConvergenceError` instead of returning an
        unconverged result.
    """
    with obs.timer("pipeline.solve", solver="pcg", n=matrix.n_rows) as ph:
        result = _pcg(matrix, b, preconditioner, options, x0)
        ph.set(iterations=result.iterations, converged=result.converged)
    obs.counter("solve.pcg.calls")
    obs.counter("solve.pcg.iterations", result.iterations)
    if raise_on_divergence and not result.converged:
        raise ConvergenceError(
            f"PCG did not converge in "
            f"{(options or SolveOptions()).max_iterations} iterations "
            f"(residual {result.residual_norm:g})",
            result=result,
        )
    return result


def _pcg(matrix: CSRMatrix, b, preconditioner: Preconditioner = None,
         options: SolveOptions = None, x0=None) -> SolveResult:
    """The Listing 1 loop (see :func:`pcg` for the public contract)."""
    options = options or SolveOptions()
    preconditioner = preconditioner or IdentityPreconditioner()
    b = np.asarray(b, dtype=np.float64)
    counter = KernelCounter()
    history = ConvergenceHistory()

    n = matrix.n_rows
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if x0 is None:
        r = b.copy()
    else:
        r = b - counter.spmv(matrix, x)
    b_norm = float(np.linalg.norm(b))
    threshold = options.tol * (b_norm if b_norm > 0 else 1.0)

    # The preconditioner application counts toward SpTRSV FLOPs when it
    # is factor-based; route it through the counter where possible.
    def apply_preconditioner(residual):
        lower = preconditioner.lower_factor()
        upper = preconditioner.upper_factor()
        if lower is not None and upper is not None:
            y = counter.sptrsv_lower(
                lower, residual,
                unit_diagonal=preconditioner.lower_unit_diagonal,
            )
            return counter.sptrsv_upper(upper, y)
        return preconditioner.apply(residual)

    z = apply_preconditioner(r)
    p = z.copy()
    rz_old = counter.dot(r, z)
    residual_norm = counter.norm(r)
    if options.record_history:
        history.record(residual_norm)

    iterations = 0
    converged = residual_norm <= threshold
    while not converged and iterations < options.max_iterations:
        ap = counter.spmv(matrix, p)
        p_ap = counter.dot(p, ap)
        if p_ap == 0.0:
            break
        alpha = rz_old / p_ap
        x = counter.axpy(alpha, p, x)
        r = counter.axpy(-alpha, ap, r)
        z = apply_preconditioner(r)
        rz_new = counter.dot(r, z)
        beta = rz_new / rz_old if rz_old != 0.0 else 0.0
        p = counter.scale_add(z, beta, p)
        rz_old = rz_new
        iterations += 1
        residual_norm = counter.norm(r)
        if options.record_history:
            history.record(residual_norm)
        converged = residual_norm <= threshold

    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norm=residual_norm,
        history=history,
        flops=counter.snapshot(),
    )

"""Restarted GMRES solver (Sec. II-B: "other iterative solvers like
GMRES ... have the same kernels and challenges")."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.kernels import KernelCounter
from repro.solvers.tracking import ConvergenceHistory
from repro.sparse.csr import CSRMatrix


def gmres(matrix: CSRMatrix, b, preconditioner: Preconditioner = None,
          options: SolveOptions = None, restart: int = 30,
          x0=None) -> SolveResult:
    """Solve ``A x = b`` with right-preconditioned restarted GMRES(m).

    Arnoldi with modified Gram-Schmidt and Givens-rotation least squares.
    ``iterations`` counts inner (Arnoldi) steps, each of which performs
    one SpMV — directly comparable to PCG iterations in kernel mix.
    """
    options = options or SolveOptions()
    preconditioner = preconditioner or IdentityPreconditioner()
    b = np.asarray(b, dtype=np.float64)
    counter = KernelCounter()
    history = ConvergenceHistory()

    def apply_preconditioner(v):
        lower = preconditioner.lower_factor()
        upper = preconditioner.upper_factor()
        if lower is not None and upper is not None:
            y = counter.sptrsv_lower(
                lower, v,
                unit_diagonal=preconditioner.lower_unit_diagonal,
            )
            return counter.sptrsv_upper(upper, y)
        return preconditioner.apply(v)

    n = matrix.n_rows
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b))
    threshold = options.tol * (b_norm if b_norm > 0 else 1.0)

    total_inner = 0
    residual_norm = float(np.linalg.norm(b - matrix.spmv(x)))
    if options.record_history:
        history.record(residual_norm)
    converged = residual_norm <= threshold

    while not converged and total_inner < options.max_iterations:
        r = b - counter.spmv(matrix, x)
        beta = float(np.linalg.norm(r))
        if beta == 0.0:
            converged = True
            break
        m = min(restart, options.max_iterations - total_inner)
        basis = np.zeros((m + 1, n))
        basis[0] = r / beta
        hessenberg = np.zeros((m + 1, m))
        cos = np.zeros(m)
        sin = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        k_used = 0

        for k in range(m):
            w = counter.spmv(matrix, apply_preconditioner(basis[k]))
            for i in range(k + 1):
                hessenberg[i, k] = counter.dot(w, basis[i])
                w = counter.axpy(-hessenberg[i, k], basis[i], w)
            hessenberg[k + 1, k] = float(np.linalg.norm(w))
            if hessenberg[k + 1, k] != 0.0:
                basis[k + 1] = w / hessenberg[k + 1, k]
            # Apply accumulated Givens rotations to the new column.
            for i in range(k):
                temp = cos[i] * hessenberg[i, k] + sin[i] * hessenberg[i + 1, k]
                hessenberg[i + 1, k] = (
                    -sin[i] * hessenberg[i, k] + cos[i] * hessenberg[i + 1, k]
                )
                hessenberg[i, k] = temp
            denom = np.hypot(hessenberg[k, k], hessenberg[k + 1, k])
            if denom == 0.0:
                k_used = k + 1
                break
            cos[k] = hessenberg[k, k] / denom
            sin[k] = hessenberg[k + 1, k] / denom
            hessenberg[k, k] = denom
            hessenberg[k + 1, k] = 0.0
            g[k + 1] = -sin[k] * g[k]
            g[k] = cos[k] * g[k]
            k_used = k + 1
            total_inner += 1
            residual_norm = abs(g[k + 1])
            if options.record_history:
                history.record(residual_norm)
            if residual_norm <= threshold or total_inner >= options.max_iterations:
                break

        # Solve the small triangular system and update x.
        if k_used > 0:
            y = np.linalg.solve(
                hessenberg[:k_used, :k_used], g[:k_used]
            )
            update = basis[:k_used].T @ y
            x = x + apply_preconditioner(update)
        residual_norm = float(np.linalg.norm(b - matrix.spmv(x)))
        converged = residual_norm <= threshold

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_inner,
        residual_norm=residual_norm,
        history=history,
        flops=counter.snapshot(),
    )

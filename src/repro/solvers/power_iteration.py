"""Power iteration for the dominant eigenpair (Table II: SpMV-only)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.kernels import KernelCounter
from repro.sparse.csr import CSRMatrix


@dataclass
class EigenResult:
    """Dominant eigenpair estimate from power iteration."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    flops: dict


def power_iteration(matrix: CSRMatrix, tol: float = 1e-10,
                    max_iterations: int = 5000, seed: int = 0) -> EigenResult:
    """Estimate the dominant eigenvalue/eigenvector of a square matrix.

    The sole kernel is SpMV, making power iteration the simplest entry
    in the paper's Table II solver family.
    """
    rng = np.random.default_rng(seed)
    counter = KernelCounter()
    v = rng.standard_normal(matrix.n_cols)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        w = counter.spmv(matrix, v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            break
        v_next = w / norm
        new_eigenvalue = counter.dot(v_next, counter.spmv(matrix, v_next))
        if abs(new_eigenvalue - eigenvalue) <= tol * max(abs(new_eigenvalue), 1.0):
            eigenvalue = new_eigenvalue
            v = v_next
            converged = True
            break
        eigenvalue = new_eigenvalue
        v = v_next
    return EigenResult(
        eigenvalue=eigenvalue,
        eigenvector=v,
        iterations=iterations,
        converged=converged,
        flops=counter.snapshot(),
    )

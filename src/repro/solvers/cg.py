"""Unpreconditioned conjugate gradients (Table II, "None")."""

from __future__ import annotations

from repro.precond.identity import IdentityPreconditioner
from repro.solvers.base import SolveOptions, SolveResult
from repro.solvers.pcg import pcg
from repro.sparse.csr import CSRMatrix


def conjugate_gradient(matrix: CSRMatrix, b, options: SolveOptions = None,
                       x0=None) -> SolveResult:
    """Solve ``A x = b`` with plain CG (PCG with identity preconditioner)."""
    return pcg(
        matrix, b,
        preconditioner=IdentityPreconditioner(),
        options=options,
        x0=x0,
    )

"""Available-parallelism estimates (paper Table I).

The paper estimates maximum available parallelism as total work divided
by critical-path length, assuming single-cycle operations and ignoring
data movement.  SpMV's critical path is the depth of a balanced
reduction over its heaviest row; SpTRSV's is the longest weighted
dependence chain through the triangular dataflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.levels import critical_path_ops
from repro.sparse.csr import CSRMatrix


def spmv_parallelism(matrix: CSRMatrix) -> float:
    """Work / critical-path for SpMV.

    All products are independent; the critical path is the tree-reduction
    depth of the densest row: ``1 + ceil(log2(max_row_nnz))``.
    """
    if matrix.nnz == 0:
        return 0.0
    max_row = int(matrix.row_nnz().max())
    critical = 1 + math.ceil(math.log2(max_row)) if max_row > 1 else 1
    return matrix.nnz / critical


def sptrsv_parallelism(lower: CSRMatrix) -> float:
    """Work / critical-path for a lower triangular solve."""
    if lower.nnz == 0:
        return 0.0
    critical = critical_path_ops(lower)
    return lower.nnz / critical if critical else 0.0


@dataclass(frozen=True)
class ParallelismReport:
    """One row of the Table I analog."""

    name: str
    spmv: float
    sptrsv_original: float
    sptrsv_permuted: float

    @property
    def coloring_gain(self) -> float:
        """How much coloring+permutation widened SpTRSV parallelism."""
        if self.sptrsv_original == 0:
            return 0.0
        return self.sptrsv_permuted / self.sptrsv_original


def parallelism_report(name: str, matrix: CSRMatrix) -> ParallelismReport:
    """Compute the Table I row for one matrix.

    Parallelism of SpMV on the full matrix, and of SpTRSV on the lower
    triangle before and after coloring+permutation.
    """
    from repro.graph.permute import color_and_permute

    original_lower = matrix.lower_triangle()
    permuted, _, _ = color_and_permute(matrix)
    permuted_lower = permuted.lower_triangle()
    return ParallelismReport(
        name=name,
        spmv=spmv_parallelism(matrix),
        sptrsv_original=sptrsv_parallelism(original_lower),
        sptrsv_permuted=sptrsv_parallelism(permuted_lower),
    )

"""Reverse Cuthill-McKee (RCM) ordering.

A classic bandwidth-reducing ordering, included as a comparison point
for the paper's coloring-based preprocessing (Sec. II-A): RCM shrinks
the band (good for cache locality and fill-in) but *preserves*
dependence chains, so unlike coloring it does not widen SpTRSV
parallelism — the ordering study (``ord_study``) quantifies this.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import NotSymmetricError
from repro.sparse.csr import CSRMatrix


def rcm_ordering(matrix: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee permutation (``new_index -> old_index``).

    BFS from a minimum-degree vertex of each connected component,
    visiting neighbors in increasing-degree order, then reversed.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise NotSymmetricError("RCM requires a square (symmetric) matrix")
    n = matrix.n_rows
    degrees = matrix.row_nnz() - 1
    visited = np.zeros(n, dtype=bool)
    order = []
    degree_rank = np.argsort(degrees, kind="stable")
    for seed in degree_rank:
        seed = int(seed)
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([seed])
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            neighbors, _ = matrix.row(vertex)
            unvisited = [
                int(u) for u in neighbors if u != vertex and not visited[u]
            ]
            unvisited.sort(key=lambda u: degrees[u])
            for u in unvisited:
                visited[u] = True
                queue.append(u)
    return np.array(order[::-1], dtype=np.int64)

"""Symmetric permutation of matrices and vectors.

Coloring produces a row order; applying it *symmetrically* (to rows and
columns) preserves symmetry and the solution space: solving
``(PAP^T)(Px) = Pb`` is equivalent to solving ``Ax = b``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Invert a permutation given as ``new_index -> old_index``."""
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(len(perm))
    return inverse


def symmetric_permute(matrix: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply ``P A P^T`` where row ``k`` of the result is old row ``perm[k]``."""
    if matrix.shape[0] != matrix.shape[1]:
        raise MatrixFormatError("symmetric permutation requires a square matrix")
    if len(perm) != matrix.n_rows:
        raise MatrixFormatError("permutation length must equal matrix size")
    inverse = inverse_permutation(np.asarray(perm, dtype=np.int64))
    coo = csr_to_coo(matrix)
    permuted = COOMatrix(
        inverse[coo.rows], inverse[coo.cols], coo.data, matrix.shape
    )
    return coo_to_csr(permuted)


def permute_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply ``P v``: element ``k`` of the result is old element ``perm[k]``."""
    return np.asarray(vector)[perm]


def color_and_permute(matrix: CSRMatrix, b=None, strategy: str = "largest_first"):
    """Color a matrix and symmetrically permute it (the paper's default
    preprocessing; applied to all inputs unless stated otherwise).

    Returns ``(permuted_matrix, permuted_b, perm)``; ``permuted_b`` is
    ``None`` when no right-hand side is given.
    """
    from repro.graph.coloring import color_permutation, greedy_coloring

    colors = greedy_coloring(matrix, strategy=strategy)
    perm = color_permutation(colors)
    permuted = symmetric_permute(matrix, perm)
    permuted_b = permute_vector(b, perm) if b is not None else None
    return permuted, permuted_b, perm

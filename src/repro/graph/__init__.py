"""Graph preprocessing: coloring, permutation, and dependence analysis.

This subpackage implements the parallelism-improving preprocessing of
Sec. II-A: treating the matrix as a graph, coloring it, and permuting
rows and columns so that same-color (independent) rows are adjacent,
which shortens SpTRSV dependence chains.  It also provides the level
scheduling and work/critical-path analysis behind Table I.
"""

from repro.graph.coloring import (
    greedy_coloring,
    color_counts,
    color_permutation,
)
from repro.graph.permute import (
    symmetric_permute,
    permute_vector,
    inverse_permutation,
    color_and_permute,
)
from repro.graph.levels import (
    level_schedule,
    level_sets,
    LevelSchedule,
)
from repro.graph.rcm import rcm_ordering
from repro.graph.parallelism import (
    spmv_parallelism,
    sptrsv_parallelism,
    parallelism_report,
    ParallelismReport,
)

__all__ = [
    "greedy_coloring",
    "color_counts",
    "color_permutation",
    "symmetric_permute",
    "permute_vector",
    "inverse_permutation",
    "color_and_permute",
    "level_schedule",
    "level_sets",
    "LevelSchedule",
    "spmv_parallelism",
    "sptrsv_parallelism",
    "parallelism_report",
    "ParallelismReport",
    "rcm_ordering",
]

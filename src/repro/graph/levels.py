"""Level scheduling of sparse triangular solves.

The dependence graph of SpTRSV (Fig. 5) assigns each row a *level*: the
length of the longest dependence chain ending at that row.  Rows in the
same level are independent and can be solved in parallel; the number of
levels bounds the solve's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotTriangularError
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class LevelSchedule:
    """Level assignment of a triangular matrix's rows.

    Attributes
    ----------
    levels:
        ``levels[i]`` is the dataflow depth of row ``i`` (0-based).
    n_levels:
        Total number of levels (critical path length in rows).
    """

    levels: np.ndarray
    n_levels: int

    def rows_in_level(self, level: int) -> np.ndarray:
        """Indices of the rows belonging to one level."""
        return np.nonzero(self.levels == level)[0]

    def level_sizes(self) -> np.ndarray:
        """Number of rows per level (the solve's parallelism profile)."""
        return np.bincount(self.levels, minlength=self.n_levels)


def level_schedule(lower: CSRMatrix) -> LevelSchedule:
    """Compute dependence levels of a lower-triangular matrix's rows.

    ``level[i] = 1 + max(level[j] for j in strictly-lower nonzeros of
    row i)``, or 0 if row i only touches the diagonal.
    """
    n = lower.n_rows
    levels = np.zeros(n, dtype=np.int64)
    indptr, indices = lower.indptr, lower.indices
    for i in range(n):
        depth = -1
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if j > i:
                raise NotTriangularError(
                    f"row {i} has an entry above the diagonal (col {j})"
                )
            if j < i and levels[j] > depth:
                depth = levels[j]
        levels[i] = depth + 1
    n_levels = int(levels.max()) + 1 if n else 0
    return LevelSchedule(levels, n_levels)


def level_sets(lower: CSRMatrix) -> list:
    """Rows grouped by level, in solve order."""
    schedule = level_schedule(lower)
    return [schedule.rows_in_level(lv) for lv in range(schedule.n_levels)]


def critical_path_ops(lower: CSRMatrix) -> int:
    """Length of the weighted critical path through the SpTRSV dataflow.

    Each row costs as many operations as it has nonzeros (its FMACs plus
    the final scale by the reciprocal diagonal are serialized within the
    row); the critical path is the longest such weighted chain.  This is
    the denominator of the paper's Table I parallelism estimate.
    """
    n = lower.n_rows
    path = np.zeros(n, dtype=np.int64)
    indptr, indices = lower.indptr, lower.indices
    for i in range(n):
        row_cost = indptr[i + 1] - indptr[i]
        longest_parent = 0
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if j < i and path[j] > longest_parent:
                longest_parent = path[j]
        path[i] = longest_parent + row_cost
    return int(path.max()) if n else 0

"""Greedy graph coloring of sparse-matrix adjacency (Sec. II-A, Fig. 6).

Rows with the same color share no nonzero coupling, so after permuting
same-color rows to be adjacent, the lower triangle's dependence graph
has at most one level per color.  The paper colors matrices with
networkx's greedy coloring; we provide the same strategies through
networkx plus a self-contained implementation that needs no graph
conversion.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotSymmetricError
from repro.sparse.csr import CSRMatrix


def greedy_coloring(matrix: CSRMatrix, strategy: str = "largest_first") -> np.ndarray:
    """Color the adjacency graph of a symmetric sparse matrix.

    Parameters
    ----------
    matrix:
        Square matrix whose off-diagonal pattern defines the graph.
        The pattern must be structurally symmetric (guaranteed for the
        SPD matrices iterative solvers consume).
    strategy:
        ``"largest_first"`` (default, matches the paper's use of
        networkx greedy coloring), ``"natural"`` (index order),
        ``"smallest_last"``, or ``"dsatur"`` (saturation-degree
        ordering, typically fewest colors).

    Returns
    -------
    ndarray of int
        ``colors[i]`` is the color of row/vertex ``i``; colors are
        contiguous integers starting at 0.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise NotSymmetricError("coloring requires a square matrix")
    n = matrix.n_rows
    degrees = matrix.row_nnz() - 1  # exclude the diagonal
    if strategy == "dsatur":
        return _dsatur_coloring(matrix, degrees)
    if strategy == "largest_first":
        order = np.argsort(-degrees, kind="stable")
    elif strategy == "natural":
        order = np.arange(n)
    elif strategy == "smallest_last":
        order = _smallest_last_order(matrix, degrees)
    else:
        raise ValueError(f"unknown coloring strategy {strategy!r}")

    colors = np.full(n, -1, dtype=np.int64)
    for vertex in order:
        neighbor_cols, _ = matrix.row(int(vertex))
        used = {int(colors[c]) for c in neighbor_cols if colors[c] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[vertex] = color
    return colors


def _dsatur_coloring(matrix: CSRMatrix, degrees: np.ndarray) -> np.ndarray:
    """DSATUR: color the vertex with the most distinctly-colored
    neighbors next (Brelaz).  Usually needs the fewest colors of the
    greedy family, at somewhat higher cost."""
    n = matrix.n_rows
    colors = np.full(n, -1, dtype=np.int64)
    neighbor_colors = [set() for _ in range(n)]
    for _ in range(n):
        # Pick the uncolored vertex with max saturation, ties by degree.
        best = -1
        best_key = (-1, -1)
        for v in range(n):
            if colors[v] >= 0:
                continue
            key = (len(neighbor_colors[v]), int(degrees[v]))
            if key > best_key:
                best_key = key
                best = v
        color = 0
        while color in neighbor_colors[best]:
            color += 1
        colors[best] = color
        cols, _ = matrix.row(best)
        for u in cols:
            u = int(u)
            if u != best:
                neighbor_colors[u].add(color)
    return colors


def _smallest_last_order(matrix: CSRMatrix, degrees: np.ndarray) -> np.ndarray:
    """Smallest-last vertex ordering (classic Matula-Beck heuristic)."""
    import heapq

    n = matrix.n_rows
    remaining_degree = degrees.astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    heap = [(int(remaining_degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    reverse_order = []
    while heap:
        degree, vertex = heapq.heappop(heap)
        if removed[vertex] or degree != remaining_degree[vertex]:
            continue
        removed[vertex] = True
        reverse_order.append(vertex)
        cols, _ = matrix.row(vertex)
        for c in cols:
            c = int(c)
            if not removed[c] and c != vertex:
                remaining_degree[c] -= 1
                heapq.heappush(heap, (int(remaining_degree[c]), c))
    return np.array(reverse_order[::-1], dtype=np.int64)


def color_counts(colors: np.ndarray) -> np.ndarray:
    """Number of vertices assigned each color."""
    return np.bincount(colors)


def color_permutation(colors: np.ndarray) -> np.ndarray:
    """Permutation placing same-color rows adjacently (Fig. 6, right).

    Returns ``perm`` such that new index ``k`` corresponds to old index
    ``perm[k]``; rows are grouped by ascending color, preserving the
    original order within a color (a stable sort, so the result is
    deterministic).
    """
    return np.argsort(colors, kind="stable")


def validate_coloring(matrix: CSRMatrix, colors: np.ndarray) -> bool:
    """Check that no two coupled rows share a color."""
    for i in range(matrix.n_rows):
        cols, _ = matrix.row(i)
        for c in cols:
            if c != i and colors[c] == colors[i]:
                return False
    return True

"""repro — a reproduction of "Azul: An Accelerator for Sparse Iterative
Solvers Leveraging Distributed On-Chip Memory" (MICRO 2024).

The package provides, as a library:

* a sparse linear-algebra substrate (:mod:`repro.sparse`) with iterative
  solvers (:mod:`repro.solvers`) and preconditioners
  (:mod:`repro.precond`);
* the paper's preprocessing (coloring/permutation, level analysis,
  :mod:`repro.graph`);
* a from-scratch multilevel hypergraph partitioner
  (:mod:`repro.hypergraph`);
* Azul's data-mapping algorithms and the baselines they are compared
  against (:mod:`repro.core`);
* a cycle-level simulator of the tiled accelerator (:mod:`repro.sim`)
  with communication trees (:mod:`repro.comm`) and dataflow compilation
  (:mod:`repro.dataflow`);
* analytic baseline/area/power models (:mod:`repro.models`);
* the experiment harness reproducing every evaluation table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import (AzulConfig, AzulMachine, map_azul, pcg,
                       IncompleteCholesky)
    from repro.sparse import generators

    A = generators.grid_laplacian_2d(32, 32)
    b = generators.make_rhs(A)
    M = IncompleteCholesky(A)
    reference = pcg(A, b, M)                  # functional solve
    config = AzulConfig(mesh_rows=8, mesh_cols=8)
    placement = map_azul(A, M.lower_factor(), config.num_tiles)
    machine = AzulMachine(config)
    timing = machine.simulate_pcg(A, M.lower_factor(), placement, b)
    print(timing.gflops(), "GFLOP/s,", reference.iterations, "iterations")
"""

from repro.config import AzulConfig, default_config, paper_config
from repro.errors import (
    CapacityError,
    ConvergenceError,
    MappingError,
    MatrixFormatError,
    PartitionError,
    PreconditionerError,
    ReproError,
    SimulationError,
    SingularMatrixError,
)
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix
from repro.solvers import (
    SolveOptions,
    SolveResult,
    bicgstab,
    chebyshev,
    conjugate_gradient,
    gmres,
    pcg,
    power_iteration,
)
from repro.precond import (
    AMGPreconditioner,
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    IncompleteCholesky,
    IncompleteLU,
    JacobiPreconditioner,
    SSORPreconditioner,
    SymmetricGaussSeidel,
)
from repro.core import (
    Placement,
    analyze_traffic,
    map_azul,
    map_block,
    map_round_robin,
    map_sparsep,
)
from repro.sim import (
    AZUL_PE,
    DALOREX_PE,
    IDEAL_PE,
    AzulMachine,
    IterationResult,
)
from repro.models import AlreschaModel, GPUModel, area_report, power_report
from repro.cache import ArtifactCache, CacheStats
from repro.parallel import SimPoint, default_jobs

# Imported last: the experiment pipeline builds on everything above.
from repro.experiments.common import ExperimentSession

__version__ = "1.0.0"

__all__ = [
    "AzulConfig",
    "default_config",
    "paper_config",
    "ReproError",
    "MatrixFormatError",
    "SingularMatrixError",
    "PreconditionerError",
    "ConvergenceError",
    "PartitionError",
    "MappingError",
    "CapacityError",
    "SimulationError",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "SolveOptions",
    "SolveResult",
    "pcg",
    "conjugate_gradient",
    "bicgstab",
    "chebyshev",
    "gmres",
    "power_iteration",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "IncompleteCholesky",
    "IncompleteLU",
    "SymmetricGaussSeidel",
    "SSORPreconditioner",
    "BlockJacobiPreconditioner",
    "AMGPreconditioner",
    "Placement",
    "map_azul",
    "map_block",
    "map_round_robin",
    "map_sparsep",
    "analyze_traffic",
    "AzulMachine",
    "IterationResult",
    "AZUL_PE",
    "DALOREX_PE",
    "IDEAL_PE",
    "GPUModel",
    "AlreschaModel",
    "area_report",
    "power_report",
    "ArtifactCache",
    "CacheStats",
    "SimPoint",
    "default_jobs",
    "ExperimentSession",
    "__version__",
]

"""Experiment result containers and plain-text rendering.

Every experiment module returns an :class:`ExperimentResult`: named
columns and one row per matrix/configuration, printable as the textual
equivalent of the paper's figure or table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ExperimentResult:
    """Rows of one reproduced figure/table.

    Attributes
    ----------
    experiment:
        Identifier, e.g. ``"fig20"``.
    title:
        What the paper artifact shows.
    columns:
        Ordered column names; each row is a dict with these keys.
    rows:
        One dict per row.
    notes:
        Free-form commentary (scale caveats, gmean summaries).
    """

    experiment: str
    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""
    #: Machine-readable summary values (gmeans, speedups) for benches.
    extras: dict = field(default_factory=dict)

    def add_row(self, **values):
        """Append a row; missing columns are left blank."""
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column."""
        return [row.get(name) for row in self.rows]

    def to_csv(self, path):
        """Write the rows as CSV (for external plotting tools)."""
        import csv

        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=self.columns, extrasaction="ignore"
            )
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        header = [self.experiment.upper(), "-", self.title]
        table = format_table(self.columns, self.rows)
        parts = [" ".join(header), table]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def __str__(self):
        return self.render()


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(columns: list, rows: list) -> str:
    """Align a list of row-dicts into a fixed-width text table."""
    rendered = [
        [_format_cell(row.get(col)) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def format_cache_stats(stats, inventory: Optional[dict] = None) -> str:
    """Render artifact-cache observability as a plain-text summary.

    Parameters
    ----------
    stats:
        A :class:`repro.cache.CacheStats` (live, persisted, or merged).
    inventory:
        Optional :meth:`repro.cache.ArtifactCache.inventory` dict with
        on-disk entry counts and sizes.
    """
    lines = ["artifact cache"]
    if inventory is not None:
        lines.append(f"  root:        {inventory['root']}")
        lines.append(
            f"  disk usage:  {_format_bytes(inventory['total_bytes'])}"
            f" / {_format_bytes(inventory['max_bytes'])} budget"
            + ("" if inventory.get("enabled", True) else "  [DISABLED]")
        )
        for namespace, bucket in sorted(inventory["namespaces"].items()):
            lines.append(
                f"    {namespace:14s} {bucket['entries']:5d} entries  "
                f"{_format_bytes(bucket['bytes'])}"
            )
        if inventory.get("quarantined_files"):
            lines.append(
                f"  quarantined: {inventory['quarantined_files']} file(s)"
            )
        if inventory.get("tmp_files"):
            lines.append(
                f"  tmp files:   {inventory['tmp_files']} (interrupted "
                "writes; swept automatically)"
            )
    lines.append(
        f"  hits:        {stats.hits} "
        f"(memory {stats.hits_memory}, disk {stats.hits_disk})"
    )
    lines.append(f"  misses:      {stats.misses}")
    lines.append(f"  hit rate:    {stats.hit_rate():.1%}")
    lines.append(f"  writes:      {stats.writes}")
    lines.append(f"  evictions:   {stats.evictions}")
    lines.append(
        f"  corruptions: {stats.corruptions} "
        f"(quarantined {stats.quarantined})"
    )
    return "\n".join(lines)

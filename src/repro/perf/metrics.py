"""Scalar performance metrics (gmean speedups, normalization)."""

from __future__ import annotations

import math
from typing import Iterable


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_time: float, improved_time: float) -> float:
    """Speedup of ``improved`` over ``baseline`` (times or cycle counts)."""
    if improved_time <= 0:
        raise ValueError("improved time must be positive")
    return baseline_time / improved_time


def normalize(values: Iterable[float], reference: float = None) -> list:
    """Scale values so the reference (default: max) becomes 1.0."""
    values = [float(v) for v in values]
    if not values:
        return []
    reference = max(values) if reference is None else reference
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]

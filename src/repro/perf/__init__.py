"""Performance metrics and result summarization."""

from repro.perf.metrics import (
    gmean,
    speedup,
    normalize,
)
from repro.perf.summarize import (
    format_cache_stats,
    format_table,
    ExperimentResult,
)

__all__ = [
    "gmean",
    "speedup",
    "normalize",
    "format_table",
    "format_cache_stats",
    "ExperimentResult",
]

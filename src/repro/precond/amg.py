"""Two-level aggregation-based algebraic multigrid preconditioner.

Table II's references include algebraic multigrid (Ruge & Stueben) as a
preconditioner family.  This is the simplest practical AMG: greedy
aggregation of strongly-coupled neighbors builds a piecewise-constant
prolongation P; the preconditioner performs pre-smoothing (weighted
Jacobi), a coarse-grid correction with the Galerkin operator
``P^T A P`` (solved directly — the coarse system is small), and
post-smoothing.  On Azul, its kernels are SpMVs (smoothing, restriction,
prolongation) plus a tiny local solve — no long SpTRSV chains.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr
from repro.sparse.csr import CSRMatrix


def strength_graph(matrix: CSRMatrix, theta: float = 0.25) -> list:
    """Strong couplings per row: ``|a_ij| >= theta * max_k |a_ik|``."""
    strong = []
    for i in range(matrix.n_rows):
        cols, vals = matrix.row(i)
        off = cols != i
        cols, vals = cols[off], np.abs(vals[off])
        if len(cols) == 0:
            strong.append(np.empty(0, dtype=np.int64))
            continue
        threshold = theta * vals.max()
        strong.append(cols[vals >= threshold])
    return strong


def aggregate(matrix: CSRMatrix, theta: float = 0.25) -> np.ndarray:
    """Greedy aggregation: each vertex joins a strongly-coupled seed.

    Returns ``agg`` mapping each fine index to a coarse aggregate id.
    """
    n = matrix.n_rows
    strong = strength_graph(matrix, theta)
    agg = np.full(n, -1, dtype=np.int64)
    next_id = 0
    # Pass 1: seed aggregates from untouched vertices.
    for i in range(n):
        if agg[i] >= 0:
            continue
        neighbors = [j for j in strong[i] if agg[j] < 0]
        agg[i] = next_id
        for j in neighbors:
            agg[j] = next_id
        next_id += 1
    # Pass 2 is implicit: every vertex was seeded or absorbed above.
    return agg


class AMGPreconditioner(Preconditioner):
    """Two-level AMG V-cycle as a preconditioner.

    Parameters
    ----------
    matrix:
        SPD system matrix.
    theta:
        Strength-of-connection threshold for aggregation.
    omega:
        Weighted-Jacobi smoothing factor.
    n_smooth:
        Pre- and post-smoothing sweeps.
    """

    kernels = ("spmv",)

    def __init__(self, matrix: CSRMatrix, theta: float = 0.25,
                 omega: float = 0.6, n_smooth: int = 1):
        if matrix.shape[0] != matrix.shape[1]:
            raise PreconditionerError("AMG requires a square matrix")
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise PreconditionerError("AMG requires a full diagonal")
        self._matrix = matrix
        self._inv_diag = 1.0 / diag
        self.omega = omega
        self.n_smooth = max(1, n_smooth)
        self._agg = aggregate(matrix, theta)
        self._n_coarse = int(self._agg.max()) + 1
        self._coarse = self._galerkin_coarse()
        try:
            self._coarse_factor = np.linalg.cholesky(self._coarse)
        except np.linalg.LinAlgError as error:
            raise PreconditionerError(
                "Galerkin coarse operator is not SPD"
            ) from error

    # ------------------------------------------------------------------
    def _galerkin_coarse(self) -> np.ndarray:
        """Dense ``P^T A P`` with piecewise-constant P (P[i, agg[i]]=1)."""
        n = self._matrix.n_rows
        coarse = np.zeros((self._n_coarse, self._n_coarse))
        for i in range(n):
            cols, vals = self._matrix.row(i)
            ci = self._agg[i]
            np.add.at(coarse[ci], self._agg[cols], vals)
        return coarse

    def _smooth(self, x: np.ndarray, r: np.ndarray) -> np.ndarray:
        """Weighted-Jacobi sweeps on ``A x = r``."""
        for _ in range(self.n_smooth):
            residual = r - self._matrix.spmv(x)
            x = x + self.omega * self._inv_diag * residual
        return x

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        # Pre-smooth from zero.
        x = self._smooth(np.zeros_like(r), r)
        # Coarse-grid correction.
        fine_residual = r - self._matrix.spmv(x)
        coarse_rhs = np.zeros(self._n_coarse)
        np.add.at(coarse_rhs, self._agg, fine_residual)  # restriction P^T
        y = np.linalg.solve(self._coarse_factor, coarse_rhs)
        coarse_x = np.linalg.solve(self._coarse_factor.T, y)
        x = x + coarse_x[self._agg]                      # prolongation P
        # Post-smooth.
        return self._smooth(x, r)

    @property
    def coarsening_ratio(self) -> float:
        """Fine-to-coarse size ratio (aggregation aggressiveness)."""
        return self._matrix.n_rows / max(self._n_coarse, 1)

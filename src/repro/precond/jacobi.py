"""Diagonal (Jacobi) preconditioner."""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix


class JacobiPreconditioner(Preconditioner):
    """``z = D^{-1} r`` with ``D = diag(A)`` (Table II "Diagonal/Jacobi").

    The cheapest useful preconditioner: a single element-wise multiply,
    no SpTRSV needed.
    """

    kernels = ()

    def __init__(self, matrix: CSRMatrix):
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise PreconditionerError(
                "Jacobi preconditioner requires a full nonzero diagonal"
            )
        # Store reciprocals: the paper stores 1/d to keep divisions off
        # the critical path (Sec. VI-A).
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv_diag * np.asarray(r, dtype=np.float64)

"""Block-Jacobi preconditioner.

Generalizes Jacobi from the diagonal to dense diagonal *blocks*: each
block of consecutive indices is factored once and back-solved per
application.  Entirely tile-local on Azul when block boundaries align
with vector homes (no SpTRSV dependence chains at all), making it a
practical middle ground between Jacobi and IC(0) for low-latency
solves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix


class BlockJacobiPreconditioner(Preconditioner):
    """``z = diag_blocks(A)^{-1} r`` with dense blocks of fixed size.

    Parameters
    ----------
    matrix:
        The SPD system matrix.
    block_size:
        Number of consecutive indices per block (the last block may be
        smaller).  ``block_size=1`` recovers plain Jacobi.
    """

    kernels = ()

    def __init__(self, matrix: CSRMatrix, block_size: int = 4):
        if block_size < 1:
            raise PreconditionerError("block size must be positive")
        if matrix.shape[0] != matrix.shape[1]:
            raise PreconditionerError("block Jacobi requires a square matrix")
        self.block_size = block_size
        n = matrix.n_rows
        self._n = n
        self._factors = []
        for start in range(0, n, block_size):
            end = min(start + block_size, n)
            block = self._extract_block(matrix, start, end)
            try:
                self._factors.append(np.linalg.cholesky(block))
            except np.linalg.LinAlgError as error:
                raise PreconditionerError(
                    f"diagonal block [{start}:{end}] is not SPD"
                ) from error

    @staticmethod
    def _extract_block(matrix: CSRMatrix, start: int, end: int) -> np.ndarray:
        """Densify one diagonal block of the sparse matrix."""
        size = end - start
        block = np.zeros((size, size))
        for i in range(start, end):
            cols, vals = matrix.row(i)
            inside = (cols >= start) & (cols < end)
            block[i - start, cols[inside] - start] = vals[inside]
        return block

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        if len(r) != self._n:
            raise PreconditionerError("residual length mismatch")
        z = np.empty(self._n)
        for index, factor in enumerate(self._factors):
            start = index * self.block_size
            end = min(start + self.block_size, self._n)
            # Two dense triangular solves per block (Cholesky).
            y = np.linalg.solve(factor, r[start:end])
            z[start:end] = np.linalg.solve(factor.T, y)
        return z

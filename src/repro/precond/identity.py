"""Identity (no-op) preconditioner: plain CG/BiCGStab."""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner


class IdentityPreconditioner(Preconditioner):
    """``z = r``; turns PCG into unpreconditioned CG (Table II row 1)."""

    kernels = ()

    def apply(self, r: np.ndarray) -> np.ndarray:
        return np.array(r, dtype=np.float64, copy=True)

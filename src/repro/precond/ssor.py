"""Symmetric successive over-relaxation (SSOR) preconditioner.

The omega-weighted generalization of symmetric Gauss-Seidel (Table II):

    M(w) = (D/w + L) * (w / (2 - w)) * D^{-1} * (D/w + U)

``omega = 1`` recovers SymGS up to the leading scalar.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sptrsv_lower, sptrsv_upper


def _replace_diagonal(triangle: CSRMatrix, new_diag: np.ndarray) -> CSRMatrix:
    """Return a copy of a triangular matrix with its diagonal replaced."""
    coo = csr_to_coo(triangle)
    data = coo.data.copy()
    on_diag = coo.rows == coo.cols
    data[on_diag] = new_diag[coo.rows[on_diag]]
    return coo_to_csr(COOMatrix(coo.rows, coo.cols, data, triangle.shape))


class SSORPreconditioner(Preconditioner):
    """SSOR(omega) preconditioner via two weighted triangular sweeps."""

    kernels = ("sptrsv", "sptrsv")

    def __init__(self, matrix: CSRMatrix, omega: float = 1.0):
        if not 0.0 < omega < 2.0:
            raise PreconditionerError(
                f"SSOR requires omega in (0, 2); got {omega}"
            )
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise PreconditionerError("SSOR requires a full nonzero diagonal")
        self.omega = omega
        scaled_diag = diag / omega
        self._lower = _replace_diagonal(
            matrix.lower_triangle(include_diagonal=True), scaled_diag
        )
        self._upper = _replace_diagonal(
            matrix.upper_triangle(include_diagonal=True), scaled_diag
        )
        self._mid_scale = diag * ((2.0 - omega) / omega)

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = sptrsv_lower(self._lower, r)
        return sptrsv_upper(self._upper, self._mid_scale * y)

    def lower_factor(self) -> CSRMatrix:
        return self._lower

    def upper_factor(self) -> CSRMatrix:
        return self._upper

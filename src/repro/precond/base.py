"""Preconditioner interface.

A preconditioner approximates ``A^{-1}``: applying it to the residual
(``z = M^{-1} r``) reshapes the spectrum so the solver converges in fewer
iterations (Sec. II, "Numerical stability and preconditioning").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Preconditioner(ABC):
    """Base class for all preconditioners.

    Subclasses must implement :meth:`apply`.  ``kernels`` advertises
    which sparse kernels an accelerator needs to execute the
    preconditioner (the Table II "Kernels" column); triangular-factor
    preconditioners override ``lower_factor``/``upper_factor``.
    """

    #: Sparse kernels required to apply this preconditioner on Azul.
    kernels: tuple = ()

    #: True when ``lower_factor()`` has a unit diagonal (ILU-style L):
    #: solvers forward this to the triangular solve so the factor is
    #: solved — and its FLOPs counted — without a diagonal multiply.
    lower_unit_diagonal: bool = False

    @abstractmethod
    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return ``z = M^{-1} r``."""

    def lower_factor(self):
        """The lower-triangular factor used by ``apply``, if any."""
        return None

    def upper_factor(self):
        """The upper-triangular factor used by ``apply``, if any."""
        return None

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

"""Symmetric Gauss-Seidel preconditioner.

``M = (D + L) D^{-1} (D + U)`` where ``L``/``U`` are A's strict lower
and upper triangles.  The paper highlights it (Sec. II-C) because it
needs no factorization: it "simply takes A's lower triangle", so Azul
can rebuild it for free when A's values change between timesteps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sptrsv_lower, sptrsv_upper


class SymmetricGaussSeidel(Preconditioner):
    """SymGS preconditioner via forward + backward triangular sweeps.

    ``apply`` computes ``z = (D+U)^{-1} D (D+L)^{-1} r``: a forward
    SpTRSV, a diagonal scale, and a backward SpTRSV — the ALRESCHA
    paper's "SymGS is equivalent to two consecutive triangular solves"
    (Sec. III, footnote 2).
    """

    kernels = ("sptrsv", "sptrsv")

    def __init__(self, matrix: CSRMatrix):
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise PreconditionerError("SymGS requires a full nonzero diagonal")
        self._diag = diag
        self._lower = matrix.lower_triangle(include_diagonal=True)
        self._upper = matrix.upper_triangle(include_diagonal=True)

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = sptrsv_lower(self._lower, r)
        return sptrsv_upper(self._upper, self._diag * y)

    def lower_factor(self) -> CSRMatrix:
        return self._lower

    def upper_factor(self) -> CSRMatrix:
        return self._upper

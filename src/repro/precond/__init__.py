"""Preconditioners for iterative solvers (paper Table II).

All preconditioners implement :class:`~repro.precond.base.Preconditioner`:
``apply(r)`` returns ``z = M^{-1} r``.  Preconditioners built from
triangular factors expose them (``lower_factor``/``upper_factor``) so the
accelerator's dataflow programs can execute their solves as SpTRSVs.
"""

from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.ic0 import IncompleteCholesky, ic0
from repro.precond.ilu0 import IncompleteLU, ilu0
from repro.precond.gauss_seidel import SymmetricGaussSeidel
from repro.precond.ssor import SSORPreconditioner
from repro.precond.amg import AMGPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "IncompleteCholesky",
    "ic0",
    "IncompleteLU",
    "ilu0",
    "SymmetricGaussSeidel",
    "SSORPreconditioner",
    "AMGPreconditioner",
]

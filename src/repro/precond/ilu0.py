"""Incomplete LU factorization with zero fill-in, ILU(0).

Used with BiCGStab for non-symmetric systems (paper Table II,
"Incomplete LU").  ``L`` is unit-lower-triangular and ``U`` upper
triangular, both restricted to A's sparsity pattern.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sptrsv_lower, sptrsv_upper


def ilu0(matrix: CSRMatrix):
    """Compute ILU(0) factors ``(L, U)`` of a square matrix.

    Implements the classic IKJ-variant restricted to the original
    pattern.  ``L`` has an implicit unit diagonal (stored explicitly for
    kernel uniformity); ``U`` includes the diagonal.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise PreconditionerError("ILU(0) requires a square matrix")
    n = matrix.n_rows
    indptr, indices = matrix.indptr, matrix.indices
    data = matrix.data.copy()
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for pos in range(indptr[i], indptr[i + 1]):
            if indices[pos] == i:
                diag_pos[i] = pos
    if np.any(diag_pos < 0):
        raise PreconditionerError("ILU(0) requires a fully stored diagonal")

    # Column-position lookup per row, built on the fly.
    for i in range(n):
        row_start, row_end = indptr[i], indptr[i + 1]
        row_map = {int(indices[p]): p for p in range(row_start, row_end)}
        for pos in range(row_start, row_end):
            k = int(indices[pos])
            if k >= i:
                break
            pivot = data[diag_pos[k]]
            if pivot == 0.0:
                raise PreconditionerError(f"zero pivot at row {k} in ILU(0)")
            factor = data[pos] / pivot
            data[pos] = factor
            for kpos in range(diag_pos[k] + 1, indptr[k + 1]):
                col = int(indices[kpos])
                hit = row_map.get(col)
                if hit is not None:
                    data[hit] -= factor * data[kpos]

    # Split into L (unit diagonal) and U.
    lower_rows, lower_cols, lower_vals = [], [], []
    upper_rows, upper_cols, upper_vals = [], [], []
    for i in range(n):
        for pos in range(indptr[i], indptr[i + 1]):
            j = int(indices[pos])
            if j < i:
                lower_rows.append(i)
                lower_cols.append(j)
                lower_vals.append(data[pos])
            else:
                upper_rows.append(i)
                upper_cols.append(j)
                upper_vals.append(data[pos])
        lower_rows.append(i)
        lower_cols.append(i)
        lower_vals.append(1.0)

    from repro.sparse.coo import COOMatrix
    from repro.sparse.convert import coo_to_csr

    shape = matrix.shape
    lower = coo_to_csr(COOMatrix(lower_rows, lower_cols, lower_vals, shape))
    upper = coo_to_csr(COOMatrix(upper_rows, upper_cols, upper_vals, shape))
    return lower, upper


class IncompleteLU(Preconditioner):
    """ILU(0) preconditioner: ``z = U^{-1} L^{-1} r`` via two SpTRSVs."""

    kernels = ("sptrsv", "sptrsv")
    lower_unit_diagonal = True

    def __init__(self, matrix: CSRMatrix):
        self._lower, self._upper = ilu0(matrix)

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = sptrsv_lower(self._lower, r, unit_diagonal=True)
        return sptrsv_upper(self._upper, y)

    def lower_factor(self) -> CSRMatrix:
        return self._lower

    def upper_factor(self) -> CSRMatrix:
        return self._upper

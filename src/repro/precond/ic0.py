"""Incomplete Cholesky factorization with zero fill-in, IC(0).

The paper's PCG uses an incomplete-Cholesky preconditioner (Sec. VI):
``L L^T ~ A`` where ``L`` keeps exactly the sparsity pattern of A's
lower triangle.  Applying the preconditioner is two triangular solves
(``trisolve(L^T, trisolve(L, r))`` in Listing 1) — the very SpTRSVs Azul
accelerates.

IC(0) can break down (non-positive pivot) on matrices that are SPD but
not H-matrices; the standard remedy, used here, is to retry with an
increasing diagonal shift ``A + alpha * diag(A)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sptrsv_lower, sptrsv_upper


def _ic0_attempt(lower: CSRMatrix, diag_shift: float):
    """One IC(0) attempt; returns factor data or None on breakdown.

    Operates in-place on a copy of the lower triangle's data array,
    using the standard row-by-row update:

        L[i,j] = (A[i,j] - sum_k L[i,k] L[j,k]) / L[j,j]   for j < i
        L[i,i] = sqrt(A[i,i] - sum_k L[i,k]^2)
    """
    n = lower.n_rows
    indptr, indices = lower.indptr, lower.indices
    data = lower.data.copy()
    # Apply the diagonal shift before factoring.
    if diag_shift != 0.0:
        for i in range(n):
            end = indptr[i + 1]
            if end > indptr[i] and indices[end - 1] == i:
                data[end - 1] *= 1.0 + diag_shift
    # Row-major position of each row's diagonal entry (last in row).
    for i in range(n):
        row_start, row_end = indptr[i], indptr[i + 1]
        if row_end == row_start or indices[row_end - 1] != i:
            return None  # structurally missing diagonal
        # Build a map col -> position for row i's finished prefix.
        row_cols = indices[row_start:row_end]
        for pos in range(row_start, row_end - 1):
            j = indices[pos]
            # data[pos] currently holds A[i,j] minus prior updates.
            # Subtract sum_k<j L[i,k] * L[j,k] using merged row scan.
            acc = data[pos]
            pi, pj = row_start, indptr[j]
            j_end = indptr[j + 1] - 1  # exclude L[j,j]
            while pi < pos and pj < j_end:
                ci, cj = indices[pi], indices[pj]
                if ci == cj:
                    acc -= data[pi] * data[pj]
                    pi += 1
                    pj += 1
                elif ci < cj:
                    pi += 1
                else:
                    pj += 1
            pivot = data[indptr[j + 1] - 1]
            if pivot == 0.0:
                return None
            data[pos] = acc / pivot
        # Diagonal entry.
        diag_pos = row_end - 1
        acc = data[diag_pos]
        for pos in range(row_start, diag_pos):
            acc -= data[pos] * data[pos]
        if acc <= 0.0:
            return None
        data[diag_pos] = np.sqrt(acc)
        del row_cols
    return data


def ic0(matrix: CSRMatrix, max_shift_attempts: int = 8) -> CSRMatrix:
    """Compute the IC(0) factor ``L`` of an SPD matrix.

    Returns a lower-triangular CSR matrix with the pattern of
    ``tril(A)``.  On breakdown, retries with diagonal shifts
    ``alpha = 1e-3 * 2^k`` and raises :class:`PreconditionerError` after
    ``max_shift_attempts`` failures.
    """
    lower = matrix.lower_triangle()
    data = _ic0_attempt(lower, diag_shift=0.0)
    shift = 1e-3
    attempts = 0
    while data is None and attempts < max_shift_attempts:
        data = _ic0_attempt(lower, diag_shift=shift)
        shift *= 2.0
        attempts += 1
    if data is None:
        raise PreconditionerError(
            f"IC(0) broke down even with diagonal shift {shift / 2:g}"
        )
    return CSRMatrix(
        lower.indptr.copy(), lower.indices.copy(), data, lower.shape
    )


class IncompleteCholesky(Preconditioner):
    """IC(0) preconditioner: ``z = (L L^T)^{-1} r`` via two SpTRSVs."""

    kernels = ("sptrsv", "sptrsv")

    def __init__(self, matrix: CSRMatrix):
        self._lower = ic0(matrix)
        self._upper = self._lower.transpose()

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = sptrsv_lower(self._lower, r)
        return sptrsv_upper(self._upper, y)

    def lower_factor(self) -> CSRMatrix:
        return self._lower

    def upper_factor(self) -> CSRMatrix:
        return self._upper

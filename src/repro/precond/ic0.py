"""Incomplete Cholesky factorization with zero fill-in, IC(0).

The paper's PCG uses an incomplete-Cholesky preconditioner (Sec. VI):
``L L^T ~ A`` where ``L`` keeps exactly the sparsity pattern of A's
lower triangle.  Applying the preconditioner is two triangular solves
(``trisolve(L^T, trisolve(L, r))`` in Listing 1) — the very SpTRSVs Azul
accelerates.

IC(0) can break down (non-positive pivot) on matrices that are SPD but
not H-matrices; the standard remedy, used here, is to retry with an
increasing diagonal shift ``A + alpha * diag(A)``.

The numeric factorization is delegated to a kernel engine from the
registry in :mod:`repro.sparse.ops`: the default level-scheduled engine
batches the updates by dependence level (sharing the cached
:class:`~repro.sparse.schedule.IC0Schedule` across shift retries),
while ``kernels="reference"`` / ``AZUL_SOLVER_REFERENCE=1`` selects the
original up-looking row-by-row loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.obs as obs
from repro.errors import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import _ic0_attempt_reference, resolve_kernels


def _ic0_attempt(lower: CSRMatrix, diag_shift: float):
    """One reference IC(0) attempt (back-compat alias).

    The implementation lives in :mod:`repro.sparse.ops` next to the
    other reference kernels; this name is kept for callers that probed
    breakdown behavior directly.
    """
    return _ic0_attempt_reference(lower, diag_shift)


def ic0(matrix: CSRMatrix, max_shift_attempts: int = 8,
        kernels: Optional[str] = None) -> CSRMatrix:
    """Compute the IC(0) factor ``L`` of an SPD matrix.

    Returns a lower-triangular CSR matrix with the pattern of
    ``tril(A)``.  On breakdown, retries with diagonal shifts
    ``alpha = 1e-3 * 2^k`` and raises :class:`PreconditionerError` after
    ``max_shift_attempts`` failures.  ``kernels`` selects the engine
    (``None`` = registry default).
    """
    engine = resolve_kernels(kernels)
    lower = matrix.lower_triangle()
    obs.counter("solve.kernel.ic0.calls")
    with obs.timer("solve.kernel.ic0", n=matrix.n_rows,
                   engine=engine.name) as ph:
        data = engine.ic0_attempt(lower, diag_shift=0.0)
        shift = 1e-3
        attempts = 0
        while data is None and attempts < max_shift_attempts:
            data = engine.ic0_attempt(lower, diag_shift=shift)
            shift *= 2.0
            attempts += 1
        ph.set(shift_attempts=attempts)
    if data is None:
        raise PreconditionerError(
            f"IC(0) broke down even with diagonal shift {shift / 2:g}"
        )
    return CSRMatrix(
        lower.indptr.copy(), lower.indices.copy(), data, lower.shape
    )


class IncompleteCholesky(Preconditioner):
    """IC(0) preconditioner: ``z = (L L^T)^{-1} r`` via two SpTRSVs."""

    kernels = ("sptrsv", "sptrsv")

    def __init__(self, matrix: CSRMatrix, kernels: Optional[str] = None):
        self._engine = resolve_kernels(kernels)
        self._lower = ic0(matrix, kernels=kernels)
        self._upper = self._lower.transpose()

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = self._engine.sptrsv_lower(self._lower, r)
        return self._engine.sptrsv_upper(self._upper, y)

    def lower_factor(self) -> CSRMatrix:
        return self._lower

    def upper_factor(self) -> CSRMatrix:
        return self._upper

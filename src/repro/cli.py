"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``suite``
    List the benchmark matrices (Table IV analog).
``solve MATRIX``
    Solve ``A x = b`` with a chosen solver/preconditioner and report
    convergence.  MATRIX is a suite name or a MatrixMarket file.
``map MATRIX``
    Map the PCG operands with a chosen strategy and report load
    balance and NoC traffic.
``simulate MATRIX``
    Full pipeline: preprocess, map, run the cycle-level simulator, and
    report throughput, breakdowns, and power.
``experiment ID``
    Run one experiment from the reproduction harness (see
    ``python -m repro.experiments.runner --list``).
``cache {stats,clear,verify}``
    Inspect or maintain the artifact cache (placements, simulation
    results).  ``stats`` reports disk usage and cumulative
    hit/miss/corruption counters; ``clear`` deletes every entry;
    ``verify`` re-checksums all entries (``--fix`` quarantines bad
    ones).  Honours ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES`` /
    ``REPRO_CACHE_DISABLE``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _load_matrix(spec: str):
    """Resolve a matrix argument: suite name or MatrixMarket path."""
    from repro.sparse import read_matrix_market
    from repro.sparse.generators import make_rhs
    from repro.sparse.suite import get_suite_matrix, suite_names

    if os.path.exists(spec):
        matrix = read_matrix_market(spec)
        return matrix, make_rhs(matrix, seed=0)
    if spec in suite_names("all"):
        return get_suite_matrix(spec)
    raise SystemExit(
        f"unknown matrix {spec!r}: not a file, and suite names are "
        f"{', '.join(suite_names('all'))}"
    )


def _make_preconditioner(name: str, matrix):
    from repro.precond import (
        IncompleteCholesky,
        JacobiPreconditioner,
        SSORPreconditioner,
        SymmetricGaussSeidel,
    )

    factories = {
        "none": lambda m: None,
        "jacobi": JacobiPreconditioner,
        "symgs": SymmetricGaussSeidel,
        "ssor": SSORPreconditioner,
        "ic0": IncompleteCholesky,
    }
    if name not in factories:
        raise SystemExit(f"unknown preconditioner {name!r}")
    return factories[name](matrix)


# ----------------------------------------------------------------------
def cmd_suite(args):
    from repro.experiments import tab4

    print(tab4.run(section=args.section))
    return 0


def cmd_solve(args):
    from repro.graph import color_and_permute
    from repro.solvers import SolveOptions, bicgstab, gmres, pcg

    matrix, b = _load_matrix(args.matrix)
    if args.color:
        matrix, b, _ = color_and_permute(matrix, b)
    preconditioner = _make_preconditioner(args.precond, matrix)
    options = SolveOptions(tol=args.tol, max_iterations=args.max_iters)
    if args.solver == "pcg":
        result = pcg(matrix, b, preconditioner, options=options)
    elif args.solver == "bicgstab":
        result = bicgstab(matrix, b, preconditioner, options=options)
    elif args.solver == "gmres":
        result = gmres(matrix, b, preconditioner, options=options)
    else:
        raise SystemExit(f"unknown solver {args.solver!r}")
    status = "converged" if result.converged else "NOT converged"
    print(
        f"{args.solver} + {args.precond}: {status} in "
        f"{result.iterations} iterations, residual "
        f"{result.residual_norm:.3e}"
    )
    for kernel, flops in result.flops.items():
        print(f"  {kernel:8s} {flops / 1e6:10.2f} MFLOP")
    return 0 if result.converged else 1


def cmd_map(args):
    from repro.comm import make_geometry
    from repro.config import AzulConfig
    from repro.core import analyze_traffic, get_mapper, placement_stats
    from repro.graph import color_and_permute
    from repro.hypergraph import PartitionerOptions
    from repro.precond import ic0

    matrix, b = _load_matrix(args.matrix)
    matrix, b, _ = color_and_permute(matrix, b)
    lower = ic0(matrix)
    config = AzulConfig(mesh_rows=args.rows, mesh_cols=args.cols,
                        topology=args.topology)
    mapper = get_mapper(args.mapper)
    if args.mapper == "azul":
        placement = mapper(
            matrix, lower, config.num_tiles,
            options=PartitionerOptions.speed(seed=0),
            jobs=args.jobs,
        )
    else:
        placement = mapper(matrix, lower, config.num_tiles)
    placement.validate_capacity(config)
    stats = placement_stats(placement)
    torus = make_geometry(config)
    traffic = analyze_traffic(placement, matrix, lower, torus)
    print(f"mapper {args.mapper} on {config.mesh_rows}x{config.mesh_cols}:")
    print(f"  nnz imbalance (max/mean): {stats['nnz_imbalance']:.2f}")
    print(f"  messages/iteration:       {traffic.total_messages}")
    print(f"  link activations:         {traffic.total_link_activations}")
    print(f"  busiest link load:        {traffic.max_link_load()}")
    return 0


def cmd_simulate(args):
    from repro.config import AzulConfig
    from repro.core import get_mapper
    from repro.graph import color_and_permute
    from repro.hypergraph import PartitionerOptions
    from repro.models import power_report
    from repro.precond import ic0
    from repro.sim import AzulMachine, pe_model_by_name
    from repro.solvers import pcg

    matrix, b = _load_matrix(args.matrix)
    matrix, b, _ = color_and_permute(matrix, b)
    lower = ic0(matrix)
    config = AzulConfig(mesh_rows=args.rows, mesh_cols=args.cols,
                        topology=args.topology)
    mapper = get_mapper(args.mapper)
    if args.mapper == "azul":
        placement = mapper(
            matrix, lower, config.num_tiles,
            options=PartitionerOptions.speed(seed=0),
            jobs=args.jobs,
        )
    else:
        placement = mapper(matrix, lower, config.num_tiles)
    machine = AzulMachine(config, pe_model_by_name(args.pe))
    timing = machine.simulate_pcg(matrix, lower, placement, b)
    print(
        f"{args.matrix} on {config.mesh_rows}x{config.mesh_cols} "
        f"({args.pe} PEs, {args.mapper} mapping):"
    )
    print(f"  cycles/iteration: {timing.total_cycles}")
    print(f"  throughput:       {timing.gflops():.1f} GFLOP/s "
          f"({timing.utilization():.1%} of peak)")
    for phase, cycles in timing.cycles_by_phase().items():
        print(f"    {phase:14s} {cycles:8d} cycles "
              f"({cycles / timing.total_cycles:.0%})")
    power = power_report(timing, config)
    print(f"  power estimate:   {power.total:.2f} W "
          f"(SRAM {power.sram:.2f}, compute {power.compute:.2f}, "
          f"NoC {power.noc:.2f}, leakage {power.leakage:.2f})")
    from repro.precond import IncompleteCholesky

    reference = pcg(matrix, b, IncompleteCholesky(matrix))
    seconds = (
        reference.iterations * timing.total_cycles / config.frequency_hz
    )
    print(
        f"  end-to-end solve: {reference.iterations} iterations "
        f"-> {seconds * 1e6:.0f} us"
    )
    return 0


def cmd_experiment(args):
    from repro.experiments import run_experiment

    print(run_experiment(args.id, jobs=getattr(args, "jobs", None)))
    return 0


def cmd_run(args):
    """``repro run [ids...] --jobs N``: the experiment runner."""
    from repro.experiments import runner

    argv = list(args.ids)
    if args.list:
        argv.append("--list")
    if args.plan:
        argv.append("--plan")
    if args.resume:
        argv.append("--resume")
    if args.keep_going:
        argv.append("--keep-going")
    for tag in args.filter or ():
        argv += ["--filter", tag]
    if args.matrices:
        argv += ["--matrices"] + list(args.matrices)
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.csv_dir:
        argv += ["--csv-dir", args.csv_dir]
    if args.cache_stats:
        argv.append("--cache-stats")
    if args.trace is not None:
        argv += ["--trace", args.trace]
    if args.metrics is not None:
        argv.append("--metrics")
        if args.metrics:
            argv.append(args.metrics)
    return runner.main(argv)


def cmd_cache(args):
    from repro.cache import ArtifactCache
    from repro.perf import format_cache_stats

    cache = ArtifactCache.from_env()
    if args.action == "stats":
        # Cumulative persisted counters + anything this process did.
        merged = cache.persisted_stats().merged(cache.stats)
        print(format_cache_stats(merged, cache.inventory()))
        return 0
    if args.action == "clear":
        removed, freed = cache.clear()
        print(
            f"cleared {removed} file(s), freed {freed} bytes "
            f"from {cache.root}"
        )
        return 0
    if args.action == "verify":
        reports = cache.verify(fix=args.fix)
        bad = [r for r in reports if r.status != "ok"]
        for report in reports:
            if report.status != "ok" or args.verbose:
                detail = f"  ({report.detail})" if report.detail else ""
                print(
                    f"{report.status:8s} {report.namespace}/{report.key}"
                    f"{detail}"
                )
        action = "quarantined" if args.fix else "found (run with --fix)"
        print(
            f"verified {len(reports)} entr{'y' if len(reports) == 1 else 'ies'}: "
            f"{len(reports) - len(bad)} ok, {len(bad)} bad {action if bad else ''}".rstrip()
        )
        return 1 if bad and not args.fix else 0
    raise SystemExit(f"unknown cache action {args.action!r}")


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Azul reproduction CLI (MICRO 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="list benchmark matrices")
    p_suite.add_argument("--section", default="small",
                         choices=["small", "medium", "large", "all"])
    p_suite.set_defaults(func=cmd_suite)

    p_solve = sub.add_parser("solve", help="solve a sparse system")
    p_solve.add_argument("matrix", help="suite name or .mtx path")
    p_solve.add_argument("--solver", default="pcg",
                         choices=["pcg", "bicgstab", "gmres"])
    p_solve.add_argument("--precond", default="ic0",
                         choices=["none", "jacobi", "symgs", "ssor", "ic0"])
    p_solve.add_argument("--tol", type=float, default=1e-10)
    p_solve.add_argument("--max-iters", type=int, default=5000)
    p_solve.add_argument("--no-color", dest="color", action="store_false",
                         help="skip coloring+permutation preprocessing")
    p_solve.set_defaults(func=cmd_solve)

    p_map = sub.add_parser("map", help="map operands onto tiles")
    p_map.add_argument("matrix")
    p_map.add_argument("--mapper", default="azul",
                       choices=["round_robin", "block", "sparsep", "azul"])
    p_map.add_argument("--rows", type=int, default=8)
    p_map.add_argument("--cols", type=int, default=8)
    p_map.add_argument("--topology", default="torus",
                       choices=["torus", "mesh"], help="NoC topology")
    p_map.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the partitioner's "
                            "sub-bisections (result is identical)")
    p_map.set_defaults(func=cmd_map)

    p_sim = sub.add_parser("simulate", help="cycle-simulate PCG on Azul")
    p_sim.add_argument("matrix")
    p_sim.add_argument("--mapper", default="azul",
                       choices=["round_robin", "block", "sparsep", "azul"])
    p_sim.add_argument("--pe", default="azul",
                       choices=["azul", "azul_single", "dalorex", "ideal"])
    p_sim.add_argument("--rows", type=int, default=8)
    p_sim.add_argument("--cols", type=int, default=8)
    p_sim.add_argument("--topology", default="torus",
                       choices=["torus", "mesh"], help="NoC topology")
    p_sim.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the partitioner's "
                            "sub-bisections (result is identical)")
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (e.g. fig20)")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for sweep-parallel "
                            "experiments")
    p_exp.set_defaults(func=cmd_experiment)

    p_run = sub.add_parser(
        "run", help="run experiments via the runner (sweeps honor --jobs)",
    )
    p_run.add_argument("ids", nargs="*",
                       help="experiment ids (default: all)")
    p_run.add_argument("--list", action="store_true",
                       help="list experiments (id, title, tags) and exit")
    p_run.add_argument("--filter", action="append", default=None,
                       metavar="TAG",
                       help="only run experiments carrying TAG "
                            "(repeatable)")
    p_run.add_argument("--plan", action="store_true",
                       help="dry-run: print the deduplicated sweep plan "
                            "and predicted cache hits, simulate nothing")
    p_run.add_argument("--resume", action="store_true",
                       help="skip experiments already checkpointed in "
                            "the artifact cache")
    p_run.add_argument("--keep-going", action="store_true",
                       help="continue past failing experiments; exit 1 "
                            "at the end if any failed")
    p_run.add_argument("--matrices", nargs="+", default=None,
                       metavar="NAME",
                       help="override the matrix set of experiments "
                            "that take one")
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the merged simulation "
                            "sweep (REPRO_JOBS also honored)")
    p_run.add_argument("--csv-dir", default=None, metavar="DIR",
                       help="also write each result as DIR/<id>.csv")
    p_run.add_argument("--cache-stats", action="store_true",
                       help="print artifact-cache statistics after the "
                            "runs")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace of the runs to PATH "
                            "(load at ui.perfetto.dev)")
    p_run.add_argument("--metrics", nargs="?", const="", default=None,
                       metavar="PATH",
                       help="write a JSON metrics artifact (default "
                            "PATH: <csv-dir>/metrics.json)")
    p_run.set_defaults(func=cmd_run)

    p_cache = sub.add_parser("cache", help="inspect/maintain the "
                                           "artifact cache")
    p_cache.add_argument("action", choices=["stats", "clear", "verify"])
    p_cache.add_argument("--fix", action="store_true",
                         help="verify: quarantine corrupt entries")
    p_cache.add_argument("--verbose", action="store_true",
                         help="verify: list healthy entries too")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""SparseP-style coordinate-based 2D mapping (Sec. VI-C).

The matrix is first split into ``pc`` chunks of contiguous *columns*
with (approximately) equal nonzero counts, then each column chunk is
split into ``pr`` chunks of contiguous *rows* with equal nonzeros,
yielding ``P = pc * pr`` partitions that are contiguous in coordinate
space.  Works when adjacent rows/columns have correlated patterns;
fails on uncorrelated matrices — exactly the paper's critique.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.placement import Placement, pin_diagonals
from repro.errors import MappingError
from repro.sparse.csr import CSRMatrix


def _grid_factors(n_tiles: int):
    """Split P into the most-square ``(pc, pr)`` factor pair."""
    pc = int(math.isqrt(n_tiles))
    while pc > 1 and n_tiles % pc != 0:
        pc -= 1
    return pc, n_tiles // pc


def _equal_nnz_boundaries(counts: np.ndarray, n_chunks: int) -> np.ndarray:
    """Chunk boundaries over an index range so chunks have ~equal mass.

    Returns ``bounds`` of length ``n_chunks + 1``; chunk ``k`` covers
    indices ``[bounds[k], bounds[k+1])``.
    """
    total = counts.sum()
    cumulative = np.concatenate(([0], np.cumsum(counts)))
    targets = total * np.arange(1, n_chunks) / n_chunks
    inner = np.searchsorted(cumulative[1:-1], targets, side="left") + 1
    bounds = np.concatenate(([0], inner, [len(counts)]))
    return np.maximum.accumulate(bounds)  # ensure monotone


def _chunk_of(bounds: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Chunk id of each index given chunk boundaries."""
    return np.clip(
        np.searchsorted(bounds, index, side="right") - 1,
        0, len(bounds) - 2,
    )


def _map_matrix(matrix: CSRMatrix, pc: int, pr: int):
    """2D-chunk one matrix; returns (tile ids per nnz, col bounds,
    per-chunk row bounds) so vector placement can reuse the grid."""
    n = matrix.n_rows
    rows = np.repeat(np.arange(n), matrix.row_nnz())
    cols = matrix.indices
    col_counts = np.bincount(cols, minlength=matrix.n_cols)
    col_bounds = _equal_nnz_boundaries(col_counts, pc)
    col_chunk = _chunk_of(col_bounds, cols)

    tiles = np.empty(matrix.nnz, dtype=np.int64)
    row_bounds_per_chunk = []
    for c in range(pc):
        members = col_chunk == c
        row_counts = np.bincount(rows[members], minlength=n)
        row_bounds = _equal_nnz_boundaries(row_counts, pr)
        row_bounds_per_chunk.append(row_bounds)
        row_chunk = _chunk_of(row_bounds, rows[members])
        tiles[members] = c * pr + row_chunk
    return tiles, col_bounds, row_bounds_per_chunk


def map_sparsep(matrix: CSRMatrix, lower: CSRMatrix,
                n_tiles: int) -> Placement:
    """Coordinate-space 2D equal-nnz mapping of A, L, and vectors.

    Vector index ``i`` is homed on the tile owning coordinate ``(i, i)``
    of A's chunk grid, keeping the vector contiguous in the same
    coordinate space.
    """
    pc, pr = _grid_factors(n_tiles)
    if pc * pr != n_tiles:
        raise MappingError(f"cannot factor {n_tiles} tiles into a 2D grid")
    a_tiles, col_bounds, row_bounds = _map_matrix(matrix, pc, pr)
    l_tiles, _, _ = _map_matrix(lower, pc, pr)

    n = matrix.n_rows
    indices = np.arange(n)
    diag_col_chunk = _chunk_of(col_bounds, indices)
    vec_tile = np.empty(n, dtype=np.int64)
    for c in range(pc):
        members = diag_col_chunk == c
        vec_tile[members] = c * pr + _chunk_of(
            row_bounds[c], indices[members]
        )

    placement = Placement(
        n_tiles=n_tiles,
        a_tile=a_tiles,
        l_tile=l_tiles,
        vec_tile=vec_tile,
        mapper="sparsep",
    )
    return pin_diagonals(placement, lower)

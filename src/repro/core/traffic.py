"""Static NoC-traffic analysis of a placement (Figs. 10/11 machinery).

Given a placement, every kernel's communication is fully determined
(Sec. IV-A):

* SpMV: ``v_j`` is multicast from its home down column ``j``'s tiles;
  per-row partial sums are reduced into ``y_i``'s home.
* forward SpTRSV with L: solved ``x_j`` is multicast down L's column
  ``j``; row partials reduce into the solve site of ``x_i``.
* backward SpTRSV with L^T: columns and rows swap roles (L^T's column
  ``j`` is L's row ``j``).

Messages are counted per the paper's model — a set spanning N tiles
induces N-1 messages — and link activations come from the actual
multicast/reduction trees the fabric builds
(:class:`repro.sim.fabric.FabricModel`), so static analysis and the
dynamic simulator agree on routing by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import Placement
from repro.sim.fabric import FabricModel
from repro.sparse.csr import CSRMatrix


@dataclass
class KernelTraffic:
    """Traffic of one kernel under one placement."""

    name: str
    multicast_messages: int = 0
    reduction_messages: int = 0
    link_activations: int = 0
    per_link: dict = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return self.multicast_messages + self.reduction_messages


@dataclass
class TrafficReport:
    """Traffic of a full PCG iteration under one placement."""

    mapper: str
    kernels: list

    @property
    def total_messages(self) -> int:
        return sum(k.total_messages for k in self.kernels)

    @property
    def total_link_activations(self) -> int:
        return sum(k.link_activations for k in self.kernels)

    def max_link_load(self) -> int:
        """Activations on the single busiest directed link."""
        load = {}
        for kernel in self.kernels:
            for link, count in kernel.per_link.items():
                load[link] = load.get(link, 0) + count
        return max(load.values()) if load else 0


def _tiles_by_group(group_ids: np.ndarray, tiles: np.ndarray, n_groups: int):
    """For each group id, the sorted unique tiles holding its members."""
    order = np.argsort(group_ids, kind="stable")
    sorted_groups = group_ids[order]
    sorted_tiles = tiles[order]
    starts = np.searchsorted(sorted_groups, np.arange(n_groups + 1))
    return [
        np.unique(sorted_tiles[starts[g]:starts[g + 1]])
        for g in range(n_groups)
    ]


def _kernel_traffic(name: str, fabric: FabricModel,
                    col_tiles: list, row_tiles: list,
                    vec_tile: np.ndarray) -> KernelTraffic:
    """Traffic of one kernel given per-column and per-row tile sets."""
    traffic = KernelTraffic(name)
    per_link = traffic.per_link
    for j, tiles in enumerate(col_tiles):
        home = int(vec_tile[j])
        destinations = [t for t in tiles if t != home]
        if not destinations:
            continue
        traffic.multicast_messages += len(destinations)
        tree = fabric.multicast_tree(home, destinations)
        traffic.link_activations += tree.n_link_activations
        for edge in tree.edges:
            per_link[edge] = per_link.get(edge, 0) + 1
    for i, tiles in enumerate(row_tiles):
        home = int(vec_tile[i])
        sources = [t for t in tiles if t != home]
        if not sources:
            continue
        traffic.reduction_messages += len(sources)
        tree = fabric.reduction_tree(home, sources)
        traffic.link_activations += tree.n_link_activations
        for edge in tree.edges:
            per_link[edge] = per_link.get(edge, 0) + 1
    return traffic


def analyze_traffic(placement: Placement, matrix: CSRMatrix,
                    lower: CSRMatrix, torus) -> TrafficReport:
    """Full-iteration traffic: SpMV + forward SpTRSV + backward SpTRSV.

    ``torus`` may be a raw geometry (torus or mesh) or an existing
    :class:`~repro.sim.fabric.FabricModel`; tree construction always
    goes through the fabric so this static analysis matches the
    simulator's routing exactly.
    """
    fabric = torus if isinstance(torus, FabricModel) else FabricModel(torus)
    n = matrix.n_rows
    a_rows = np.repeat(np.arange(n), matrix.row_nnz())
    a_cols = matrix.indices
    l_rows = np.repeat(np.arange(n), lower.row_nnz())
    l_cols = lower.indices
    # Off-diagonal entries only: diagonal work is local to the home tile.
    l_off = l_rows != l_cols

    spmv = _kernel_traffic(
        "spmv", fabric,
        _tiles_by_group(a_cols, placement.a_tile, n),
        _tiles_by_group(a_rows, placement.a_tile, n),
        placement.vec_tile,
    )
    forward = _kernel_traffic(
        "sptrsv_lower", fabric,
        _tiles_by_group(l_cols[l_off], placement.l_tile[l_off], n),
        _tiles_by_group(l_rows[l_off], placement.l_tile[l_off], n),
        placement.vec_tile,
    )
    # L^T solve: L's rows become columns and vice versa.
    backward = _kernel_traffic(
        "sptrsv_upper", fabric,
        _tiles_by_group(l_rows[l_off], placement.l_tile[l_off], n),
        _tiles_by_group(l_cols[l_off], placement.l_tile[l_off], n),
        placement.vec_tile,
    )
    return TrafficReport(
        mapper=placement.mapper,
        kernels=[spmv, forward, backward],
    )

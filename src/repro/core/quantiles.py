"""Temporal quantile weights for time-balanced partitioning (Sec. IV-C).

Hypergraph partitioning with only data-balance constraints can
concentrate early- or late-dataflow work on few tiles, serializing
SpTRSV (Fig. 17).  The fix: bucket every vertex by the *depth* of its
associated arithmetic operation in the dataflow's topological order,
then balance each depth quantile across partitions using the
partitioner's multi-constraint support.
"""

from __future__ import annotations

import numpy as np

from repro.graph.levels import level_schedule
from repro.sparse.csr import CSRMatrix


def pcg_vertex_depths(matrix: CSRMatrix, lower: CSRMatrix) -> np.ndarray:
    """Dataflow depth of each hypergraph vertex in one PCG iteration.

    Vertex order matches :func:`~repro.core.azul_mapping
    .build_pcg_hypergraph`: A nonzeros, then L nonzeros, then vector
    slots.  SpMV operations are shallow (depth 0); each L nonzero's FMAC
    fires when its row is being solved, so its depth is the row's level;
    a vector slot's defining operation is solving ``x_i``, also at the
    row's level.
    """
    schedule = level_schedule(lower)
    levels = schedule.levels
    a_depths = np.zeros(matrix.nnz, dtype=np.int64)
    l_rows = np.repeat(np.arange(lower.n_rows), lower.row_nnz())
    l_depths = levels[l_rows] + 1
    vec_depths = levels + 1
    return np.concatenate([a_depths, l_depths, vec_depths])


def depth_quantile_weights(depths: np.ndarray, q: int = 5) -> np.ndarray:
    """One-hot quantile membership weights, shape ``(n_vertices, q)``.

    Vertices are ranked by depth (stable, so equal depths stay grouped)
    and split into ``q`` equal-count buckets; column ``c`` is 1 for
    members of quantile ``c``.  Balancing each column across partitions
    balances work *over time* (the paper uses ``q = 5``).
    """
    if q < 1:
        raise ValueError("q must be at least 1")
    n = len(depths)
    weights = np.zeros((n, q))
    if n == 0:
        return weights
    order = np.argsort(depths, kind="stable")
    bucket_of_rank = np.minimum(np.arange(n) * q // n, q - 1)
    weights[order, bucket_of_rank] = 1.0
    return weights

"""Placement persistence: save and load mappings.

Azul mappings cost minutes to compute and are reused for hours
(Sec. VI-D), so persisting them is part of the workflow.  The
experiment cache does this internally; these functions expose a public,
self-describing format (NPZ with a schema version) so users can ship
placements alongside their matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement
from repro.errors import MappingError

_FORMAT_VERSION = 1


def save_placement(path, placement: Placement):
    """Write a placement to ``path`` (NPZ, compressed)."""
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        n_tiles=placement.n_tiles,
        a_tile=placement.a_tile,
        l_tile=placement.l_tile,
        vec_tile=placement.vec_tile,
        mapper=str(placement.mapper),
    )


def load_placement(path) -> Placement:
    """Read a placement written by :func:`save_placement`.

    Validates the schema version and tile-id ranges (via the
    :class:`Placement` constructor).
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise MappingError(
                f"unsupported placement format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return Placement(
            n_tiles=int(data["n_tiles"]),
            a_tile=data["a_tile"],
            l_tile=data["l_tile"],
            vec_tile=data["vec_tile"],
            mapper=str(data["mapper"]),
        )


def placements_equal(first: Placement, second: Placement) -> bool:
    """Structural equality of two placements."""
    return (
        first.n_tiles == second.n_tiles
        and np.array_equal(first.a_tile, second.a_tile)
        and np.array_equal(first.l_tile, second.l_tile)
        and np.array_equal(first.vec_tile, second.vec_tile)
    )

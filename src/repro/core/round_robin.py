"""Round Robin mapping (Dalorex's strategy, Sec. III).

Nonzeros are listed in row-major order and nonzero ``i`` is assigned to
tile ``i mod P``.  Position-based and sparsity-pattern agnostic: rows
and columns shatter across all tiles, so nearly every value must travel
over the NoC — the traffic pathology Fig. 11 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement, pin_diagonals
from repro.sparse.csr import CSRMatrix


def map_round_robin(matrix: CSRMatrix, lower: CSRMatrix,
                    n_tiles: int) -> Placement:
    """Assign operands round-robin over the tiles."""
    placement = Placement(
        n_tiles=n_tiles,
        a_tile=np.arange(matrix.nnz, dtype=np.int64) % n_tiles,
        l_tile=np.arange(lower.nnz, dtype=np.int64) % n_tiles,
        vec_tile=np.arange(matrix.n_rows, dtype=np.int64) % n_tiles,
        mapper="round_robin",
    )
    return pin_diagonals(placement, lower)

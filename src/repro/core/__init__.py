"""Azul's data-mapping algorithms (the paper's core contribution, Sec. IV).

A *mapping* places every operand value — matrix nonzeros and vector
elements — on a specific tile.  The mapping alone determines NoC
traffic (Sec. IV-A), so the paper compares four strategies (Sec. VI-C):

* **Round Robin** (Dalorex): nonzero ``i`` of the row-major enumeration
  goes to tile ``i mod P``.
* **Block** (Tascade / MPI practice): contiguous chunks of the row-major
  enumeration.
* **SparseP**: coordinate-space 2D chunking with equal-nnz splits.
* **Azul**: hypergraph partitioning with communication-set hyperedges,
  row-edge overweighting, and temporal quantile balance constraints.
"""

from repro.core.placement import Placement, placement_stats
from repro.core.round_robin import map_round_robin
from repro.core.block import map_block
from repro.core.sparsep import map_sparsep
from repro.core.azul_mapping import map_azul, build_pcg_hypergraph
from repro.core.quantiles import depth_quantile_weights
from repro.core.traffic import TrafficReport, analyze_traffic
from repro.core.registry import MAPPERS, get_mapper
from repro.core.mapping_io import (
    load_placement,
    placements_equal,
    save_placement,
)

__all__ = [
    "Placement",
    "placement_stats",
    "map_round_robin",
    "map_block",
    "map_sparsep",
    "map_azul",
    "build_pcg_hypergraph",
    "depth_quantile_weights",
    "TrafficReport",
    "analyze_traffic",
    "MAPPERS",
    "get_mapper",
    "save_placement",
    "load_placement",
    "placements_equal",
]

"""Placement of PCG operands across tiles.

A :class:`Placement` records, for every nonzero of A, every nonzero of
the preconditioner factor L, and every vector index, the tile that holds
it.  All per-index vector values (x, r, z, p, Ap, scratch) are co-placed
at one *home* tile, which is also where that index's diagonal work
happens (solving ``x_i`` in SpTRSV, reducing ``y_i`` in SpMV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import AzulConfig
from repro.errors import CapacityError, MappingError
from repro.sparse.csr import CSRMatrix

#: Dense vectors PCG keeps live per index (x, r, z, p, Ap, scratch).
PCG_VECTORS_PER_INDEX = 6


@dataclass
class Placement:
    """Tile assignment of all PCG operands.

    Attributes
    ----------
    n_tiles:
        Number of tiles data is spread over.
    a_tile:
        Tile of each A nonzero, aligned with A's CSR order.
    l_tile:
        Tile of each L nonzero, aligned with L's CSR order.  Diagonal
        entries are pinned to the row's vector home (see
        :func:`pin_diagonals`).
    vec_tile:
        Home tile of each vector index.
    mapper:
        Name of the algorithm that produced this placement.
    """

    n_tiles: int
    a_tile: np.ndarray
    l_tile: np.ndarray
    vec_tile: np.ndarray
    mapper: str = "unknown"

    def __post_init__(self):
        for name, arr in (
            ("a_tile", self.a_tile),
            ("l_tile", self.l_tile),
            ("vec_tile", self.vec_tile),
        ):
            arr = np.asarray(arr, dtype=np.int64)
            setattr(self, name, arr)
            if len(arr) and (arr.min() < 0 or arr.max() >= self.n_tiles):
                raise MappingError(f"{name} contains out-of-range tile ids")

    # ------------------------------------------------------------------
    def tile_bytes(self, config: AzulConfig) -> np.ndarray:
        """Data-SRAM bytes used on each tile."""
        used = np.zeros(self.n_tiles, dtype=np.int64)
        np.add.at(used, self.a_tile, config.nnz_bytes)
        np.add.at(used, self.l_tile, config.nnz_bytes)
        np.add.at(
            used, self.vec_tile,
            config.vector_bytes * PCG_VECTORS_PER_INDEX,
        )
        return used

    def validate_capacity(self, config: AzulConfig):
        """Raise :class:`CapacityError` if any tile exceeds its Data SRAM."""
        used = self.tile_bytes(config)
        worst = int(used.max()) if len(used) else 0
        if worst > config.data_sram_bytes:
            raise CapacityError(
                f"tile overflows Data SRAM: {worst} bytes used, "
                f"{config.data_sram_bytes} available"
            )

    def tile_nnz_counts(self) -> np.ndarray:
        """Matrix nonzeros (A + L) stored per tile."""
        counts = np.zeros(self.n_tiles, dtype=np.int64)
        np.add.at(counts, self.a_tile, 1)
        np.add.at(counts, self.l_tile, 1)
        return counts


def pin_diagonals(placement: Placement, lower: CSRMatrix) -> Placement:
    """Pin L's diagonal entries to their row's vector home tile.

    Solving ``x_i`` happens at ``vec_tile[i]`` (the paper stores the
    reciprocal diagonal with the solve site, Sec. VI-A), so the diagonal
    value must live there regardless of what the mapper chose.
    """
    l_tile = placement.l_tile.copy()
    indptr, indices = lower.indptr, lower.indices
    for i in range(lower.n_rows):
        for k in range(indptr[i], indptr[i + 1]):
            if indices[k] == i:
                l_tile[k] = placement.vec_tile[i]
    return Placement(
        n_tiles=placement.n_tiles,
        a_tile=placement.a_tile,
        l_tile=l_tile,
        vec_tile=placement.vec_tile,
        mapper=placement.mapper,
    )


def placement_stats(placement: Placement) -> dict:
    """Load-balance summary of a placement."""
    counts = placement.tile_nnz_counts()
    vec_counts = np.bincount(
        placement.vec_tile, minlength=placement.n_tiles
    )
    return {
        "mapper": placement.mapper,
        "n_tiles": placement.n_tiles,
        "nnz_per_tile_max": int(counts.max()),
        "nnz_per_tile_mean": float(counts.mean()),
        "nnz_imbalance": float(counts.max() / counts.mean())
        if counts.mean() > 0 else 0.0,
        "vec_per_tile_max": int(vec_counts.max()),
    }

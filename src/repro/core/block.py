"""Block mapping (Tascade's strategy; also common MPI practice, Sec. IV-E).

The row-major nonzero enumeration is split into P contiguous chunks of
``ceil(nnz / P)``.  Better than Round Robin (consecutive nonzeros of a
row stay together) but still position-based: column locality is ignored
entirely.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement, pin_diagonals
from repro.sparse.csr import CSRMatrix


def _block_assign(count: int, n_tiles: int) -> np.ndarray:
    """Assign ``count`` items to tiles in equal contiguous blocks."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    block = -(-count // n_tiles)  # ceil division
    return np.minimum(np.arange(count, dtype=np.int64) // block, n_tiles - 1)


def map_block(matrix: CSRMatrix, lower: CSRMatrix, n_tiles: int) -> Placement:
    """Assign operands in contiguous row-major blocks."""
    placement = Placement(
        n_tiles=n_tiles,
        a_tile=_block_assign(matrix.nnz, n_tiles),
        l_tile=_block_assign(lower.nnz, n_tiles),
        vec_tile=_block_assign(matrix.n_rows, n_tiles),
        mapper="block",
    )
    return pin_diagonals(placement, lower)

"""Mapper registry: the four strategies compared in Sec. VI-C."""

from __future__ import annotations

from repro.core.azul_mapping import map_azul
from repro.core.block import map_block
from repro.core.round_robin import map_round_robin
from repro.core.sparsep import map_sparsep

#: Name -> mapper callable ``(matrix, lower, n_tiles, **kwargs) -> Placement``.
MAPPERS = {
    "round_robin": map_round_robin,
    "block": map_block,
    "sparsep": map_sparsep,
    "azul": map_azul,
}


def get_mapper(name: str):
    """Look up a mapper by name."""
    try:
        return MAPPERS[name]
    except KeyError:
        raise KeyError(
            f"unknown mapper {name!r}; choices: {sorted(MAPPERS)}"
        ) from None

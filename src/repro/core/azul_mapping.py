"""Azul's hypergraph-partitioning data mapping (Sec. IV).

Every data value — each nonzero of A, each nonzero of L, and each
vector index's home — is a hypergraph vertex.  Each *communication set*
is a hyperedge:

* column ``j`` of a matrix together with vector slot ``j`` (the
  multicast set of ``v_j`` / solved ``x_j``);
* row ``i`` of a matrix together with vector slot ``i`` (the reduction
  set of ``y_i`` / the partial sums feeding ``x_i``).

Row hyperedges get a larger weight than column hyperedges because
splitting a reduction costs a standalone Add and can delay
parallelism-revealing variable eliminations (Sec. IV-C).  Balance
constraints combine SRAM bytes with the temporal depth quantiles of
:mod:`repro.core.quantiles`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.obs as obs
from repro.core.placement import (
    PCG_VECTORS_PER_INDEX,
    Placement,
    pin_diagonals,
)
from repro.core.quantiles import depth_quantile_weights, pcg_vertex_depths
from repro.hypergraph import Hypergraph, PartitionerOptions, partition
from repro.sparse.csr import CSRMatrix

#: Default weight ratio of row (reduction) to column (multicast) edges.
DEFAULT_ROW_WEIGHT = 2.0


def _matrix_edges(matrix: CSRMatrix, nnz_offset: int, vec_offset: int,
                  row_weight: float):
    """Row and column hyperedges of one matrix, as (pins, weight) pairs."""
    n = matrix.n_rows
    rows = np.repeat(np.arange(n), matrix.row_nnz())
    cols = matrix.indices
    nnz_ids = np.arange(matrix.nnz) + nnz_offset

    edges = []
    weights = []
    # Row edges: reduction sets {nonzeros of row i} + vec slot i.
    row_order = np.argsort(rows, kind="stable")
    row_starts = np.searchsorted(rows[row_order], np.arange(n + 1))
    for i in range(n):
        members = nnz_ids[row_order[row_starts[i]:row_starts[i + 1]]]
        if len(members):
            edges.append(np.append(members, vec_offset + i))
            weights.append(row_weight)
    # Column edges: multicast sets {nonzeros of column j} + vec slot j.
    col_order = np.argsort(cols, kind="stable")
    col_starts = np.searchsorted(cols[col_order], np.arange(n + 1))
    for j in range(n):
        members = nnz_ids[col_order[col_starts[j]:col_starts[j + 1]]]
        if len(members):
            edges.append(np.append(members, vec_offset + j))
            weights.append(1.0)
    return edges, weights


def build_pcg_hypergraph(matrix: CSRMatrix, lower: CSRMatrix,
                         q: int = 5,
                         row_weight: float = DEFAULT_ROW_WEIGHT,
                         nnz_bytes: int = 12,
                         vector_bytes: int = 8) -> Hypergraph:
    """Hypergraph of one PCG iteration's communication sets.

    Vertices: A nonzeros ``[0, nnzA)``, L nonzeros ``[nnzA, nnzA+nnzL)``,
    vector slots ``[nnzA+nnzL, +n)``.  Vertex weight columns: SRAM bytes
    first, then ``q`` temporal quantile indicators (``q = 0`` disables
    time balancing — the "nonzero balancing" baseline of Fig. 17).
    """
    n = matrix.n_rows
    n_vertices = matrix.nnz + lower.nnz + n
    vec_offset = matrix.nnz + lower.nnz

    a_edges, a_weights = _matrix_edges(matrix, 0, vec_offset, row_weight)
    l_edges, l_weights = _matrix_edges(
        lower, matrix.nnz, vec_offset, row_weight
    )
    edges = a_edges + l_edges
    edge_weights = np.array(a_weights + l_weights)

    bytes_col = np.concatenate([
        np.full(matrix.nnz, nnz_bytes, dtype=np.float64),
        np.full(lower.nnz, nnz_bytes, dtype=np.float64),
        np.full(n, vector_bytes * PCG_VECTORS_PER_INDEX, dtype=np.float64),
    ])
    if q > 0:
        depths = pcg_vertex_depths(matrix, lower)
        quantiles = depth_quantile_weights(depths, q)
        vertex_weights = np.column_stack([bytes_col, quantiles])
    else:
        vertex_weights = bytes_col[:, None]

    return Hypergraph(n_vertices, edges, edge_weights, vertex_weights)


def map_azul(matrix: CSRMatrix, lower: CSRMatrix, n_tiles: int,
             q: int = 5, row_weight: float = DEFAULT_ROW_WEIGHT,
             options: Optional[PartitionerOptions] = None,
             jobs: Optional[int] = None) -> Placement:
    """Azul's data mapping: partition the PCG hypergraph over the tiles.

    Parameters
    ----------
    q:
        Number of temporal balance quantiles (5 in the paper; 0 gives
        the nonzero-balancing-only ablation of Fig. 17).
    row_weight:
        Reduction-edge weight relative to multicast edges (Sec. IV-C).
    options:
        Partitioner preset; defaults to
        :meth:`PartitionerOptions.quality` scaled-down default.
    jobs:
        Worker-process bound for the partitioner's independent
        sub-bisections; ``None``/``1`` is serial.  Placements are
        bit-identical regardless of ``jobs``.
    """
    with obs.timer("place.build_hypergraph"):
        hgraph = build_pcg_hypergraph(matrix, lower, q=q,
                                      row_weight=row_weight)
    options = options or PartitionerOptions(seed=0)
    with obs.timer("place.partition", n_tiles=n_tiles,
                   n_vertices=hgraph.n_vertices):
        assignment = partition(hgraph, n_tiles, options, jobs=jobs)

    vec_offset = matrix.nnz + lower.nnz
    placement = Placement(
        n_tiles=n_tiles,
        a_tile=assignment[:matrix.nnz],
        l_tile=assignment[matrix.nnz:vec_offset],
        vec_tile=assignment[vec_offset:],
        mapper="azul" if q > 0 else "azul_nnz_balanced",
    )
    return pin_diagonals(placement, lower)

"""Multilevel multi-constraint hypergraph partitioning.

A from-scratch replacement for PaToH (which the paper uses, Sec. VI-A):
coarsening by connectivity-based matching, greedy initial bisection,
Fiduccia-Mattheyses boundary refinement, and recursive bisection into P
parts.  Supports the multiple balance constraints that Azul's
time-balancing extension requires (Sec. IV-C).
"""

from repro.hypergraph.hgraph import Hypergraph
from repro.hypergraph.metrics import (
    cut_weight,
    connectivity_cut,
    balance_ratios,
    is_balanced,
)
from repro.hypergraph.partitioner import partition, PartitionerOptions
from repro.hypergraph.rebalance import rebalance

# Strategy modules self-register in refine.STRATEGIES at import time;
# importing them here guarantees the registry is complete before any
# user code resolves a strategy (the package __init__ always runs
# first, even for direct submodule imports).
from repro.hypergraph import refine_vec as _refine_vec  # noqa: F401,E402

__all__ = [
    "Hypergraph",
    "cut_weight",
    "connectivity_cut",
    "balance_ratios",
    "is_balanced",
    "partition",
    "PartitionerOptions",
    "rebalance",
]

"""Multilevel multi-constraint hypergraph partitioning.

A from-scratch replacement for PaToH (which the paper uses, Sec. VI-A):
coarsening by connectivity-based matching, greedy initial bisection,
Fiduccia-Mattheyses boundary refinement, and recursive bisection into P
parts.  Supports the multiple balance constraints that Azul's
time-balancing extension requires (Sec. IV-C).
"""

from repro.hypergraph.hgraph import Hypergraph
from repro.hypergraph.metrics import (
    cut_weight,
    connectivity_cut,
    balance_ratios,
    is_balanced,
)
from repro.hypergraph.partitioner import partition, PartitionerOptions
from repro.hypergraph.rebalance import rebalance

__all__ = [
    "Hypergraph",
    "cut_weight",
    "connectivity_cut",
    "balance_ratios",
    "is_balanced",
    "partition",
    "PartitionerOptions",
    "rebalance",
]

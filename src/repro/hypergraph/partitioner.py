"""Multilevel recursive-bisection hypergraph partitioner.

The top-level :func:`partition` splits a hypergraph into ``n_parts``
balanced parts minimizing connectivity cut, via recursive bisection;
each bisection runs the full multilevel pipeline (coarsen, initial
partition, uncoarsen with FM refinement at every level).

Quality presets mirror PaToH's speed/default/quality knobs that the
paper mentions in Sec. VI-D.

Parallel recursion
------------------
After each bisection the left/right sub-problems are independent, so
``partition(..., jobs=N)`` dispatches them through a bounded process
pool.  Determinism is preserved by construction: every branch of the
recursion tree draws its randomness from its *own* generator, seeded by
``np.random.SeedSequence(options.seed, spawn_key=path)`` where ``path``
is the tuple of 0/1 branch directions from the root — so the result
depends only on ``(hypergraph, n_parts, options)`` and is bit-identical
for ``jobs=1`` and any ``jobs=N`` (enforced by
``tests/test_partitioner_equivalence.py``).  Worker or pool failures
degrade gracefully to the serial path (mirroring ``repro.parallel``).

Layer contract: ``partitioner`` is the top of the hypergraph stack
(above ``coarsen``/``initial``/``refine``/``refine_vec``) and never
imports ``repro.sim``/``repro.core``/``repro.experiments`` — callers
resolve job counts and pass plain integers down.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.errors import PartitionError
from repro.hypergraph.coarsen import (
    DEFAULT_MATCHING_EDGE_SIZE_LIMIT,
    coarsen,
)
from repro.hypergraph.hgraph import Hypergraph
from repro.hypergraph.initial import (
    DEFAULT_GROWTH_EDGE_SIZE_LIMIT,
    greedy_bisect,
)
from repro.hypergraph.refine import fm_refine

# Strategy modules self-register in refine.STRATEGIES at import time;
# importing the vectorized module here keeps the registry complete for
# direct ``partitioner`` imports too (refine itself must not import it:
# layer contract).
from repro.hypergraph import refine_vec as _refine_vec  # noqa: F401


@dataclass(frozen=True)
class PartitionerOptions:
    """Tuning knobs of the multilevel partitioner.

    ``epsilon`` is the allowed per-constraint imbalance (10% default,
    a common PaToH setting).  The quality presets trade cut quality for
    mapping time, mirroring the PaToH presets discussed in Sec. VI-D.

    ``refine`` selects the FM bookkeeping strategy by name (``None`` =
    the registry default: ``vectorized``, or ``reference`` when
    ``AZUL_PART_REFERENCE=1``).  ``matching_edge_size_limit`` and
    ``growth_edge_size_limit`` cap the hyperedge sizes scanned during
    coarsening / region growing; larger edges carry negligible per-pin
    connectivity and scanning them dominates runtime.
    """

    epsilon: float = 0.10
    seed: int = 0
    coarsen_until: int = 96
    max_coarsen_levels: int = 24
    fm_passes: int = 2
    initial_tries: int = 4
    stall_limit: int = 64
    refine: Optional[str] = None
    matching_edge_size_limit: int = DEFAULT_MATCHING_EDGE_SIZE_LIMIT
    growth_edge_size_limit: int = DEFAULT_GROWTH_EDGE_SIZE_LIMIT

    @classmethod
    def speed(cls, seed: int = 0) -> "PartitionerOptions":
        """Fastest preset: fewer tries, one FM pass, tight edge caps."""
        return cls(
            seed=seed, fm_passes=1, initial_tries=2, stall_limit=32,
            matching_edge_size_limit=48, growth_edge_size_limit=128,
        )

    @classmethod
    def quality(cls, seed: int = 0) -> "PartitionerOptions":
        """Highest-quality preset (the paper's choice, Sec. VI-D)."""
        return cls(
            seed=seed, fm_passes=4, initial_tries=8, stall_limit=128,
            matching_edge_size_limit=96, growth_edge_size_limit=512,
        )


def _branch_rng(options: PartitionerOptions,
                path: Tuple[int, ...]) -> np.random.Generator:
    """Generator for one branch of the recursion tree.

    Seeded from ``(options.seed, path)`` so every branch's randomness
    is independent of execution order — serial and parallel runs make
    identical draws.
    """
    return np.random.default_rng(
        np.random.SeedSequence(options.seed, spawn_key=path)
    )


def partition(hgraph: Hypergraph, n_parts: int,
              options: Optional[PartitionerOptions] = None,
              jobs: Optional[int] = None) -> np.ndarray:
    """Partition a hypergraph into ``n_parts`` parts.

    Returns an assignment array of length ``hgraph.n_vertices`` with
    values in ``[0, n_parts)``.  Balance is enforced per constraint to
    within ``1 + epsilon`` of ideal (plus single-vertex slack).

    ``jobs`` bounds the process pool used for independent sub-
    bisections; ``None`` or ``1`` runs serially.  Assignments are
    bit-identical regardless of ``jobs``.
    """
    if n_parts < 1:
        raise PartitionError("n_parts must be positive")
    options = options or PartitionerOptions()
    assignment = np.zeros(hgraph.n_vertices, dtype=np.int64)
    if n_parts == 1 or hgraph.n_vertices == 0:
        return assignment
    vertex_ids = np.arange(hgraph.n_vertices)
    if jobs is not None and jobs > 1:
        try:
            _recurse_parallel(
                hgraph, vertex_ids, n_parts, 0, assignment, options, jobs
            )
            return assignment
        except Exception:
            # Pool construction or a worker died (resource limits,
            # daemonic parent, ...): degrade to the serial path, which
            # produces the identical assignment.
            assignment = np.zeros(hgraph.n_vertices, dtype=np.int64)
    _recurse(hgraph, vertex_ids, n_parts, 0, assignment, options, ())
    return assignment


def _scatter_degenerate(vertex_ids: np.ndarray, n_parts: int,
                        part_offset: int, assignment: np.ndarray) -> None:
    """Round-robin scatter when there are no more vertices than parts."""
    for i in range(len(vertex_ids)):
        assignment[vertex_ids[i]] = part_offset + (i % n_parts)


def _recurse(hgraph: Hypergraph, vertex_ids: np.ndarray, n_parts: int,
             part_offset: int, assignment: np.ndarray,
             options: PartitionerOptions, path: Tuple[int, ...]) -> None:
    """Recursively bisect ``hgraph`` and write final part ids."""
    if n_parts == 1:
        assignment[vertex_ids] = part_offset
        return
    if hgraph.n_vertices <= n_parts:
        _scatter_degenerate(vertex_ids, n_parts, part_offset, assignment)
        return
    k0 = n_parts // 2
    fraction = k0 / n_parts
    side = multilevel_bisect(hgraph, fraction, options, _branch_rng(options, path))

    left_mask = side == 0
    left_ids = vertex_ids[left_mask]
    right_ids = vertex_ids[~left_mask]
    left_sub, _ = _induced(hgraph, left_mask)
    right_sub, _ = _induced(hgraph, ~left_mask)
    _recurse(left_sub, left_ids, k0, part_offset, assignment, options,
             path + (0,))
    _recurse(right_sub, right_ids, n_parts - k0, part_offset + k0,
             assignment, options, path + (1,))


def _bisect_worker(n_vertices: int, pins: np.ndarray, edge_ptr: np.ndarray,
                   edge_weights: np.ndarray, vertex_weights: np.ndarray,
                   fraction: float, options: PartitionerOptions,
                   path: Tuple[int, ...]) -> np.ndarray:
    """One multilevel bisection in a pool worker (flat-array payload)."""
    hgraph = Hypergraph.from_flat(
        n_vertices, pins, edge_ptr, edge_weights, vertex_weights
    )
    return multilevel_bisect(hgraph, fraction, options, _branch_rng(options, path))


def _recurse_parallel(hgraph: Hypergraph, vertex_ids: np.ndarray,
                      n_parts: int, part_offset: int,
                      assignment: np.ndarray, options: PartitionerOptions,
                      jobs: int) -> None:
    """Frontier-queue recursive bisection over a bounded process pool.

    The parent keeps the recursion tree: it submits one
    :func:`_bisect_worker` task per pending bisection, and on each
    completion induces the two sub-hypergraphs and submits the children.
    Base cases never touch the pool.
    """
    pending: Dict = {}

    def submit(executor: ProcessPoolExecutor, sub: Hypergraph,
               ids: np.ndarray, k: int, offset: int,
               path: Tuple[int, ...]) -> None:
        if k == 1:
            assignment[ids] = offset
            return
        if sub.n_vertices <= k:
            _scatter_degenerate(ids, k, offset, assignment)
            return
        fraction = (k // 2) / k
        future = executor.submit(
            _bisect_worker, sub.n_vertices, sub.pins, sub.edge_ptr,
            sub.edge_weights, sub.vertex_weights, fraction, options, path,
        )
        pending[future] = (sub, ids, k, offset, path)

    with ProcessPoolExecutor(max_workers=jobs) as executor:
        submit(executor, hgraph, vertex_ids, n_parts, part_offset, ())
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                sub, ids, k, offset, path = pending.pop(future)
                side = future.result()
                k0 = k // 2
                left_mask = side == 0
                left_sub, _ = _induced(sub, left_mask)
                right_sub, _ = _induced(sub, ~left_mask)
                submit(executor, left_sub, ids[left_mask], k0, offset,
                       path + (0,))
                submit(executor, right_sub, ids[~left_mask], k - k0,
                       offset + k0, path + (1,))


def _induced(hgraph: Hypergraph, mask: np.ndarray):
    """Sub-hypergraph induced by the masked vertices.

    Edges are restricted to surviving pins; edges left with fewer than
    two pins are dropped (they cannot be cut again).

    Works entirely on the flat pin/offset arrays: one vectorized pass
    renumbers pins, a prefix sum counts survivors per edge, and the
    kept pins are gathered in order — no per-edge Python loop.  Each
    edge's pins stay sorted and unique (the old -> new id map is
    strictly increasing on kept vertices), so the sub-hypergraph is
    built with :meth:`Hypergraph.from_flat`.
    """
    new_ids = np.full(hgraph.n_vertices, -1, dtype=np.int64)
    kept = np.nonzero(mask)[0]
    new_ids[kept] = np.arange(len(kept))

    local_pins = new_ids[hgraph.pins]
    keep_pin = local_pins >= 0
    # Surviving-pin count per edge via prefix sums (robust to empty
    # edges, unlike reduceat).
    csum = np.concatenate(([0], np.cumsum(keep_pin)))
    counts = csum[hgraph.edge_ptr[1:]] - csum[hgraph.edge_ptr[:-1]]
    keep_edge = counts >= 2

    pin_edge = hgraph.pin_edge_ids()
    select = keep_pin & keep_edge[pin_edge]
    sub_sizes = counts[keep_edge]
    sub = Hypergraph.from_flat(
        len(kept),
        local_pins[select],
        np.concatenate(([0], np.cumsum(sub_sizes))),
        hgraph.edge_weights[keep_edge],
        hgraph.vertex_weights[kept],
    )
    return sub, new_ids


def _caps(hgraph: Hypergraph, fraction: float, epsilon: float) -> np.ndarray:
    """Per-side weight ceilings for a (fraction, 1-fraction) bisection."""
    totals = hgraph.total_weights()
    slack = hgraph.vertex_weights.max(axis=0)
    caps = np.empty((2, hgraph.n_constraints))
    caps[0] = totals * fraction * (1.0 + epsilon) + slack
    caps[1] = totals * (1.0 - fraction) * (1.0 + epsilon) + slack
    return caps


def multilevel_bisect(hgraph: Hypergraph, fraction: float,
                      options: PartitionerOptions,
                      rng: np.random.Generator) -> np.ndarray:
    """One multilevel bisection: coarsen, initial partition, refine up.

    Each phase is wrapped in an :func:`repro.obs.timer` — the
    ``partition.coarsen`` / ``partition.initial`` / ``partition.refine``
    histograms and spans of the observability layer.  With
    observability disabled (the default) each wrapper is a single flag
    check; the phase bodies are untouched.
    """
    with obs.timer("partition.bisect", n_vertices=hgraph.n_vertices):
        with obs.timer("partition.coarsen"):
            levels, mappings = coarsen(
                hgraph, rng,
                stop_at=options.coarsen_until,
                max_levels=options.max_coarsen_levels,
                matching_edge_size_limit=options.matching_edge_size_limit,
            )
        coarsest = levels[-1]
        caps = _caps(coarsest, fraction, options.epsilon)
        with obs.timer("partition.initial"):
            side = greedy_bisect(
                coarsest, fraction, caps[0], rng,
                tries=options.initial_tries,
                edge_size_limit=options.growth_edge_size_limit,
            )
        with obs.timer("partition.refine"):
            side = fm_refine(
                coarsest, side, caps,
                passes=options.fm_passes, stall_limit=options.stall_limit,
                refine=options.refine,
            )
        # Project back through the levels, refining at each.
        for level_index in range(len(mappings) - 1, -1, -1):
            fine = levels[level_index]
            mapping = mappings[level_index]
            side = side[mapping]
            caps = _caps(fine, fraction, options.epsilon)
            with obs.timer("partition.refine"):
                side = fm_refine(
                    fine, side, caps,
                    passes=options.fm_passes,
                    stall_limit=options.stall_limit,
                    refine=options.refine,
                )
    return side

"""Multilevel recursive-bisection hypergraph partitioner.

The top-level :func:`partition` splits a hypergraph into ``n_parts``
balanced parts minimizing connectivity cut, via recursive bisection;
each bisection runs the full multilevel pipeline (coarsen, initial
partition, uncoarsen with FM refinement at every level).

Quality presets mirror PaToH's speed/default/quality knobs that the
paper mentions in Sec. VI-D.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import PartitionError
from repro.hypergraph.coarsen import coarsen
from repro.hypergraph.hgraph import Hypergraph
from repro.hypergraph.initial import greedy_bisect
from repro.hypergraph.refine import fm_refine


@dataclass(frozen=True)
class PartitionerOptions:
    """Tuning knobs of the multilevel partitioner.

    ``epsilon`` is the allowed per-constraint imbalance (10% default,
    a common PaToH setting).  The quality presets trade cut quality for
    mapping time, mirroring the PaToH presets discussed in Sec. VI-D.
    """

    epsilon: float = 0.10
    seed: int = 0
    coarsen_until: int = 96
    max_coarsen_levels: int = 24
    fm_passes: int = 2
    initial_tries: int = 4
    stall_limit: int = 64

    @classmethod
    def speed(cls, seed: int = 0) -> "PartitionerOptions":
        """Fastest preset: fewer tries, one FM pass."""
        return cls(seed=seed, fm_passes=1, initial_tries=2, stall_limit=32)

    @classmethod
    def quality(cls, seed: int = 0) -> "PartitionerOptions":
        """Highest-quality preset (the paper's choice, Sec. VI-D)."""
        return cls(seed=seed, fm_passes=4, initial_tries=8, stall_limit=128)


def partition(hgraph: Hypergraph, n_parts: int,
              options: PartitionerOptions = None) -> np.ndarray:
    """Partition a hypergraph into ``n_parts`` parts.

    Returns an assignment array of length ``hgraph.n_vertices`` with
    values in ``[0, n_parts)``.  Balance is enforced per constraint to
    within ``1 + epsilon`` of ideal (plus single-vertex slack).
    """
    if n_parts < 1:
        raise PartitionError("n_parts must be positive")
    options = options or PartitionerOptions()
    assignment = np.zeros(hgraph.n_vertices, dtype=np.int64)
    if n_parts == 1 or hgraph.n_vertices == 0:
        return assignment
    rng = np.random.default_rng(options.seed)
    vertex_ids = np.arange(hgraph.n_vertices)
    _recurse(hgraph, vertex_ids, n_parts, 0, assignment, options, rng)
    return assignment


def _recurse(hgraph: Hypergraph, vertex_ids: np.ndarray, n_parts: int,
             part_offset: int, assignment: np.ndarray,
             options: PartitionerOptions, rng: np.random.Generator):
    """Recursively bisect ``hgraph`` and write final part ids."""
    if n_parts == 1:
        assignment[vertex_ids] = part_offset
        return
    if hgraph.n_vertices <= n_parts:
        # Degenerate: scatter vertices round-robin over the parts.
        for i in range(hgraph.n_vertices):
            assignment[vertex_ids[i]] = part_offset + (i % n_parts)
        return
    k0 = n_parts // 2
    fraction = k0 / n_parts
    side = multilevel_bisect(hgraph, fraction, options, rng)

    left_mask = side == 0
    left_ids = vertex_ids[left_mask]
    right_ids = vertex_ids[~left_mask]
    left_sub, left_local = _induced(hgraph, left_mask)
    right_sub, right_local = _induced(hgraph, ~left_mask)
    del left_local, right_local
    _recurse(left_sub, left_ids, k0, part_offset, assignment, options, rng)
    _recurse(
        right_sub, right_ids, n_parts - k0, part_offset + k0,
        assignment, options, rng,
    )


def _induced(hgraph: Hypergraph, mask: np.ndarray):
    """Sub-hypergraph induced by the masked vertices.

    Edges are restricted to surviving pins; edges left with fewer than
    two pins are dropped (they cannot be cut again).

    Works entirely on the flat pin/offset arrays: one vectorized pass
    renumbers pins, a prefix sum counts survivors per edge, and the
    kept pins are gathered in order — no per-edge Python loop.  Each
    edge's pins stay sorted and unique (the old -> new id map is
    strictly increasing on kept vertices), so the sub-hypergraph is
    built with :meth:`Hypergraph.from_flat`.
    """
    new_ids = np.full(hgraph.n_vertices, -1, dtype=np.int64)
    kept = np.nonzero(mask)[0]
    new_ids[kept] = np.arange(len(kept))

    local_pins = new_ids[hgraph.pins]
    keep_pin = local_pins >= 0
    # Surviving-pin count per edge via prefix sums (robust to empty
    # edges, unlike reduceat).
    csum = np.concatenate(([0], np.cumsum(keep_pin)))
    counts = csum[hgraph.edge_ptr[1:]] - csum[hgraph.edge_ptr[:-1]]
    keep_edge = counts >= 2

    pin_edge = np.repeat(np.arange(hgraph.n_edges), hgraph.edge_sizes())
    select = keep_pin & keep_edge[pin_edge]
    sub_sizes = counts[keep_edge]
    sub = Hypergraph.from_flat(
        len(kept),
        local_pins[select],
        np.concatenate(([0], np.cumsum(sub_sizes))),
        hgraph.edge_weights[keep_edge],
        hgraph.vertex_weights[kept],
    )
    return sub, new_ids


def _caps(hgraph: Hypergraph, fraction: float, epsilon: float) -> np.ndarray:
    """Per-side weight ceilings for a (fraction, 1-fraction) bisection."""
    totals = hgraph.total_weights()
    slack = hgraph.vertex_weights.max(axis=0)
    caps = np.empty((2, hgraph.n_constraints))
    caps[0] = totals * fraction * (1.0 + epsilon) + slack
    caps[1] = totals * (1.0 - fraction) * (1.0 + epsilon) + slack
    return caps


def multilevel_bisect(hgraph: Hypergraph, fraction: float,
                      options: PartitionerOptions,
                      rng: np.random.Generator) -> np.ndarray:
    """One multilevel bisection: coarsen, initial partition, refine up."""
    levels, mappings = coarsen(
        hgraph, rng,
        stop_at=options.coarsen_until,
        max_levels=options.max_coarsen_levels,
    )
    coarsest = levels[-1]
    caps = _caps(coarsest, fraction, options.epsilon)
    side = greedy_bisect(
        coarsest, fraction, caps[0], rng, tries=options.initial_tries
    )
    side = fm_refine(
        coarsest, side, caps,
        passes=options.fm_passes, stall_limit=options.stall_limit,
    )
    # Project back through the levels, refining at each.
    for level_index in range(len(mappings) - 1, -1, -1):
        fine = levels[level_index]
        mapping = mappings[level_index]
        side = side[mapping]
        caps = _caps(fine, fraction, options.epsilon)
        side = fm_refine(
            fine, side, caps,
            passes=options.fm_passes, stall_limit=options.stall_limit,
        )
    return side

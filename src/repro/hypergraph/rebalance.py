"""Post-partitioning balance repair.

Recursive bisection enforces balance per split, but tolerances compound
multiplicatively down the recursion tree, so the final P-way partition
can exceed the requested imbalance.  :func:`rebalance` repairs this
directly: vertices migrate from overweight parts to parts with
headroom, choosing at each step the move that increases connectivity
cut the least.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hypergraph.hgraph import Hypergraph


class _PartState:
    """Incremental part-weight and edge-pin-count bookkeeping."""

    def __init__(self, hgraph: Hypergraph, assignment: np.ndarray,
                 n_parts: int):
        self.hgraph = hgraph
        self.assignment = assignment
        self.n_parts = n_parts
        self.weights = np.zeros((n_parts, hgraph.n_constraints))
        for c in range(hgraph.n_constraints):
            np.add.at(self.weights[:, c], assignment,
                      hgraph.vertex_weights[:, c])
        # pin_counts[e] maps part -> pins of edge e in that part.
        self.pin_counts = []
        for e in range(hgraph.n_edges):
            counts = {}
            for v in hgraph.edge_pins(e):
                part = int(assignment[v])
                counts[part] = counts.get(part, 0) + 1
            self.pin_counts.append(counts)

    def move_delta(self, vertex: int, destination: int) -> float:
        """Connectivity-cut change if ``vertex`` moves to ``destination``."""
        source = int(self.assignment[vertex])
        delta = 0.0
        for e in self.hgraph.vertex_edges(vertex):
            e = int(e)
            counts = self.pin_counts[e]
            weight = self.hgraph.edge_weights[e]
            if counts.get(source, 0) == 1:
                delta -= weight  # edge leaves the source part
            if counts.get(destination, 0) == 0:
                delta += weight  # edge newly enters the destination
        return delta

    def move(self, vertex: int, destination: int):
        source = int(self.assignment[vertex])
        for e in self.hgraph.vertex_edges(vertex):
            counts = self.pin_counts[int(e)]
            counts[source] -= 1
            if counts[source] == 0:
                del counts[source]
            counts[destination] = counts.get(destination, 0) + 1
        self.weights[source] -= self.hgraph.vertex_weights[vertex]
        self.weights[destination] += self.hgraph.vertex_weights[vertex]
        self.assignment[vertex] = destination


def rebalance(hgraph: Hypergraph, assignment: np.ndarray, n_parts: int,
              epsilon: float = 0.10,
              max_moves: Optional[int] = None) -> np.ndarray:
    """Repair per-constraint balance with minimal cut growth.

    Returns the repaired assignment (a copy).  While any part exceeds
    its cap in any constraint, the cheapest (lowest cut-delta) vertex
    move from that part to a part with headroom is applied.
    """
    assignment = np.array(assignment, dtype=np.int64, copy=True)
    state = _PartState(hgraph, assignment, n_parts)
    totals = hgraph.total_weights()
    slack = hgraph.vertex_weights.max(axis=0)
    caps = totals / n_parts * (1.0 + epsilon) + slack
    if max_moves is None:
        max_moves = hgraph.n_vertices

    moves = 0
    while moves < max_moves:
        # Find the most-overweight (part, constraint).
        excess = state.weights - caps
        worst_flat = int(np.argmax(excess))
        part, constraint = divmod(worst_flat, hgraph.n_constraints)
        if excess[part, constraint] <= 0:
            break  # everything within caps
        # Candidate vertices: members of the overweight part carrying
        # weight in the violated constraint.
        members = np.nonzero(
            (assignment == part)
            & (hgraph.vertex_weights[:, constraint] > 0)
        )[0]
        if len(members) == 0:
            break
        # Destinations with headroom in every constraint.
        best = None
        for v in members[:256]:  # cap the scan; candidates are plentiful
            v = int(v)
            vw = hgraph.vertex_weights[v]
            for destination in range(n_parts):
                if destination == part:
                    continue
                if np.any(state.weights[destination] + vw > caps):
                    continue
                delta = state.move_delta(v, destination)
                if best is None or delta < best[0]:
                    best = (delta, v, destination)
        if best is None:
            break  # no feasible move
        _, vertex, destination = best
        state.move(vertex, destination)
        moves += 1
    return assignment

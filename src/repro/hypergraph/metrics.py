"""Partition-quality metrics.

``connectivity_cut`` is the objective the paper minimizes: placing a
communication set across ``N`` tiles induces ``N - 1`` messages
(Sec. IV-B), so each hyperedge costs ``(lambda_e - 1) * w_e`` where
``lambda_e`` is the number of parts it spans.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hgraph import Hypergraph


def _edge_lambdas(hgraph: Hypergraph, assignment: np.ndarray) -> np.ndarray:
    """Number of distinct parts spanned by each hyperedge."""
    lambdas = np.empty(hgraph.n_edges, dtype=np.int64)
    pin_parts = assignment[hgraph.pins]
    for e in range(hgraph.n_edges):
        start, end = hgraph.edge_ptr[e], hgraph.edge_ptr[e + 1]
        lambdas[e] = len(np.unique(pin_parts[start:end])) if end > start else 0
    return lambdas


def cut_weight(hgraph: Hypergraph, assignment: np.ndarray) -> float:
    """Total weight of hyperedges spanning more than one part."""
    lambdas = _edge_lambdas(hgraph, assignment)
    return float(hgraph.edge_weights[lambdas > 1].sum())


def connectivity_cut(hgraph: Hypergraph, assignment: np.ndarray) -> float:
    """The (lambda - 1) connectivity metric: total induced messages."""
    lambdas = _edge_lambdas(hgraph, assignment)
    excess = np.maximum(lambdas - 1, 0)
    return float((excess * hgraph.edge_weights).sum())


def part_weights(hgraph: Hypergraph, assignment: np.ndarray,
                 n_parts: int) -> np.ndarray:
    """Per-part, per-constraint weight totals, shape ``(n_parts, c)``."""
    weights = np.zeros((n_parts, hgraph.n_constraints))
    for c in range(hgraph.n_constraints):
        np.add.at(weights[:, c], assignment, hgraph.vertex_weights[:, c])
    return weights


def balance_ratios(hgraph: Hypergraph, assignment: np.ndarray,
                   n_parts: int) -> np.ndarray:
    """Max part weight over ideal weight, per constraint.

    1.0 is perfect balance; the partitioner targets
    ``<= 1 + epsilon`` for every constraint.
    """
    weights = part_weights(hgraph, assignment, n_parts)
    totals = hgraph.total_weights()
    ratios = np.zeros(hgraph.n_constraints)
    for c in range(hgraph.n_constraints):
        ideal = totals[c] / n_parts if totals[c] > 0 else 1.0
        ratios[c] = weights[:, c].max() / ideal if ideal > 0 else 0.0
    return ratios


def is_balanced(hgraph: Hypergraph, assignment: np.ndarray, n_parts: int,
                epsilon: float, slack: float = 0.0) -> bool:
    """Whether every constraint is within ``1 + epsilon`` of ideal.

    ``slack`` adds an absolute per-part allowance (needed when a
    constraint's total is small relative to single-vertex weights).
    """
    weights = part_weights(hgraph, assignment, n_parts)
    totals = hgraph.total_weights()
    for c in range(hgraph.n_constraints):
        cap = totals[c] / n_parts * (1.0 + epsilon) + slack
        if weights[:, c].max() > cap:
            return False
    return True

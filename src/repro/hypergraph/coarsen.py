"""Coarsening phase of the multilevel partitioner.

Pairs of vertices with the strongest hyperedge connectivity are merged,
shrinking the hypergraph until the initial-partitioning phase becomes
cheap.  The connectivity score between two vertices sharing edge ``e``
is ``w_e / (|e| - 1)`` (the classic heavy-connectivity matching used by
hMETIS/PaToH-style partitioners), summed over shared edges.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hgraph import Hypergraph

#: Edges larger than this are ignored during matching: their per-pin
#: connectivity is negligible and scanning them dominates runtime.
_MATCHING_EDGE_SIZE_LIMIT = 64


def match_vertices(hgraph: Hypergraph, rng: np.random.Generator,
                   max_vertex_weight: np.ndarray) -> np.ndarray:
    """Greedy heavy-connectivity matching.

    Returns ``mapping`` where ``mapping[v]`` is the coarse-vertex id of
    ``v``; matched pairs share an id.  A merge is rejected when it would
    exceed ``max_vertex_weight`` in any constraint (prevents giant
    coarse vertices that make balance infeasible).
    """
    n = hgraph.n_vertices
    mapping = np.full(n, -1, dtype=np.int64)
    edge_sizes = hgraph.edge_sizes()
    next_id = 0
    order = rng.permutation(n)
    for v in order:
        v = int(v)
        if mapping[v] >= 0:
            continue
        scores = {}
        for e in hgraph.vertex_edges(v):
            size = edge_sizes[e]
            if size < 2 or size > _MATCHING_EDGE_SIZE_LIMIT:
                continue
            bonus = hgraph.edge_weights[e] / (size - 1)
            for u in hgraph.edge_pins(int(e)):
                u = int(u)
                if u != v and mapping[u] < 0:
                    scores[u] = scores.get(u, 0.0) + bonus
        best = -1
        best_score = 0.0
        for u, score in scores.items():
            if score > best_score:
                merged = hgraph.vertex_weights[v] + hgraph.vertex_weights[u]
                if np.all(merged <= max_vertex_weight):
                    best, best_score = u, score
        mapping[v] = next_id
        if best >= 0:
            mapping[best] = next_id
        next_id += 1
    return mapping


def contract(hgraph: Hypergraph, mapping: np.ndarray) -> Hypergraph:
    """Build the coarse hypergraph induced by a vertex mapping.

    Coarse vertex weights are sums of their members'.  Edges are
    re-pinned, deduplicated (identical pin sets merge, weights summed),
    and single-pin edges dropped (they can never be cut).
    """
    n_coarse = int(mapping.max()) + 1 if len(mapping) else 0
    weights = np.zeros((n_coarse, hgraph.n_constraints))
    np.add.at(weights, mapping, hgraph.vertex_weights)

    edge_map = {}
    for e in range(hgraph.n_edges):
        pins = np.unique(mapping[hgraph.edge_pins(e)])
        if len(pins) < 2:
            continue
        key = pins.tobytes()
        entry = edge_map.get(key)
        if entry is None:
            edge_map[key] = [pins, hgraph.edge_weights[e]]
        else:
            entry[1] += hgraph.edge_weights[e]

    edges = [entry[0] for entry in edge_map.values()]
    edge_weights = np.array(
        [entry[1] for entry in edge_map.values()], dtype=np.float64
    )
    return Hypergraph(n_coarse, edges, edge_weights, weights)


def coarsen(hgraph: Hypergraph, rng: np.random.Generator,
            stop_at: int = 96, max_levels: int = 24):
    """Repeatedly match-and-contract until the hypergraph is small.

    Returns ``(levels, mappings)`` where ``levels[0]`` is the input and
    ``levels[-1]`` the coarsest hypergraph; ``mappings[i]`` projects
    level ``i`` vertices onto level ``i+1``.  Stops early when a round
    shrinks the vertex count by less than 10% (matching has stalled).
    """
    levels = [hgraph]
    mappings = []
    totals = hgraph.total_weights()
    # No coarse vertex may exceed ~1/8 of any constraint's total weight.
    max_vertex_weight = np.maximum(totals / 8.0, hgraph.vertex_weights.max(axis=0))
    current = hgraph
    for _ in range(max_levels):
        if current.n_vertices <= stop_at:
            break
        mapping = match_vertices(current, rng, max_vertex_weight)
        n_coarse = int(mapping.max()) + 1
        if n_coarse > 0.9 * current.n_vertices:
            break
        coarse = contract(current, mapping)
        levels.append(coarse)
        mappings.append(mapping)
        current = coarse
    return levels, mappings

"""Coarsening phase of the multilevel partitioner.

Pairs of vertices with the strongest hyperedge connectivity are merged,
shrinking the hypergraph until the initial-partitioning phase becomes
cheap.  The connectivity score between two vertices sharing edge ``e``
is ``w_e / (|e| - 1)`` (the classic heavy-connectivity matching used by
hMETIS/PaToH-style partitioners), summed over shared edges.

Both halves of the phase run on the flat CSR arrays:

* :func:`match_vertices` visits seed vertices in one random permutation
  (same greedy semantics as the historical per-vertex dict scan), but
  processes them in *batches*: one :func:`ragged_take` gather pulls the
  batch's candidate ``(seed, neighbor)`` incidences, a sort +
  segment-sum accumulates connectivity scores per candidate pair, and a
  vectorized weight-cap precheck filters infeasible merges — only the
  final accept/reject walk (which must see earlier matches) stays in
  Python, one short candidate scan per seed.
* :func:`contract` deduplicates re-pinned edges with a
  ``lexsort``/``np.unique`` pipeline instead of a ``tobytes()`` dict:
  in-edge duplicates drop via one sorted-neighbor comparison, identical
  pin sets merge via per-size ``np.unique(axis=0)``, and the coarse
  hypergraph is assembled with :meth:`Hypergraph.from_flat` (skipping
  the per-edge normalization of ``Hypergraph.__init__`` entirely).

Layer contract: ``coarsen`` sits above ``hgraph``/``metrics`` and below
``partitioner`` (see ``.importlinter`` and ``tools/check_layers.py``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.hypergraph.hgraph import Hypergraph, ragged_take

#: Default cap on hyperedge size during matching: larger edges carry
#: negligible per-pin connectivity and scanning them dominates runtime.
#: Tunable per run via ``PartitionerOptions.matching_edge_size_limit``.
DEFAULT_MATCHING_EDGE_SIZE_LIMIT = 64

#: Seed vertices whose candidates are gathered per vectorized batch.
_MATCH_BATCH = 4096


def _batch_candidates(
    hgraph: Hypergraph,
    seeds: np.ndarray,
    bonus: np.ndarray,
    eligible: np.ndarray,
    matched: np.ndarray,
    max_vertex_weight: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scored, feasible merge candidates for a batch of seed vertices.

    Returns ``(seed_pos, neighbor, score)`` sorted so that each seed's
    candidates are contiguous in batch order, best score first (ties to
    the lowest neighbor id).  ``seed_pos`` indexes into ``seeds``.
    """
    ve_ptr, ve_ids = hgraph.incidence_arrays()
    # Incident eligible edges of every seed, flattened.
    deg = ve_ptr[seeds + 1] - ve_ptr[seeds]
    inc_edges = ragged_take(ve_ids, ve_ptr[seeds], deg)
    inc_seed = np.repeat(np.arange(len(seeds)), deg)
    ok = eligible[inc_edges]
    inc_edges, inc_seed = inc_edges[ok], inc_seed[ok]
    # Pins of those edges: the candidate neighbors.
    lengths = hgraph.edge_ptr[inc_edges + 1] - hgraph.edge_ptr[inc_edges]
    neigh = ragged_take(hgraph.pins, hgraph.edge_ptr[inc_edges], lengths)
    cand_seed = np.repeat(inc_seed, lengths)
    cand_bonus = np.repeat(bonus[inc_edges], lengths)
    # Drop self-pairs and already-matched neighbors (batch-start state;
    # matches made inside the batch are re-checked in the accept walk).
    keep = (neigh != seeds[cand_seed]) & (matched[neigh] < 0)
    neigh, cand_seed, cand_bonus = neigh[keep], cand_seed[keep], cand_bonus[keep]
    if len(neigh) == 0:
        return neigh, neigh, cand_bonus
    # Accumulate scores per (seed, neighbor) pair: sort by the pair key
    # and segment-sum the bonuses.
    key = cand_seed * np.int64(hgraph.n_vertices) + neigh
    order = np.argsort(key, kind="stable")
    key, neigh = key[order], neigh[order]
    cand_seed, cand_bonus = cand_seed[order], cand_bonus[order]
    first = np.ones(len(key), dtype=bool)
    first[1:] = key[1:] != key[:-1]
    starts = np.nonzero(first)[0]
    csum = np.concatenate(([0.0], np.cumsum(cand_bonus)))
    bounds = np.concatenate((starts, [len(key)]))
    score = csum[bounds[1:]] - csum[bounds[:-1]]
    cand_seed, neigh = cand_seed[starts], neigh[starts]
    # Weight-cap feasibility is static (merging never lightens a
    # vertex), so infeasible pairs are filtered here, vectorized.
    merged = (
        hgraph.vertex_weights[seeds[cand_seed]]
        + hgraph.vertex_weights[neigh]
    )
    feasible = (merged <= max_vertex_weight).all(axis=1)
    cand_seed, neigh, score = (
        cand_seed[feasible], neigh[feasible], score[feasible]
    )
    # Batch order, then best score, ties to the lowest neighbor id.
    order = np.lexsort((neigh, -score, cand_seed))
    return cand_seed[order], neigh[order], score[order]


def match_vertices(
    hgraph: Hypergraph,
    rng: np.random.Generator,
    max_vertex_weight: np.ndarray,
    edge_size_limit: int = DEFAULT_MATCHING_EDGE_SIZE_LIMIT,
) -> np.ndarray:
    """Greedy heavy-connectivity matching.

    Returns ``mapping`` where ``mapping[v]`` is the coarse-vertex id of
    ``v``; matched pairs share an id.  A merge is rejected when it would
    exceed ``max_vertex_weight`` in any constraint (prevents giant
    coarse vertices that make balance infeasible).

    Seeds are visited in one random permutation; each merges with its
    highest-connectivity unmatched feasible neighbor.  Edges larger
    than ``edge_size_limit`` are ignored when scoring.
    """
    n = hgraph.n_vertices
    matched = np.full(n, -1, dtype=np.int64)
    sizes = hgraph.edge_sizes()
    eligible = (sizes >= 2) & (sizes <= edge_size_limit)
    bonus = np.zeros(hgraph.n_edges)
    bonus[eligible] = (
        hgraph.edge_weights[eligible] / (sizes[eligible] - 1)
    )
    order = rng.permutation(n)

    for start in range(0, n, _MATCH_BATCH):
        batch = order[start:start + _MATCH_BATCH]
        batch = batch[matched[batch] < 0]
        if len(batch) == 0:
            continue
        cand_seed, cand_neigh, _ = _batch_candidates(
            hgraph, batch, bonus, eligible, matched, max_vertex_weight
        )
        # Accept walk: per seed (in batch = permutation order), take the
        # best candidate still unmatched.  Candidates are contiguous per
        # seed and pre-sorted, so this is one forward scan.
        bounds = np.searchsorted(
            cand_seed, np.arange(len(batch) + 1), side="left"
        )
        for i, v in enumerate(batch):
            v = int(v)
            if matched[v] >= 0:
                continue
            for k in range(bounds[i], bounds[i + 1]):
                u = int(cand_neigh[k])
                if matched[u] < 0:
                    matched[v] = u
                    matched[u] = v
                    break

    # Coarse ids in permutation-visit order of each pair's first-seen
    # member (mirrors the historical next_id counter), vectorized via a
    # rank over first-visit positions.
    perm_pos = np.empty(n, dtype=np.int64)
    perm_pos[order] = np.arange(n)
    group_pos = perm_pos.copy()
    has = matched >= 0
    group_pos[has] = np.minimum(perm_pos[has], perm_pos[matched[has]])
    _, mapping = np.unique(group_pos, return_inverse=True)
    return mapping.astype(np.int64)


def contract(hgraph: Hypergraph, mapping: np.ndarray) -> Hypergraph:
    """Build the coarse hypergraph induced by a vertex mapping.

    Coarse vertex weights are sums of their members'.  Edges are
    re-pinned, deduplicated (identical pin sets merge, weights summed),
    and single-pin edges dropped (they can never be cut).
    """
    n_coarse = int(mapping.max()) + 1 if len(mapping) else 0
    weights = np.zeros((n_coarse, hgraph.n_constraints))
    np.add.at(weights, mapping, hgraph.vertex_weights)
    if hgraph.n_edges == 0:
        return Hypergraph.from_flat(
            n_coarse, np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.float64), weights,
        )

    # Re-pin, then drop in-edge duplicates: sort pins within each edge
    # (stable lexsort on (pin, edge)) and keep each (edge, pin) once.
    coarse_pins = mapping[hgraph.pins]
    pin_edge = hgraph.pin_edge_ids()
    order = np.lexsort((coarse_pins, pin_edge))
    cp, pe = coarse_pins[order], pin_edge[order]
    keep = np.ones(len(cp), dtype=bool)
    keep[1:] = (cp[1:] != cp[:-1]) | (pe[1:] != pe[:-1])
    cp, pe = cp[keep], pe[keep]
    # Drop edges contracted below two pins.
    sizes = np.bincount(pe, minlength=hgraph.n_edges)
    keep_edge = sizes >= 2
    pin_ok = keep_edge[pe]
    cp, pe = cp[pin_ok], pe[pin_ok]
    sizes = sizes[keep_edge]
    edge_w = hgraph.edge_weights[keep_edge]

    # Cross-edge dedup: identical pin sets necessarily share a size, so
    # group by size and unique the (m, size) pin matrices row-wise.
    ptr = np.concatenate(([0], np.cumsum(sizes)))
    pins_parts: List[np.ndarray] = []
    size_parts: List[np.ndarray] = []
    weight_parts: List[np.ndarray] = []
    for size in np.unique(sizes):
        size = int(size)
        group = np.nonzero(sizes == size)[0]
        rows = cp[ptr[group][:, None] + np.arange(size)[None, :]]
        uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
        merged_w = np.bincount(
            inverse.reshape(-1), weights=edge_w[group], minlength=len(uniq)
        )
        pins_parts.append(uniq.reshape(-1))
        size_parts.append(np.full(len(uniq), size, dtype=np.int64))
        weight_parts.append(merged_w)

    if pins_parts:
        flat_pins = np.concatenate(pins_parts)
        flat_sizes = np.concatenate(size_parts)
        flat_weights = np.concatenate(weight_parts)
    else:
        flat_pins = np.empty(0, dtype=np.int64)
        flat_sizes = np.empty(0, dtype=np.int64)
        flat_weights = np.empty(0, dtype=np.float64)
    edge_ptr = np.concatenate(([0], np.cumsum(flat_sizes)))
    return Hypergraph.from_flat(
        n_coarse, flat_pins, edge_ptr, flat_weights, weights
    )


def coarsen(hgraph: Hypergraph, rng: np.random.Generator,
            stop_at: int = 96, max_levels: int = 24,
            matching_edge_size_limit: int = DEFAULT_MATCHING_EDGE_SIZE_LIMIT):
    """Repeatedly match-and-contract until the hypergraph is small.

    Returns ``(levels, mappings)`` where ``levels[0]`` is the input and
    ``levels[-1]`` the coarsest hypergraph; ``mappings[i]`` projects
    level ``i`` vertices onto level ``i+1``.  Stops early when a round
    shrinks the vertex count by less than 10% (matching has stalled).
    """
    levels = [hgraph]
    mappings = []
    totals = hgraph.total_weights()
    # No coarse vertex may exceed ~1/8 of any constraint's total weight.
    max_vertex_weight = np.maximum(totals / 8.0, hgraph.vertex_weights.max(axis=0))
    current = hgraph
    for _ in range(max_levels):
        if current.n_vertices <= stop_at:
            break
        mapping = match_vertices(
            current, rng, max_vertex_weight,
            edge_size_limit=matching_edge_size_limit,
        )
        n_coarse = int(mapping.max()) + 1
        if n_coarse > 0.9 * current.n_vertices:
            break
        coarse = contract(current, mapping)
        levels.append(coarse)
        mappings.append(mapping)
        current = coarse
    return levels, mappings

"""Initial bisection of the coarsest hypergraph.

Greedy region growing: seed one side with a random vertex and grow it by
repeatedly absorbing the boundary vertex that uncuts the most hyperedge
weight, until the target weight fraction is reached.  Several seeds are
tried and the lowest-cut result kept.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hgraph import Hypergraph
from repro.hypergraph.metrics import connectivity_cut


def _grow_once(hgraph: Hypergraph, target_fraction: float,
               caps0: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One region-growing attempt; returns a side array (0 or 1)."""
    n = hgraph.n_vertices
    side = np.ones(n, dtype=np.int8)
    totals = hgraph.total_weights()
    target = totals * target_fraction
    weight0 = np.zeros(hgraph.n_constraints)

    def fits(v):
        return np.all(weight0 + hgraph.vertex_weights[v] <= caps0)

    def reached_target():
        # Grown far enough once the dominant constraint hits its target.
        nonzero = totals > 0
        return np.all(weight0[nonzero] >= target[nonzero] * 0.98)

    seed = int(rng.integers(n))
    heap = [(0.0, seed)]
    edge_sizes = hgraph.edge_sizes()

    while heap and not reached_target():
        _, v = heapq.heappop(heap)
        if side[v] == 0:
            continue
        if not fits(v):
            continue
        side[v] = 0
        weight0 += hgraph.vertex_weights[v]
        # Push neighbors, scored by the connectivity they share with side 0.
        # Stale duplicates are filtered by the side[v] == 0 check above.
        for e in hgraph.vertex_edges(v):
            e = int(e)
            if edge_sizes[e] > 256:
                continue
            bonus = hgraph.edge_weights[e] / max(edge_sizes[e] - 1, 1)
            for u in hgraph.edge_pins(e):
                u = int(u)
                if side[u] == 1:
                    heapq.heappush(heap, (-bonus, u))
        if not heap:
            # Disconnected: restart growth from a fresh unassigned vertex.
            remaining = np.nonzero(side == 1)[0]
            if len(remaining) and not reached_target():
                heapq.heappush(heap, (0.0, int(rng.choice(remaining))))
    return side


def greedy_bisect(hgraph: Hypergraph, target_fraction: float,
                  caps0: np.ndarray, rng: np.random.Generator,
                  tries: int = 4) -> np.ndarray:
    """Best-of-``tries`` greedy growth bisection."""
    best_side = None
    best_cut = np.inf
    for _ in range(max(tries, 1)):
        side = _grow_once(hgraph, target_fraction, caps0, rng)
        cut = connectivity_cut(hgraph, side.astype(np.int64))
        if cut < best_cut:
            best_cut = cut
            best_side = side
    return best_side

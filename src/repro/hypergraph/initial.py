"""Initial bisection of the coarsest hypergraph.

Greedy region growing: seed one side with a random vertex and grow it
by repeatedly absorbing the unassigned vertex with the strongest
accumulated hyperedge connectivity to the grown side, until the target
weight fraction is reached.  Several seeds are tried and the lowest-cut
result kept.

The growth loop mirrors the FM pass's lazy-deletion heap: per absorbed
vertex, one :func:`ragged_take` gather pulls the incident edges' pins,
an ``np.add.at`` scatter accumulates the connectivity scores, and each
touched neighbor is (re-)pushed once per wave — no per-(edge, pin)
Python loop.  Edges larger than the growth limit are skipped when
scoring (``PartitionerOptions.growth_edge_size_limit``).

Layer contract: ``initial`` sits above ``hgraph``/``metrics`` and below
``partitioner`` (see ``.importlinter`` and ``tools/check_layers.py``).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hgraph import Hypergraph, ragged_take
from repro.hypergraph.metrics import connectivity_cut

#: Default cap on hyperedge size during region growing; larger edges
#: contribute negligible per-pin connectivity.  Tunable per run via
#: ``PartitionerOptions.growth_edge_size_limit``.
DEFAULT_GROWTH_EDGE_SIZE_LIMIT = 256


def _grow_once(hgraph: Hypergraph, target_fraction: float,
               caps0: np.ndarray, rng: np.random.Generator,
               edge_size_limit: int = DEFAULT_GROWTH_EDGE_SIZE_LIMIT,
               ) -> np.ndarray:
    """One region-growing attempt; returns a side array (0 or 1)."""
    n = hgraph.n_vertices
    side = np.ones(n, dtype=np.int8)
    totals = hgraph.total_weights()
    nonzero = totals > 0
    thresh = (totals * target_fraction * 0.98)[nonzero]
    weight0 = np.zeros(hgraph.n_constraints)
    vertex_weights = hgraph.vertex_weights

    sizes = hgraph.edge_sizes()
    eligible = (sizes >= 2) & (sizes <= edge_size_limit)
    bonus = np.zeros(hgraph.n_edges)
    bonus[eligible] = hgraph.edge_weights[eligible] / np.maximum(
        sizes[eligible] - 1, 1
    )
    ve_ptr, ve_ids = hgraph.incidence_arrays()

    #: Accumulated connectivity of each unassigned vertex to side 0.
    score = np.zeros(n)

    def fits(v: int) -> bool:
        return bool(((weight0 + vertex_weights[v]) <= caps0).all())

    def reached_target() -> bool:
        # Grown far enough once the dominant constraint hits its target.
        return bool((weight0[nonzero] >= thresh).all())

    seed = int(rng.integers(n))
    heap = [(0.0, seed)]

    while heap and not reached_target():
        neg, v = heapq.heappop(heap)
        if side[v] == 0:
            continue
        if -neg != score[v]:
            heapq.heappush(heap, (-float(score[v]), v))
            continue
        if not fits(v):
            continue
        side[v] = 0
        weight0 += vertex_weights[v]
        # Accumulate the connectivity v's edges contribute to side 0,
        # then (re-)push each touched neighbor once for this wave.
        edges = ve_ids[ve_ptr[v]:ve_ptr[v + 1]]
        edges = edges[eligible[edges]]
        if len(edges):
            lengths = sizes[edges]
            pv = ragged_take(hgraph.pins, hgraph.edge_ptr[edges], lengths)
            b = np.repeat(bonus[edges], lengths)
            outside = side[pv] == 1
            np.add.at(score, pv[outside], b[outside])
            for u in np.unique(pv[outside]):
                u = int(u)
                heapq.heappush(heap, (-float(score[u]), u))
        if not heap:
            # Disconnected: restart growth from a fresh unassigned vertex.
            remaining = np.nonzero(side == 1)[0]
            if len(remaining) and not reached_target():
                heapq.heappush(heap, (0.0, int(rng.choice(remaining))))
    return side


def greedy_bisect(hgraph: Hypergraph, target_fraction: float,
                  caps0: np.ndarray, rng: np.random.Generator,
                  tries: int = 4,
                  edge_size_limit: int = DEFAULT_GROWTH_EDGE_SIZE_LIMIT,
                  ) -> np.ndarray:
    """Best-of-``tries`` greedy growth bisection."""
    best_side = None
    best_cut = np.inf
    for _ in range(max(tries, 1)):
        side = _grow_once(
            hgraph, target_fraction, caps0, rng,
            edge_size_limit=edge_size_limit,
        )
        cut = connectivity_cut(hgraph, side.astype(np.int64))
        if cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    return best_side

"""Fiduccia-Mattheyses (FM) boundary refinement for bisections.

Standard FM with a lazy-deletion heap: vertices are moved in best-gain
order (each at most once per pass), the best prefix of the move sequence
is kept, and the rest rolled back.  Moves must respect per-constraint
weight caps on the receiving side, which is how the multi-constraint
balance of Sec. IV-C is enforced during refinement.

Mirroring the simulator's issue layer (:mod:`repro.sim.issue`), the
*bookkeeping* — how gains, cut counts, and boundaries are maintained —
lives behind the :class:`RefineStrategy` interface while the selection
loop (:func:`_fm_pass`) is shared, so every strategy makes identical
move decisions:

* :class:`ReferenceRefine` — the golden per-vertex Python model: gains
  are recomputed from incident edges on demand.  Selected by
  ``refine="reference"`` or ``AZUL_PART_REFERENCE=1``.
* ``VectorizedRefine`` (:mod:`repro.hypergraph.refine_vec`, the
  default) — CSR-array bookkeeping: vectorized cut-count/gain init,
  O(degree) numpy delta-gain updates per move, vectorized boundary
  extraction.

Both strategies produce bit-identical assignments whenever hyperedge
weights are dyadic rationals (every hypergraph the Azul mapping builds:
integer-valued row/column weights and their coarsened sums), because
then gain arithmetic is exact in either formulation; the deterministic
``(-gain, vertex)`` tie-break does the rest.  This parity is enforced
by ``tests/test_partitioner_equivalence.py``.

New refinement schemes register themselves in :data:`STRATEGIES` (see
``refine_vec`` for the idiom) and become selectable through
``PartitionerOptions(refine=...)`` without touching the other layers.

Layer contract: ``refine`` sits above ``hgraph`` and below
``refine_vec``/``partitioner`` (see ``.importlinter`` and
``tools/check_layers.py``).
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Type

import numpy as np

from repro.config import ENV_PART_REFERENCE, env_truthy
from repro.hypergraph.hgraph import Hypergraph

#: Environment variable selecting the golden reference refinement
#: (canonical name lives in :mod:`repro.config`; see
#: :func:`repro.config.overrides`).
REFERENCE_ENV = ENV_PART_REFERENCE

#: Registered refinement strategies by name.  ``refine.py`` never
#: imports the modules that populate it (they import *us*): strategies
#: self-register at import time, and the package ``__init__`` imports
#: every strategy module, so the registry is always complete by the
#: time user code runs.
STRATEGIES: Dict[str, Type["RefineStrategy"]] = {}


def register_strategy(cls: Type["RefineStrategy"]) -> Type["RefineStrategy"]:
    """Class decorator: add a strategy to :data:`STRATEGIES`."""
    STRATEGIES[cls.name] = cls
    return cls


def _env_wants_reference() -> bool:
    return env_truthy(os.environ.get(REFERENCE_ENV))


def default_refine_name() -> str:
    """Strategy used when ``refine`` is unset: env override or fast."""
    return "reference" if _env_wants_reference() else "vectorized"


def resolve_refine(name: Optional[str] = None) -> Type["RefineStrategy"]:
    """Map a ``refine`` name (or ``None`` = default) to its strategy."""
    if name is None:
        name = default_refine_name()
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown refine strategy {name!r}; "
            f"choices: {', '.join(sorted(STRATEGIES))}"
        ) from None


class RefineStrategy:
    """Interface: FM bookkeeping for one bisection refinement.

    Subclasses provide :meth:`make_state`; the selection loop is shared
    so strategies differ only in how they maintain gains and counts.
    Strategies keep no cross-call state.
    """

    #: Strategy name this class implements (``refine=`` argument).
    name: str = ""

    def make_state(self, hgraph: Hypergraph,
                   side: np.ndarray) -> "_BisectionState":
        """Build the incremental cut/gain bookkeeping for a bisection."""
        raise NotImplementedError

    def refine(self, hgraph: Hypergraph, side: np.ndarray,
               caps: np.ndarray, passes: int = 2,
               stall_limit: int = 64) -> np.ndarray:
        """Refine a bisection in place; returns the refined side array."""
        state = self.make_state(hgraph, side)
        for _ in range(passes):
            if not _fm_pass(hgraph, state, caps, stall_limit):
                break
        return side


class _BisectionState:
    """Incremental cut/gain bookkeeping for one bisection (reference).

    The per-vertex Python implementation: ``gain`` recomputes from the
    incident edges on demand.  Subclasses (the vectorized strategy)
    override the bookkeeping but must preserve the exact semantics of
    every method — the shared :func:`_fm_pass` depends on it.
    """

    def __init__(self, hgraph: Hypergraph, side: np.ndarray):
        self.hgraph = hgraph
        self.side = side
        self.edge_sizes = hgraph.edge_sizes()
        # Pins of each edge currently on side 0.
        self.count0 = np.zeros(hgraph.n_edges, dtype=np.int64)
        pin_sides = side[hgraph.pins]
        for e in range(hgraph.n_edges):
            start, end = hgraph.edge_ptr[e], hgraph.edge_ptr[e + 1]
            self.count0[e] = int((pin_sides[start:end] == 0).sum())
        self.part_weights = np.zeros((2, hgraph.n_constraints))
        for s in (0, 1):
            members = side == s
            self.part_weights[s] = hgraph.vertex_weights[members].sum(axis=0)

    def gain(self, v: int) -> float:
        """Cut reduction if ``v`` switches sides."""
        s = self.side[v]
        total = 0.0
        for e in self.hgraph.vertex_edges(v):
            e = int(e)
            size = self.edge_sizes[e]
            if size < 2:
                continue  # single-pin edges can never be cut
            on_my_side = self.count0[e] if s == 0 else size - self.count0[e]
            if on_my_side == 1:
                total += self.hgraph.edge_weights[e]  # move uncuts the edge
            elif on_my_side == size:
                total -= self.hgraph.edge_weights[e]  # move cuts the edge
        return total

    def move(self, v: int) -> None:
        """Switch ``v``'s side, updating edge counts and part weights."""
        s = int(self.side[v])
        delta = -1 if s == 0 else 1
        for e in self.hgraph.vertex_edges(v):
            self.count0[int(e)] += delta
        self.part_weights[s] -= self.hgraph.vertex_weights[v]
        self.part_weights[1 - s] += self.hgraph.vertex_weights[v]
        self.side[v] = 1 - s

    def fits_after_move(self, v: int, caps: np.ndarray) -> bool:
        """Whether moving ``v`` keeps the receiving side under its caps."""
        destination = 1 - int(self.side[v])
        new_weight = (
            self.part_weights[destination] + self.hgraph.vertex_weights[v]
        )
        return bool((new_weight <= caps[destination]).all())

    def affected(self, v: int) -> List[int]:
        """Vertices whose gain may change when ``v`` moves.

        The pins of every edge incident to ``v`` (excluding ``v``),
        unique and ascending — the dirty set re-pushed once per move
        wave by :func:`_fm_pass`.
        """
        seen = set()
        for e in self.hgraph.vertex_edges(v):
            for u in self.hgraph.edge_pins(int(e)):
                u = int(u)
                if u != v:
                    seen.add(u)
        return sorted(seen)

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut edge (ascending)."""
        hgraph = self.hgraph
        sizes = self.edge_sizes
        cut_edges = (self.count0 > 0) & (self.count0 < sizes)
        boundary = np.zeros(hgraph.n_vertices, dtype=bool)
        for e in np.nonzero(cut_edges)[0]:
            boundary[hgraph.edge_pins(int(e))] = True
        return np.nonzero(boundary)[0]


@register_strategy
class ReferenceRefine(RefineStrategy):
    """The golden per-vertex Python FM model.

    Selected by ``refine="reference"`` or ``AZUL_PART_REFERENCE=1``.
    """

    name = "reference"

    def make_state(self, hgraph: Hypergraph,
                   side: np.ndarray) -> _BisectionState:
        return _BisectionState(hgraph, side)


def fm_refine(hgraph: Hypergraph, side: np.ndarray, caps: np.ndarray,
              passes: int = 2, stall_limit: int = 64,
              refine: Optional[str] = None) -> np.ndarray:
    """Refine a bisection in place; returns the refined side array.

    Parameters
    ----------
    side:
        Current 0/1 assignment (modified in place).
    caps:
        ``(2, n_constraints)`` per-side weight ceilings.
    passes:
        Maximum number of full FM passes.
    stall_limit:
        A pass aborts after this many consecutive non-improving moves.
    refine:
        Strategy name; ``None`` resolves the default (``vectorized``
        unless ``AZUL_PART_REFERENCE=1``).
    """
    strategy = resolve_refine(refine)()
    return strategy.refine(
        hgraph, side, caps, passes=passes, stall_limit=stall_limit
    )


def _fm_pass(hgraph: Hypergraph, state: _BisectionState, caps: np.ndarray,
             stall_limit: int) -> bool:
    """One FM pass; returns True if the cut improved.

    Shared by every strategy: the lazy-deletion heap pops the highest
    current gain (ties to the lowest vertex id), stale entries are
    re-pushed with their current gain, and each move re-pushes its
    dirty neighborhood *once* (``state.affected``) instead of flooding
    the heap with one entry per (edge, pin) pair per move — the fix
    for the historical quadratic heap churn on dense edges.
    """
    locked = np.zeros(hgraph.n_vertices, dtype=bool)
    heap: List = []
    for v in state.boundary_vertices():
        v = int(v)
        heapq.heappush(heap, (-state.gain(v), v))

    moves: List[int] = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_index = 0
    stall = 0

    while heap and stall < stall_limit:
        neg_gain, v = heapq.heappop(heap)
        if locked[v]:
            continue
        gain = state.gain(v)
        if -neg_gain != gain:
            # Stale entry: re-push with the current gain.
            heapq.heappush(heap, (-gain, v))
            continue
        if not state.fits_after_move(v, caps):
            locked[v] = True
            continue
        state.move(v)
        locked[v] = True
        moves.append(v)
        cumulative += gain
        if cumulative > best_cumulative + 1e-12:
            best_cumulative = cumulative
            best_index = len(moves)
            stall = 0
        else:
            stall += 1
        # Neighbor gains changed: one re-push per dirty vertex.
        for u in state.affected(v):
            if not locked[u]:
                heapq.heappush(heap, (-state.gain(u), u))

    # Roll back every move after the best prefix.
    for v in reversed(moves[best_index:]):
        state.move(v)
    return best_cumulative > 0.0

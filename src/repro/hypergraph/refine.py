"""Fiduccia-Mattheyses (FM) boundary refinement for bisections.

Standard FM with a lazy-deletion heap: vertices are moved in best-gain
order (each at most once per pass), the best prefix of the move sequence
is kept, and the rest rolled back.  Moves must respect per-constraint
weight caps on the receiving side, which is how the multi-constraint
balance of Sec. IV-C is enforced during refinement.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hgraph import Hypergraph


class _BisectionState:
    """Incremental cut/gain bookkeeping for one bisection."""

    def __init__(self, hgraph: Hypergraph, side: np.ndarray):
        self.hgraph = hgraph
        self.side = side
        self.edge_sizes = hgraph.edge_sizes()
        # Pins of each edge currently on side 0.
        self.count0 = np.zeros(hgraph.n_edges, dtype=np.int64)
        pin_sides = side[hgraph.pins]
        for e in range(hgraph.n_edges):
            start, end = hgraph.edge_ptr[e], hgraph.edge_ptr[e + 1]
            self.count0[e] = int((pin_sides[start:end] == 0).sum())
        self.part_weights = np.zeros((2, hgraph.n_constraints))
        for s in (0, 1):
            members = side == s
            self.part_weights[s] = hgraph.vertex_weights[members].sum(axis=0)

    def gain(self, v: int) -> float:
        """Cut reduction if ``v`` switches sides."""
        s = self.side[v]
        total = 0.0
        for e in self.hgraph.vertex_edges(v):
            e = int(e)
            size = self.edge_sizes[e]
            on_my_side = self.count0[e] if s == 0 else size - self.count0[e]
            if on_my_side == 1:
                total += self.hgraph.edge_weights[e]  # move uncuts the edge
            elif on_my_side == size:
                total -= self.hgraph.edge_weights[e]  # move cuts the edge
        return total

    def move(self, v: int):
        """Switch ``v``'s side, updating edge counts and part weights."""
        s = int(self.side[v])
        delta = -1 if s == 0 else 1
        for e in self.hgraph.vertex_edges(v):
            self.count0[int(e)] += delta
        self.part_weights[s] -= self.hgraph.vertex_weights[v]
        self.part_weights[1 - s] += self.hgraph.vertex_weights[v]
        self.side[v] = 1 - s

    def fits_after_move(self, v: int, caps: np.ndarray) -> bool:
        """Whether moving ``v`` keeps the receiving side under its caps."""
        destination = 1 - int(self.side[v])
        new_weight = (
            self.part_weights[destination] + self.hgraph.vertex_weights[v]
        )
        return bool(np.all(new_weight <= caps[destination]))


def fm_refine(hgraph: Hypergraph, side: np.ndarray, caps: np.ndarray,
              passes: int = 2, stall_limit: int = 64) -> np.ndarray:
    """Refine a bisection in place; returns the refined side array.

    Parameters
    ----------
    side:
        Current 0/1 assignment (modified in place).
    caps:
        ``(2, n_constraints)`` per-side weight ceilings.
    passes:
        Maximum number of full FM passes.
    stall_limit:
        A pass aborts after this many consecutive non-improving moves.
    """
    state = _BisectionState(hgraph, side)
    for _ in range(passes):
        improved = _fm_pass(hgraph, state, caps, stall_limit)
        if not improved:
            break
    return side


def _boundary_vertices(hgraph: Hypergraph, state: _BisectionState) -> np.ndarray:
    """Vertices incident to at least one cut edge."""
    sizes = state.edge_sizes
    cut_edges = (state.count0 > 0) & (state.count0 < sizes)
    boundary = np.zeros(hgraph.n_vertices, dtype=bool)
    for e in np.nonzero(cut_edges)[0]:
        boundary[hgraph.edge_pins(int(e))] = True
    return np.nonzero(boundary)[0]


def _fm_pass(hgraph: Hypergraph, state: _BisectionState, caps: np.ndarray,
             stall_limit: int) -> bool:
    """One FM pass; returns True if the cut improved."""
    locked = np.zeros(hgraph.n_vertices, dtype=bool)
    heap = []
    for v in _boundary_vertices(hgraph, state):
        heapq.heappush(heap, (-state.gain(int(v)), int(v)))

    moves = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_index = 0
    stall = 0

    while heap and stall < stall_limit:
        neg_gain, v = heapq.heappop(heap)
        if locked[v]:
            continue
        gain = state.gain(v)
        if -neg_gain != gain:
            # Stale entry: re-push with the current gain.
            heapq.heappush(heap, (-gain, v))
            continue
        if not state.fits_after_move(v, caps):
            locked[v] = True
            continue
        state.move(v)
        locked[v] = True
        moves.append(v)
        cumulative += gain
        if cumulative > best_cumulative + 1e-12:
            best_cumulative = cumulative
            best_index = len(moves)
            stall = 0
        else:
            stall += 1
        # Neighbor gains changed: push fresh entries.
        for e in hgraph.vertex_edges(v):
            for u in hgraph.edge_pins(int(e)):
                u = int(u)
                if not locked[u]:
                    heapq.heappush(heap, (-state.gain(u), u))

    # Roll back every move after the best prefix.
    for v in reversed(moves[best_index:]):
        state.move(v)
    return best_cumulative > 0.0

"""Hypergraph data structure.

A hypergraph generalizes a graph: each hyperedge connects a *set* of
vertices (Sec. IV-B).  Vertices carry one weight per balance constraint;
hyperedges carry a scalar weight.  Storage is CSR-like for both
directions (edge -> pins and vertex -> incident edges) so partitioning
inner loops touch flat arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import PartitionError


def ragged_take(values: np.ndarray, starts: np.ndarray,
                lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i]:starts[i]+lengths[i]]`` vectorized.

    The workhorse gather of the partitioner hot path: one call replaces
    a Python loop over CSR segments (incident edges of a vertex, pins
    of an edge batch) with two ``repeat``/``cumsum`` passes.
    """
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    index = np.arange(total) + np.repeat(starts - offsets, lengths)
    return values[index]


class Hypergraph:
    """An undirected hypergraph with multi-constraint vertex weights.

    Parameters
    ----------
    n_vertices:
        Number of vertices, identified as ``0 .. n_vertices-1``.
    edges:
        Iterable of vertex-index sequences, one per hyperedge.  Edges
        with fewer than two distinct pins are kept but contribute no cut.
    edge_weights:
        Optional per-edge weights (default 1).
    vertex_weights:
        Optional ``(n_vertices, n_constraints)`` array (default: a single
        all-ones constraint).
    """

    def __init__(self, n_vertices, edges, edge_weights=None,
                 vertex_weights=None):
        self.n_vertices = int(n_vertices)
        pin_lists = [np.unique(np.asarray(e, dtype=np.int64)) for e in edges]
        for pins in pin_lists:
            if len(pins) and (pins[0] < 0 or pins[-1] >= self.n_vertices):
                raise PartitionError("hyperedge pin out of range")
        self.n_edges = len(pin_lists)
        sizes = np.array([len(p) for p in pin_lists], dtype=np.int64)
        self.edge_ptr = np.concatenate(([0], np.cumsum(sizes)))
        self.pins = (
            np.concatenate(pin_lists) if pin_lists
            else np.empty(0, dtype=np.int64)
        )
        self._set_weights(edge_weights, vertex_weights)
        self._vertex_edge_ptr: Optional[np.ndarray] = None
        self._vertex_edge_ids: Optional[np.ndarray] = None
        self._pin_edge_ids: Optional[np.ndarray] = None

    def _set_weights(self, edge_weights, vertex_weights):
        if edge_weights is None:
            self.edge_weights = np.ones(self.n_edges, dtype=np.float64)
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=np.float64)
            if len(self.edge_weights) != self.n_edges:
                raise PartitionError("edge_weights length mismatch")
        if vertex_weights is None:
            self.vertex_weights = np.ones((self.n_vertices, 1), dtype=np.float64)
        else:
            vw = np.asarray(vertex_weights, dtype=np.float64)
            if vw.ndim == 1:
                vw = vw[:, None]
            if vw.shape[0] != self.n_vertices:
                raise PartitionError("vertex_weights length mismatch")
            self.vertex_weights = vw

    @classmethod
    def from_flat(cls, n_vertices, pins, edge_ptr, edge_weights=None,
                  vertex_weights=None) -> "Hypergraph":
        """Construct from already-normalized flat pin/offset arrays.

        The caller guarantees each edge's pins are sorted, unique, and
        in range, so the per-edge normalization of ``__init__`` (one
        ``np.unique`` per edge — the dominant cost when sub-hypergraphs
        are induced during recursive bisection) is skipped entirely.
        """
        self = object.__new__(cls)
        self.n_vertices = int(n_vertices)
        self.pins = np.ascontiguousarray(pins, dtype=np.int64)
        self.edge_ptr = np.ascontiguousarray(edge_ptr, dtype=np.int64)
        if len(self.edge_ptr) == 0 or self.edge_ptr[0] != 0 \
                or self.edge_ptr[-1] != len(self.pins):
            raise PartitionError("edge_ptr does not span the pin array")
        self.n_edges = len(self.edge_ptr) - 1
        self._set_weights(edge_weights, vertex_weights)
        self._vertex_edge_ptr = None
        self._vertex_edge_ids = None
        self._pin_edge_ids = None
        return self

    # ------------------------------------------------------------------
    @property
    def n_constraints(self) -> int:
        """Number of balance constraints (vertex-weight columns)."""
        return self.vertex_weights.shape[1]

    @property
    def n_pins(self) -> int:
        """Total number of (edge, vertex) incidences."""
        return len(self.pins)

    def edge_pins(self, e: int) -> np.ndarray:
        """Vertices of hyperedge ``e`` (a view)."""
        return self.pins[self.edge_ptr[e]:self.edge_ptr[e + 1]]

    def edge_sizes(self) -> np.ndarray:
        """Number of pins per edge."""
        return np.diff(self.edge_ptr)

    def __repr__(self):
        return (
            f"Hypergraph(vertices={self.n_vertices}, edges={self.n_edges}, "
            f"pins={self.n_pins}, constraints={self.n_constraints})"
        )

    # ------------------------------------------------------------------
    def _build_incidence(self):
        """Build the vertex -> incident-edges CSR arrays."""
        edge_ids = np.repeat(np.arange(self.n_edges), self.edge_sizes())
        order = np.argsort(self.pins, kind="stable")
        sorted_pins = self.pins[order]
        counts = np.bincount(sorted_pins, minlength=self.n_vertices)
        self._vertex_edge_ptr = np.concatenate(([0], np.cumsum(counts)))
        self._vertex_edge_ids = edge_ids[order]

    def vertex_edges(self, v: int) -> np.ndarray:
        """Hyperedges incident to vertex ``v`` (a view)."""
        if self._vertex_edge_ptr is None:
            self._build_incidence()
        return self._vertex_edge_ids[
            self._vertex_edge_ptr[v]:self._vertex_edge_ptr[v + 1]
        ]

    def incidence_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The flat ``(vertex_edge_ptr, vertex_edge_ids)`` CSR arrays."""
        if self._vertex_edge_ptr is None:
            self._build_incidence()
        assert self._vertex_edge_ptr is not None
        assert self._vertex_edge_ids is not None
        return self._vertex_edge_ptr, self._vertex_edge_ids

    def pin_edge_ids(self) -> np.ndarray:
        """Edge id of every flat pin slot (cached).

        ``pin_edge_ids()[k]`` is the hyperedge that ``pins[k]`` belongs
        to — the companion array that lets per-pin computations (cut
        masks, gain contributions) run as one vectorized pass.
        """
        if self._pin_edge_ids is None:
            self._pin_edge_ids = np.repeat(
                np.arange(self.n_edges), self.edge_sizes()
            )
        return self._pin_edge_ids

    def total_weights(self) -> np.ndarray:
        """Per-constraint sums of vertex weights."""
        return self.vertex_weights.sum(axis=0)

"""Vectorized CSR-array FM bookkeeping (the default refine strategy).

The reference :class:`~repro.hypergraph.refine._BisectionState` walks
Python loops over incident edges for every ``gain()`` call — and the
shared selection loop calls ``gain()`` on every heap pop and every
dirty-vertex re-push, so on dense hypergraphs the partitioner spends
most of its time there.  This module replaces the bookkeeping with flat
numpy arrays:

* **init** — cut counts via one ``bincount`` over the flat pin array; a
  maintained per-vertex ``gains`` array built by a single vectorized
  pass over all (edge, pin) incidences.
* **move** — O(degree) delta-gain updates: one :func:`ragged_take`
  gather of the moved vertex's incident edges' pins, closed-form gain
  deltas per pin, one ``np.add.at`` scatter.
* **boundary / affected** — vectorized cut-edge masks over
  ``pin_edge_ids`` instead of per-edge Python loops.

The *selection* semantics are untouched: this class only overrides
state bookkeeping, and :func:`repro.hypergraph.refine._fm_pass` drives
both strategies identically.  Because Azul's hypergraphs carry dyadic
edge weights (integers and their coarsened sums), the incremental
delta-gain arithmetic here is bit-exact against the reference's
recompute-from-scratch gains, so both strategies produce identical
assignments (``tests/test_partitioner_equivalence.py``).

Layer contract: ``refine_vec`` sits above ``refine`` and below
``partitioner`` (see ``.importlinter`` and ``tools/check_layers.py``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hypergraph.hgraph import Hypergraph, ragged_take
from repro.hypergraph.refine import (
    RefineStrategy,
    _BisectionState,
    register_strategy,
)


class _CSRBisectionState(_BisectionState):
    """CSR-array FM bookkeeping with a maintained per-vertex gain array.

    Overrides every bookkeeping method of the reference state; the
    semantics of each (documented there) are preserved exactly.
    """

    # pylint: disable=super-init-not-called
    def __init__(self, hgraph: Hypergraph, side: np.ndarray):
        self.hgraph = hgraph
        self.side = side
        self.edge_sizes = hgraph.edge_sizes()
        pin_edge = hgraph.pin_edge_ids()
        # Pins of each edge currently on side 0 (one bincount pass).
        self.count0 = np.bincount(
            pin_edge,
            weights=(side[hgraph.pins] == 0).astype(np.float64),
            minlength=hgraph.n_edges,
        ).astype(np.int64)
        self.part_weights = np.zeros((2, hgraph.n_constraints))
        for s in (0, 1):
            members = side == s
            self.part_weights[s] = hgraph.vertex_weights[members].sum(axis=0)
        # Per-vertex gains from one pass over all (edge, pin) slots:
        # the moved-edge contribution of pin u is +w when u is the lone
        # pin on its side (the move uncuts e) and -w when every pin of
        # e sits on u's side (the move cuts e).
        sz = self.edge_sizes[pin_edge]
        c0 = self.count0[pin_edge]
        on_my = np.where(side[hgraph.pins] == 0, c0, sz - c0)
        contrib = hgraph.edge_weights[pin_edge] * (
            (on_my == 1).astype(np.float64) - (on_my == sz)
        )
        self.gains = np.bincount(
            hgraph.pins, weights=contrib, minlength=hgraph.n_vertices
        )
        # Incidence CSR, built once (the reference builds it lazily too).
        self._ve_ptr, self._ve_ids = hgraph.incidence_arrays()
        # Dirty-neighbor cache from the last move (reused by affected()).
        self._last_move: int = -1
        self._last_neighbors: Optional[np.ndarray] = None

    # -- bookkeeping overrides ----------------------------------------
    def gain(self, v: int) -> float:
        """Cut reduction if ``v`` switches sides (O(1) lookup)."""
        return float(self.gains[v])

    def _incident(self, v: int) -> np.ndarray:
        return self._ve_ids[self._ve_ptr[v]:self._ve_ptr[v + 1]]

    def move(self, v: int) -> None:
        """Switch ``v``'s side with O(degree) numpy delta-gain updates."""
        hgraph = self.hgraph
        s = int(self.side[v])
        edges = self._incident(v)
        lengths = self.edge_sizes[edges]
        pv = ragged_take(hgraph.pins, hgraph.edge_ptr[edges], lengths)
        pe = np.repeat(edges, lengths)

        w = hgraph.edge_weights[pe]
        sz = self.edge_sizes[pe]
        c0 = self.count0[pe]
        # Pre-move pin counts on v's side (cs) and the far side (ct).
        cs = np.where(s == 0, c0, sz - c0)
        ct = sz - cs
        same = self.side[pv] == s
        # Same-side pins: moving v away adds +w when v and u were the
        # only same-side pins (u becomes lone: cs == 2) and +w when the
        # edge was uncut on this side (u can no longer uncut for free:
        # cs == sz, reclaiming the -w it carried).  Far-side pins lose
        # -w when v joins a lone pin (ct == 1) or fills the edge
        # (ct == sz - 1).
        delta = np.where(
            same,
            w * ((cs == 2).astype(np.float64) + (cs == sz)),
            -w * ((ct == 1).astype(np.float64) + (ct == sz - 1)),
        )
        not_v = pv != v
        neighbors = pv[not_v]
        np.add.at(self.gains, neighbors, delta[not_v])
        # Every per-edge contribution of v itself flips sign exactly.
        self.gains[v] = -self.gains[v]

        self.count0[edges] += -1 if s == 0 else 1
        self.part_weights[s] -= hgraph.vertex_weights[v]
        self.part_weights[1 - s] += hgraph.vertex_weights[v]
        self.side[v] = 1 - s

        self._last_move = v
        self._last_neighbors = neighbors

    def affected(self, v: int) -> List[int]:
        """Dirty set of ``v``: unique ascending neighbors (vectorized)."""
        if v == self._last_move and self._last_neighbors is not None:
            neighbors = self._last_neighbors
        else:
            hgraph = self.hgraph
            edges = self._incident(v)
            lengths = self.edge_sizes[edges]
            pv = ragged_take(hgraph.pins, hgraph.edge_ptr[edges], lengths)
            neighbors = pv[pv != v]
        return np.unique(neighbors).tolist()

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut edge (vectorized)."""
        hgraph = self.hgraph
        cut_edges = (self.count0 > 0) & (self.count0 < self.edge_sizes)
        mask = cut_edges[hgraph.pin_edge_ids()]
        return np.unique(hgraph.pins[mask])


@register_strategy
class VectorizedRefine(RefineStrategy):
    """CSR-array FM bookkeeping — the default strategy.

    Bit-identical to :class:`~repro.hypergraph.refine.ReferenceRefine`
    on dyadic-weight hypergraphs (every hypergraph the Azul mapping
    builds); selected by default, or explicitly via
    ``refine="vectorized"``.
    """

    name = "vectorized"

    def make_state(self, hgraph: Hypergraph,
                   side: np.ndarray) -> _CSRBisectionState:
        return _CSRBisectionState(hgraph, side)

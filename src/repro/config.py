"""Hardware configuration for the simulated Azul machine.

:class:`AzulConfig` mirrors Table III of the paper.  The paper's default
machine is a 64x64 grid of tiles at 2 GHz; pure-Python simulation is
tractable at smaller grids, so :func:`default_config` returns an 8x8
machine and the scaling experiments (Fig. 28) use 16x16 and 32x32.  All
derived quantities (peak FLOP/s, SRAM capacity, bisection bandwidth) are
computed from the primitive parameters, so scaled configurations stay
self-consistent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

#: Environment escape hatches, consolidated (see :func:`overrides`).
#: These names are the single documented surface; the owning modules
#: (``repro.sim.engine``, ``repro.hypergraph.refine``,
#: ``repro.cache.store``, ``repro.parallel``) alias them.
ENV_SIM_REFERENCE = "AZUL_SIM_REFERENCE"
ENV_PART_REFERENCE = "AZUL_PART_REFERENCE"
ENV_SOLVER_REFERENCE = "AZUL_SOLVER_REFERENCE"
ENV_DATAFLOW_REFERENCE = "AZUL_DATAFLOW_REFERENCE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"
ENV_JOBS = "REPRO_JOBS"


def env_truthy(value: Optional[str]) -> bool:
    """Shared truthiness rule for boolean environment escape hatches."""
    if value is None:
        return False
    return str(value).strip().lower() not in ("", "0", "false", "no", "off")


def overrides() -> Dict[str, Dict[str, Any]]:
    """Effective values of every environment escape hatch.

    One documented surface over the engine/refine/cache/jobs knobs:
    each entry reports the raw environment value (``None`` when unset)
    and the *effective* setting the pipeline resolves it to.  Emitted
    into every metrics artifact so runs are self-describing.
    """
    from repro.cache.store import DEFAULT_MAX_BYTES, default_cache_root
    from repro.parallel import default_jobs

    sim_raw = os.environ.get(ENV_SIM_REFERENCE)
    part_raw = os.environ.get(ENV_PART_REFERENCE)
    solver_raw = os.environ.get(ENV_SOLVER_REFERENCE)
    dataflow_raw = os.environ.get(ENV_DATAFLOW_REFERENCE)
    dir_raw = os.environ.get(ENV_CACHE_DIR)
    max_raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    disable_raw = os.environ.get(ENV_CACHE_DISABLE)
    jobs_raw = os.environ.get(ENV_JOBS)
    try:
        max_bytes = int(max_raw) if max_raw else DEFAULT_MAX_BYTES
    except ValueError:
        max_bytes = DEFAULT_MAX_BYTES
    return {
        ENV_SIM_REFERENCE: {
            "raw": sim_raw,
            "effective": (
                "reference" if env_truthy(sim_raw) else "batched"
            ),
        },
        ENV_PART_REFERENCE: {
            "raw": part_raw,
            "effective": (
                "reference" if env_truthy(part_raw) else "vectorized"
            ),
        },
        ENV_SOLVER_REFERENCE: {
            "raw": solver_raw,
            "effective": (
                "reference" if env_truthy(solver_raw) else "level"
            ),
        },
        ENV_DATAFLOW_REFERENCE: {
            "raw": dataflow_raw,
            "effective": (
                "reference" if env_truthy(dataflow_raw) else "vectorized"
            ),
        },
        ENV_CACHE_DIR: {
            "raw": dir_raw,
            "effective": dir_raw or str(default_cache_root()),
        },
        ENV_CACHE_MAX_BYTES: {"raw": max_raw, "effective": max_bytes},
        ENV_CACHE_DISABLE: {
            "raw": disable_raw,
            "effective": env_truthy(disable_raw),
        },
        ENV_JOBS: {"raw": jobs_raw, "effective": default_jobs()},
    }


@dataclass(frozen=True)
class AzulConfig:
    """Parameters of a simulated Azul machine (paper Table III).

    Attributes
    ----------
    mesh_rows, mesh_cols:
        Tile-grid dimensions.  The paper's default is 64x64.
    frequency_hz:
        Clock frequency; 2 GHz in the paper.
    data_sram_bytes:
        Per-tile Data SRAM holding matrix nonzeros and vector values
        (72 KB in the paper).
    accum_sram_bytes:
        Per-tile Accumulator SRAM holding partial sums (36 KB).
    sram_access_cycles:
        Pipelined SRAM access latency in cycles (2 in the paper;
        swept 1-4 in Fig. 26).
    hop_cycles:
        NoC per-hop latency in cycles (1 in the paper; swept 1-4 in
        Fig. 25).
    topology:
        NoC topology: ``"torus"`` (the paper's 2D torus) or ``"mesh"``
        (no wraparound; the ``abl_topology`` design-space ablation).
    link_bits:
        NoC link width; 96 bits carries one 64-bit double plus 32 bits
        of metadata per cycle.
    pipeline_depth:
        PE pipeline depth (7 stages in the paper).
    fmac_latency_cycles:
        Cycles from issue until an FMAC's accumulator write is visible
        (the compute + accumulator-read portion of the pipeline; 4).
    multithreaded:
        When ``True`` the PE interleaves operations from multiple task
        contexts to hide accumulator RAW hazards (Sec. V-A); ``False``
        models the single-threaded PE of Fig. 27.
    thread_contexts:
        Number of replicated operation-generator contexts.
    msg_buffer_entries:
        Register-based incoming-message buffer per tile; overflow spills
        to the Data SRAM (modeled as extra SRAM traffic).
    nnz_bytes:
        Storage footprint of one matrix nonzero (64-bit value + 32-bit
        metadata = 12 bytes, matching the 96-bit SRAM word).
    vector_bytes:
        Storage per vector element (one 64-bit double).
    """

    mesh_rows: int = 8
    mesh_cols: int = 8
    topology: str = "torus"
    frequency_hz: float = 2.0e9
    data_sram_bytes: int = 72 * 1024
    accum_sram_bytes: int = 36 * 1024
    sram_access_cycles: int = 2
    hop_cycles: int = 1
    link_bits: int = 96
    pipeline_depth: int = 7
    fmac_latency_cycles: int = 4
    multithreaded: bool = True
    thread_contexts: int = 8
    msg_buffer_entries: int = 16
    nnz_bytes: int = 12
    vector_bytes: int = 8

    def __post_init__(self):
        if self.mesh_rows < 1 or self.mesh_cols < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.hop_cycles < 1:
            raise ValueError("hop latency must be at least one cycle")
        if self.sram_access_cycles < 1:
            raise ValueError("SRAM latency must be at least one cycle")
        if self.topology not in ("torus", "mesh"):
            raise ValueError(f"unknown topology {self.topology!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Total number of tiles in the grid."""
        return self.mesh_rows * self.mesh_cols

    @property
    def sram_bytes_per_tile(self) -> int:
        """Combined Data + Accumulator SRAM per tile."""
        return self.data_sram_bytes + self.accum_sram_bytes

    @property
    def total_sram_bytes(self) -> int:
        """Aggregate on-chip SRAM across all tiles."""
        return self.num_tiles * self.sram_bytes_per_tile

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s: one FMAC (2 FLOPs) per PE per cycle."""
        return 2.0 * self.num_tiles * self.frequency_hz

    @property
    def sram_bandwidth_bytes(self) -> float:
        """Aggregate scratchpad bandwidth (one 96-bit+96-bit access/cycle)."""
        return self.num_tiles * (2 * self.link_bits / 8) * self.frequency_hz

    @property
    def bisection_links(self) -> int:
        """Number of links crossing the bisection of the 2D torus.

        Cutting a torus in half crosses ``2 * min_dim`` links (wrap links
        double the mesh count), in each direction.
        """
        return 2 * min(self.mesh_rows, self.mesh_cols) * 2

    @property
    def bisection_bandwidth_bytes(self) -> float:
        """NoC bisection bandwidth in bytes/s."""
        return self.bisection_links * (self.link_bits / 8) * self.frequency_hz

    # ------------------------------------------------------------------
    # Cache identity
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Stable digest of every primitive parameter.

        Used by :mod:`repro.cache` to key artifacts derived from this
        configuration: two configs with equal fields share a key, and
        any field change (including ones added in future versions)
        changes it.
        """
        from dataclasses import asdict

        from repro.cache.keys import stable_digest

        return stable_digest("azul-config", asdict(self))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def scaled(self, factor: int) -> "AzulConfig":
        """Return a copy with the tile grid scaled by ``factor`` per side."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return replace(
            self,
            mesh_rows=self.mesh_rows * factor,
            mesh_cols=self.mesh_cols * factor,
        )

    def with_(self, **kwargs) -> "AzulConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def default_config() -> AzulConfig:
    """The default simulated machine: an 8x8-tile scale model of Table III."""
    return AzulConfig()


def paper_config() -> AzulConfig:
    """The paper's full 64x64-tile configuration (Table III).

    Useful for analytic models (area, power, peak rates); cycle-level
    simulation at this size is impractical in pure Python.
    """
    return AzulConfig(mesh_rows=64, mesh_cols=64)

"""Structural dynamics with a state-dependent stiffness matrix.

The paper's middle Sec. II-C category (e.g. rigid-body simulation):
A's *values* change with the state while its *pattern* — the mesh —
is static, and the preconditioner is refreshed only when values drift.
Uses the generic :class:`~repro.apps.PhysicalSystemSimulator` harness
end to end, including the Azul execution estimate and the Sec. VI-D
amortization break-even.

Run:  python examples/structural_dynamics.py
"""

from repro.apps import PhysicalSystemSimulator, StructuralModel
from repro.config import AzulConfig
from repro.solvers import SolveOptions


TIMESTEPS = 12


def main():
    model = StructuralModel(
        n_nodes=150, dofs=2, softening=0.3, refresh_threshold=0.05, seed=4
    )
    simulator = PhysicalSystemSimulator(
        model, options=SolveOptions(tol=1e-8)
    )
    matrix = simulator.matrix
    print(
        f"structure: n={matrix.n_rows} DOFs, nnz={matrix.nnz} "
        f"(mesh pattern is static; stiffness values soften with state)"
    )

    # One-time: map onto Azul and time one steady-state iteration.
    config = AzulConfig(mesh_rows=8, mesh_cols=8)
    estimate = simulator.azul_estimate(config=config)
    print(
        f"mapping: {estimate.mapping_seconds:.1f} s once; "
        f"{estimate.cycles_per_iteration} cycles/iteration thereafter"
    )

    trace = simulator.run(n_steps=TIMESTEPS)
    for record in trace.records:
        refresh = "  [IC(0) refreshed]" if record.preconditioner_refreshed \
            else ""
        print(
            f"  step {record.step:2d}: {record.iterations:3d} iterations, "
            f"residual {record.residual_norm:.2e}{refresh}"
        )

    print(
        f"\n{trace.n_steps} steps, {trace.total_iterations} iterations, "
        f"{trace.refresh_count} preconditioner refreshes"
    )
    solve_seconds = estimate.solve_seconds(trace.total_iterations)
    print(f"Azul solve time: {solve_seconds * 1e6:.0f} us")
    per_step = trace.total_iterations / trace.n_steps
    breakeven = estimate.amortization_steps(per_step)
    print(
        f"mapping cost drops below 1% of solve time after "
        f"{breakeven:,.0f} timesteps — long-running simulations "
        "(the paper's hours-scale workloads) amortize it completely"
    )


if __name__ == "__main__":
    main()

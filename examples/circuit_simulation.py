"""Circuit transient simulation: the paper's Sec. I motivation.

The paper opens with analog circuit simulation (Xyce taking 3.5 hours
for 1.7M-nonzero SRAM netlists) as the canonical "matrix fits on-chip,
runs for hours" workload.  This example builds a G3_circuit-style
random conductance matrix, compares preconditioners (the solver-
selection problem of Table II), and shows why position-based mappings
fail on circuits: their nonzero coordinates are spatially uncorrelated,
so only the Azul mapping finds locality.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro import (
    AzulConfig,
    AzulMachine,
    IncompleteCholesky,
    JacobiPreconditioner,
    SymmetricGaussSeidel,
    analyze_traffic,
    map_azul,
    map_block,
    map_round_robin,
    pcg,
)
from repro.comm import TorusGeometry
from repro.graph import color_and_permute
from repro.hypergraph import PartitionerOptions
from repro.sparse import generators


N_NODES = 900
TIMESTEPS = 5


def main():
    # A circuit conductance matrix: ~5 random connections per node.
    matrix = generators.random_spd(N_NODES, nnz_per_row=5, seed=42)
    print(f"circuit: {N_NODES} nodes, {matrix.nnz} nonzeros")
    matrix, _, _ = color_and_permute(matrix)

    # ------------------------------------------------------------------
    # 1. Preconditioner selection (the Table II design space).
    # ------------------------------------------------------------------
    b = generators.make_rhs(matrix, seed=1)
    print("\npreconditioner comparison (iterations to 1e-10):")
    preconditioners = [
        ("none", None),
        ("Jacobi", JacobiPreconditioner(matrix)),
        ("SymGS", SymmetricGaussSeidel(matrix)),
        ("IC(0)", IncompleteCholesky(matrix)),
    ]
    for label, preconditioner in preconditioners:
        result = pcg(matrix, b, preconditioner)
        print(f"  {label:8s} {result.iterations:4d} iterations")

    # ------------------------------------------------------------------
    # 2. Mapping comparison: circuits defeat position-based mappings.
    # ------------------------------------------------------------------
    preconditioner = IncompleteCholesky(matrix)
    lower = preconditioner.lower_factor()
    config = AzulConfig(mesh_rows=8, mesh_cols=8)
    torus = TorusGeometry(config.mesh_rows, config.mesh_cols)
    print("\nNoC traffic per PCG iteration (link activations):")
    placements = {
        "round_robin": map_round_robin(matrix, lower, config.num_tiles),
        "block": map_block(matrix, lower, config.num_tiles),
        "azul": map_azul(
            matrix, lower, config.num_tiles,
            options=PartitionerOptions.speed(seed=0),
        ),
    }
    for label, placement in placements.items():
        report = analyze_traffic(placement, matrix, lower, torus)
        print(f"  {label:12s} {report.total_link_activations:8d}")

    # ------------------------------------------------------------------
    # 3. Transient loop: repeated solves with changing sources.
    # ------------------------------------------------------------------
    machine = AzulMachine(config)
    timing = machine.simulate_pcg(
        matrix, lower, placements["azul"], b
    )
    print(
        f"\nAzul: {timing.total_cycles} cycles/iteration, "
        f"{timing.gflops():.1f} GFLOP/s"
    )
    rng = np.random.default_rng(3)
    x = np.zeros(matrix.n_rows)
    total_iterations = 0
    for step in range(TIMESTEPS):
        sources = rng.standard_normal(matrix.n_rows) * 0.1
        result = pcg(matrix, b + sources, preconditioner, x0=x)
        x = result.x
        total_iterations += result.iterations
    seconds = (
        total_iterations * timing.total_cycles / config.frequency_hz
    )
    print(
        f"{TIMESTEPS} transient steps = {total_iterations} iterations "
        f"-> {seconds * 1e6:.0f} us on Azul"
    )


if __name__ == "__main__":
    main()

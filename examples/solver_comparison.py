"""Solver zoo: every Table II algorithm on one problem.

Runs CG, PCG (Jacobi / SymGS / SSOR / IC(0)), BiCGStab (plain and
ILU(0)), restarted GMRES, and power iteration on the same SPD system,
reporting iteration counts and the kernel mix each one exercises —
demonstrating that the whole family reduces to SpMV + SpTRSV, the two
kernels Azul accelerates.

Run:  python examples/solver_comparison.py
"""

import numpy as np

from repro import (
    IncompleteCholesky,
    IncompleteLU,
    JacobiPreconditioner,
    SSORPreconditioner,
    SymmetricGaussSeidel,
    bicgstab,
    conjugate_gradient,
    gmres,
    pcg,
    power_iteration,
)
from repro.precond import BlockJacobiPreconditioner
from repro.solvers import SolveOptions, chebyshev
from repro.graph import color_and_permute
from repro.sparse import generators


def main():
    matrix = generators.random_geometric_fem(
        150, avg_degree=7, dofs_per_node=2, seed=11
    )
    matrix, _, _ = color_and_permute(matrix)
    b, x_true = generators.make_rhs_with_solution(matrix, seed=12)
    print(f"system: n={matrix.n_rows}, nnz={matrix.nnz}\n")

    runs = [
        ("CG", lambda: conjugate_gradient(matrix, b)),
        ("PCG + Jacobi",
         lambda: pcg(matrix, b, JacobiPreconditioner(matrix))),
        ("PCG + SymGS",
         lambda: pcg(matrix, b, SymmetricGaussSeidel(matrix))),
        ("PCG + SSOR(1.2)",
         lambda: pcg(matrix, b, SSORPreconditioner(matrix, omega=1.2))),
        ("PCG + IC(0)",
         lambda: pcg(matrix, b, IncompleteCholesky(matrix))),
        ("PCG + BlockJacobi(8)",
         lambda: pcg(matrix, b, BlockJacobiPreconditioner(matrix, 8))),
        ("Chebyshev",
         lambda: chebyshev(
             matrix, b,
             options=SolveOptions(tol=1e-10, max_iterations=20000),
         )),
        ("BiCGStab", lambda: bicgstab(matrix, b)),
        ("BiCGStab + ILU(0)",
         lambda: bicgstab(matrix, b, IncompleteLU(matrix))),
        ("GMRES(30)", lambda: gmres(matrix, b, restart=30)),
    ]
    header = (
        f"{'solver':18s} {'iters':>6s} {'error':>10s} "
        f"{'SpMV MFLOP':>11s} {'SpTRSV MFLOP':>13s}"
    )
    print(header)
    print("-" * len(header))
    for label, solve in runs:
        result = solve()
        error = np.linalg.norm(result.x - x_true)
        print(
            f"{label:18s} {result.iterations:6d} {error:10.2e} "
            f"{result.flops['spmv'] / 1e6:11.2f} "
            f"{result.flops['sptrsv'] / 1e6:13.2f}"
        )
        assert result.converged, f"{label} failed to converge"

    eigen = power_iteration(matrix, tol=1e-10)
    print(
        f"\npower iteration: dominant eigenvalue "
        f"{eigen.eigenvalue:.4f} in {eigen.iterations} iterations "
        "(SpMV-only, Table II)"
    )


if __name__ == "__main__":
    main()

"""Data-mapping deep dive on one suite matrix.

Reproduces the Sec. IV/VI-C analysis for a single matrix end to end:
builds the PCG hypergraph, partitions it, and compares all four mapping
strategies on NoC messages, link activations, load balance, simulated
cycles, and mapping cost — a miniature of Figs. 10/11/23 plus the
Sec. VI-D cost table, for interactive exploration.

Run:  python examples/mapping_study.py [matrix-name]
"""

import sys
import time

from repro import AzulConfig, AzulMachine, analyze_traffic
from repro.comm import TorusGeometry
from repro.core import build_pcg_hypergraph, get_mapper, placement_stats
from repro.graph import color_and_permute
from repro.hypergraph import PartitionerOptions
from repro.precond import ic0
from repro.sparse.suite import get_suite_matrix, suite_names


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "shipsec1"
    if name not in suite_names("all"):
        raise SystemExit(
            f"unknown matrix {name!r}; choices: {suite_names('all')}"
        )
    matrix, b = get_suite_matrix(name)
    matrix, b, _ = color_and_permute(matrix, b)
    lower = ic0(matrix)
    config = AzulConfig(mesh_rows=8, mesh_cols=8)
    torus = TorusGeometry(config.mesh_rows, config.mesh_cols)
    machine = AzulMachine(config)

    hypergraph = build_pcg_hypergraph(matrix, lower)
    print(f"matrix {name}: n={matrix.n_rows}, nnz(A)={matrix.nnz}, "
          f"nnz(L)={lower.nnz}")
    print(f"PCG hypergraph: {hypergraph.n_vertices} vertices, "
          f"{hypergraph.n_edges} hyperedges, "
          f"{hypergraph.n_constraints} balance constraints\n")

    header = (
        f"{'mapping':12s} {'map_s':>7s} {'messages':>9s} {'links':>8s} "
        f"{'imbalance':>9s} {'cycles':>8s} {'GFLOP/s':>8s}"
    )
    print(header)
    print("-" * len(header))
    for mapping in ("round_robin", "block", "sparsep", "azul"):
        mapper = get_mapper(mapping)
        start = time.perf_counter()
        if mapping == "azul":
            placement = mapper(
                matrix, lower, config.num_tiles,
                options=PartitionerOptions.speed(seed=0),
            )
        else:
            placement = mapper(matrix, lower, config.num_tiles)
        map_seconds = time.perf_counter() - start
        traffic = analyze_traffic(placement, matrix, lower, torus)
        stats = placement_stats(placement)
        timing = machine.simulate_pcg(matrix, lower, placement, b,
                                      check=False)
        print(
            f"{mapping:12s} {map_seconds:7.2f} "
            f"{traffic.total_messages:9d} "
            f"{traffic.total_link_activations:8d} "
            f"{stats['nnz_imbalance']:9.2f} "
            f"{timing.total_cycles:8d} {timing.gflops():8.1f}"
        )
    print(
        "\nAzul's mapping costs the most to compute but minimizes "
        "communication — the paper's amortization argument (Sec. VI-D)."
    )


if __name__ == "__main__":
    main()

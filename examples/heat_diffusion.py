"""Heat-diffusion timestepping: the end-to-end application of Sec. II-C.

Simulates transient heat conduction on a 2D plate with implicit Euler:
each timestep solves ``(M + dt*K) x_next = M x`` where ``K`` is the
grid Laplacian.  This is the paper's motivating application shape:

* ``A = M + dt*K`` is **static** — its sparsity pattern and values
  never change, so the expensive Azul mapping is computed **once** and
  reused every timestep (the amortization argument of Sec. VI-D);
* ``b`` changes every timestep via an SpMV — exactly the update loop of
  Fig. 8;
* every timestep's solve reuses the on-chip matrices, which is where
  Azul's inter-iteration reuse comes from.

Run:  python examples/heat_diffusion.py
"""

import time

import numpy as np

from repro import AzulConfig, AzulMachine, IncompleteCholesky, map_azul, pcg
from repro.graph import color_and_permute, permute_vector
from repro.hypergraph import PartitionerOptions
from repro.solvers import SolveOptions
from repro.sparse import generators


GRID = 24           # plate is GRID x GRID cells
DT = 0.1            # timestep
TIMESTEPS = 20


def build_system():
    """Implicit-Euler heat equation matrix A = I + dt * K."""
    laplacian = generators.grid_laplacian_2d(GRID, GRID, shift=0.0)
    # A = I + dt*K: scale off-diagonals by dt, add 1 to the diagonal.
    data = laplacian.data * DT
    diag_mask = (
        np.repeat(np.arange(laplacian.n_rows), laplacian.row_nnz())
        == laplacian.indices
    )
    data[diag_mask] += 1.0
    from repro.sparse import CSRMatrix

    return CSRMatrix(
        laplacian.indptr.copy(), laplacian.indices.copy(), data,
        laplacian.shape,
    )


def initial_temperature():
    """A hot square in the plate's center."""
    field = np.zeros((GRID, GRID))
    lo, hi = GRID // 3, 2 * GRID // 3
    field[lo:hi, lo:hi] = 100.0
    return field.ravel()


def main():
    matrix = build_system()
    x = initial_temperature()
    print(f"heat system: n={matrix.n_rows}, nnz={matrix.nnz}, dt={DT}")

    # One-time preprocessing: color+permute, factor, map (Sec. II-C
    # point 3: static sparsity makes expensive placement the right
    # tradeoff).
    matrix, _, perm = color_and_permute(matrix)
    x = permute_vector(x, perm)
    preconditioner = IncompleteCholesky(matrix)
    lower = preconditioner.lower_factor()
    config = AzulConfig(mesh_rows=8, mesh_cols=8)

    map_start = time.perf_counter()
    placement = map_azul(
        matrix, lower, config.num_tiles,
        options=PartitionerOptions.speed(seed=0),
    )
    map_seconds = time.perf_counter() - map_start
    machine = AzulMachine(config)

    # Simulate one steady-state iteration to get cycles/iteration; the
    # timing is reused for every timestep (same matrices, same mapping).
    timing = machine.simulate_pcg(matrix, lower, placement, x + 1.0)
    cycles_per_iteration = timing.total_cycles

    total_iterations = 0
    azul_seconds = 0.0
    options = SolveOptions(tol=1e-8)
    for step in range(TIMESTEPS):
        b = x.copy()  # M x with M = I
        result = pcg(matrix, b, preconditioner, options=options, x0=x)
        x = result.x
        total_iterations += result.iterations
        azul_seconds += (
            result.iterations * cycles_per_iteration / config.frequency_hz
        )
        if step % 5 == 0:
            print(
                f"  t={step * DT:5.2f}  max T={x.max():7.3f}  "
                f"mean T={x.mean():6.3f}  iters={result.iterations}"
            )

    print(
        f"\n{TIMESTEPS} timesteps, {total_iterations} PCG iterations total"
    )
    print(
        f"Azul solve time: {azul_seconds * 1e6:.0f} us "
        f"({cycles_per_iteration} cycles/iteration at "
        f"{config.frequency_hz / 1e9:.0f} GHz)"
    )
    print(
        f"one-time mapping cost: {map_seconds:.1f} s, amortized over "
        f"{TIMESTEPS} timesteps sharing one sparsity pattern"
    )
    # Heat must dissipate but be conserved in total (insulated plate).
    assert x.max() < 100.0
    print("max temperature decayed as expected — simulation consistent")


if __name__ == "__main__":
    main()

"""Quickstart: solve a sparse system and estimate Azul's speedup.

Builds a 2D-grid SPD system, solves it functionally with IC(0)-
preconditioned conjugate gradients, then maps the same problem onto a
simulated 8x8-tile Azul machine and reports per-iteration timing,
throughput, and the end-to-end solve-time estimate versus the GPU
model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AzulConfig,
    AzulMachine,
    GPUModel,
    IncompleteCholesky,
    map_azul,
    pcg,
)
from repro.graph import color_and_permute
from repro.hypergraph import PartitionerOptions
from repro.sparse import generators


def main():
    # ------------------------------------------------------------------
    # 1. Build a problem: 5-point Laplacian on a 32x32 grid.
    # ------------------------------------------------------------------
    matrix = generators.grid_laplacian_2d(32, 32, shift=0.02)
    b, x_true = generators.make_rhs_with_solution(matrix, seed=7)
    print(f"system: n={matrix.n_rows}, nnz={matrix.nnz}")

    # ------------------------------------------------------------------
    # 2. The paper's preprocessing: color + permute for parallelism.
    # ------------------------------------------------------------------
    matrix, b, perm = color_and_permute(matrix, b)

    # ------------------------------------------------------------------
    # 3. Functional solve (ground truth + iteration count).
    # ------------------------------------------------------------------
    preconditioner = IncompleteCholesky(matrix)
    solution = pcg(matrix, b, preconditioner)
    error = np.linalg.norm(solution.x - x_true[perm])
    print(
        f"PCG converged in {solution.iterations} iterations "
        f"(|x - x_true| = {error:.2e})"
    )

    # ------------------------------------------------------------------
    # 4. Map the problem onto Azul and simulate one iteration.
    # ------------------------------------------------------------------
    config = AzulConfig(mesh_rows=8, mesh_cols=8)
    lower = preconditioner.lower_factor()
    placement = map_azul(
        matrix, lower, config.num_tiles,
        options=PartitionerOptions.speed(seed=0),
    )
    placement.validate_capacity(config)
    machine = AzulMachine(config)
    timing = machine.simulate_pcg(matrix, lower, placement, b)
    print(
        f"Azul: {timing.total_cycles} cycles/iteration, "
        f"{timing.gflops():.1f} GFLOP/s "
        f"({timing.utilization():.1%} of peak)"
    )

    # ------------------------------------------------------------------
    # 5. End-to-end estimate vs the GPU model.
    # ------------------------------------------------------------------
    azul_seconds = (
        solution.iterations * timing.total_cycles / config.frequency_hz
    )
    gpu_seconds = (
        solution.iterations
        * GPUModel().pcg_iteration_time(matrix, lower).total
    )
    print(
        f"end-to-end solve: Azul {azul_seconds * 1e6:.0f} us vs "
        f"GPU model {gpu_seconds * 1e6:.0f} us "
        f"({gpu_seconds / azul_seconds:.0f}x speedup)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Enforce the simulator-core layer contract without third-party tools.

Mirrors the import-linter contracts in ``.importlinter`` (run in CI,
where ``import-linter`` can be installed) so the same rules are
checkable offline and in the test suite with nothing but the standard
library:

1. **Core layering** — within ``repro.sim`` the layers
   ``events ← state ← fabric ← issue ← engine`` may only depend
   downward (``engine`` sees everything, ``events`` sees nothing).
2. **comm independence** — ``repro.comm`` never imports ``repro.sim``
   (geometries and trees stay simulator-agnostic).
3. **dataflow independence** — ``repro.dataflow`` never imports
   ``repro.sim.engine`` (programs are engine-neutral artifacts).

The scan is purely static (``ast`` over every ``repro`` module);
``from x import y`` and ``import x`` are both resolved, including
relative imports.  Exit code 0 = contract holds.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

SRC = Path(__file__).resolve().parent.parent / "src"

#: Bottom-up layer order of the simulator core.  A module may import
#: only itself and strictly lower layers.
SIM_LAYERS = ["events", "state", "fabric", "issue", "engine"]

#: (importer-prefix, forbidden-import-prefix, reason)
FORBIDDEN: List[Tuple[str, str, str]] = [
    ("repro.comm", "repro.sim",
     "comm is the geometry/tree layer; it must not know the simulator"),
    ("repro.dataflow", "repro.sim.engine",
     "dataflow programs are engine-neutral; only the composition root "
     "may bind them to an engine"),
    ("repro.sim", "repro.cli",
     "the simulator never reaches into the CLI"),
]


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _imports(path: Path, module: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, imported_module)`` for every import in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    package_parts = module.split(".")
    if path.name != "__init__.py":
        package_parts = package_parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base)
                target = (
                    f"{prefix}.{node.module}" if node.module else prefix
                )
            else:
                target = node.module or ""
            if target:
                yield node.lineno, target


def _sim_layer(module: str) -> int:
    """Layer index of a ``repro.sim`` core module, else -1."""
    parts = module.split(".")
    if len(parts) >= 3 and parts[0] == "repro" and parts[1] == "sim":
        try:
            return SIM_LAYERS.index(parts[2])
        except ValueError:
            return -1
    return -1


def check(src: Path = SRC) -> List[str]:
    """All layer-contract violations in the tree (empty = clean)."""
    violations: List[str] = []
    for path in sorted(src.rglob("*.py")):
        module = _module_name(path)
        importer_layer = _sim_layer(module)
        for lineno, target in _imports(path, module):
            where = f"{path.relative_to(src.parent)}:{lineno}"
            # Rule 1: strict layering inside the simulator core.
            target_layer = _sim_layer(target)
            if importer_layer != -1 and target_layer != -1 \
                    and target_layer > importer_layer:
                violations.append(
                    f"{where}: {module} (layer "
                    f"'{SIM_LAYERS[importer_layer]}') imports {target} "
                    f"(higher layer '{SIM_LAYERS[target_layer]}')"
                )
            # Rule 2/3: forbidden cross-package edges.
            for src_prefix, bad_prefix, reason in FORBIDDEN:
                if (module == src_prefix
                        or module.startswith(src_prefix + ".")) and (
                        target == bad_prefix
                        or target.startswith(bad_prefix + ".")):
                    violations.append(
                        f"{where}: {module} imports {target} ({reason})"
                    )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("layer-contract violations:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("layer contract OK "
          f"(sim core: {' <- '.join(SIM_LAYERS)}; "
          f"{len(FORBIDDEN)} cross-package rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

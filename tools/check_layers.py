#!/usr/bin/env python
"""Enforce the repo's layer contracts without third-party tools.

Mirrors the import-linter contracts in ``.importlinter`` (run in CI,
where ``import-linter`` can be installed) so the same rules are
checkable offline and in the test suite with nothing but the standard
library:

1. **Simulator-core layering** — within ``repro.sim`` the layers
   ``events <- state <- fabric <- issue <- engine`` may only depend
   downward (``engine`` sees everything, ``events`` sees nothing).
2. **Hypergraph layering** — within ``repro.hypergraph`` the layers
   ``hgraph <- metrics <- rebalance <- coarsen <- initial <- refine
   <- refine_vec <- partitioner`` may only depend downward; the
   ``RefineStrategy`` registry (``refine``) sits below the vectorized
   implementation (``refine_vec``), which sits below the driver.
3. **comm independence** — ``repro.comm`` never imports ``repro.sim``
   or ``repro.dataflow`` (geometries, trees, and forests stay
   simulator- and program-agnostic).
4. **dataflow independence** — ``repro.dataflow`` never imports
   ``repro.sim`` (programs are engine-neutral artifacts the simulator
   consumes), and within the package the layers ``messages <- tasks
   <- ir <- lower <- kernel_program <- [spmv_graph / sptrsv_graph /
   vector_ops] <- program`` may only depend downward; the three
   program builders form a sibling group.
5. **hypergraph independence** — ``repro.hypergraph`` never imports
   the simulator, mapping core, experiments, or CLI: the partitioner
   is a leaf library, callers pass ``jobs``/options down explicitly.
6. **obs is a leaf** — ``repro.obs`` imports nothing from ``repro``
   outside itself (standard library only), so every layer may
   instrument itself through it without creating cycles.
7. **Sparse-kernel layering** — within ``repro.sparse`` the numeric
   stack layers ``csr <- schedule <- ops`` may only depend downward
   (schedules are built over CSR structure; the kernel engines consume
   schedules).
8. **Solver-stack layering** — ``sparse <- precond <- solvers``:
   preconditioners sit on the sparse kernels, solvers on both; none of
   the three may import the simulator or the experiment pipeline (the
   functional solver layer is the simulator's validation oracle, so it
   must stay simulator-free).
9. **Experiments layering** — within ``repro.experiments`` the layers
   ``spec <- common <- executor <- [experiment modules] <- runner``
   may only depend downward.  The experiment modules form a *sibling
   group*: they share one layer and none may import another, so every
   experiment stays independently loadable and the executor can plan
   any subset.  The experiments package also never imports the CLI.

The scan is purely static (``ast`` over every ``repro`` module);
``from x import y`` and ``import x`` are both resolved, including
relative imports and function-local imports.  Package ``__init__``
modules are exempt from the intra-package layering rule (they are the
public facade and may re-export any layer).  Exit code 0 = contract
holds.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

SRC = Path(__file__).resolve().parent.parent / "src"

#: One layer: a module name, or a list of module names forming a
#: *sibling group* — same rank, mutually independent (no member may
#: import another member).
Layer = Union[str, List[str]]

#: Bottom-up layer order per layered package.  Within a package a
#: module may import only itself and strictly lower layers.
LAYERED_PACKAGES: Dict[str, List[Layer]] = {
    "repro.sim": ["events", "state", "fabric", "issue", "engine"],
    "repro.dataflow": [
        "messages", "tasks", "ir", "lower", "kernel_program",
        [  # sibling group: independent program builders over the IR
            "spmv_graph", "sptrsv_graph", "vector_ops",
        ],
        "program",
    ],
    "repro.hypergraph": [
        "hgraph", "metrics", "rebalance", "coarsen", "initial",
        "refine", "refine_vec", "partitioner",
    ],
    "repro.sparse": ["csr", "schedule", "ops"],
    "repro.experiments": [
        "spec",
        "common",
        "executor",
        [  # sibling group: one spec module per experiment id
            "tab4", "fig01", "fig02", "fig03", "tab1", "fig07", "tab2",
            "fig09", "fig10", "fig11", "fig17", "fig20", "fig21",
            "fig22", "fig23", "tabD", "tab5", "fig24", "fig25",
            "fig26", "fig27", "fig28", "tab_fill", "abl_row_weight",
            "abl_quantiles", "abl_partitioner", "abl_threads",
            "abl_buffer", "abl_trees", "tab2_sim", "corr_study",
            "ord_study", "abl_topology", "abl_seed",
            "model_validation", "eff_study",
        ],
        "runner",
    ],
}

#: Back-compat alias (historical public name for the sim-only rule).
SIM_LAYERS = LAYERED_PACKAGES["repro.sim"]

#: Leaf packages: their modules may import nothing from ``repro``
#: outside the package itself (standard library / third-party only).
LEAF_PACKAGES: Dict[str, str] = {
    "repro.obs": "obs is the observability leaf every layer may import; "
                 "it must not import any repro layer back",
}

#: (importer-prefix, forbidden-import-prefix, reason)
FORBIDDEN: List[Tuple[str, str, str]] = [
    ("repro.comm", "repro.sim",
     "comm is the geometry/tree layer; it must not know the simulator"),
    ("repro.comm", "repro.dataflow",
     "comm sits below dataflow; trees and forests stay program-agnostic"),
    ("repro.dataflow", "repro.sim",
     "dataflow programs are engine-neutral artifacts; the simulator "
     "consumes them, never the reverse"),
    ("repro.sim", "repro.cli",
     "the simulator never reaches into the CLI"),
    ("repro.hypergraph", "repro.sim",
     "the partitioner is a leaf library; it must not know the "
     "simulator"),
    ("repro.hypergraph", "repro.core",
     "the partitioner is below the mapping core, not above it"),
    ("repro.hypergraph", "repro.experiments",
     "the partitioner never reaches into the experiment pipeline"),
    ("repro.hypergraph", "repro.cli",
     "the partitioner never reaches into the CLI"),
    ("repro.sparse", "repro.precond",
     "the sparse substrate sits below the preconditioners"),
    ("repro.sparse", "repro.solvers",
     "the sparse substrate sits below the solvers"),
    ("repro.precond", "repro.solvers",
     "preconditioners are consumed by solvers, never the reverse"),
    ("repro.sparse", "repro.sim",
     "the functional kernels are the simulator's validation oracle; "
     "they must stay simulator-free"),
    ("repro.precond", "repro.sim",
     "preconditioners must stay simulator-free"),
    ("repro.solvers", "repro.sim",
     "the functional solvers are the simulator's validation oracle; "
     "they must stay simulator-free"),
    ("repro.sparse", "repro.experiments",
     "the solver stack never reaches into the experiment pipeline"),
    ("repro.precond", "repro.experiments",
     "the solver stack never reaches into the experiment pipeline"),
    ("repro.solvers", "repro.experiments",
     "the solver stack never reaches into the experiment pipeline"),
    ("repro.experiments", "repro.cli",
     "experiments are a library the CLI drives, never the reverse"),
]


def _module_name(path: Path, src: Path = SRC) -> str:
    rel = path.relative_to(src).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _imports(path: Path, module: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, imported_module)`` for every import in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    package_parts = module.split(".")
    if path.name != "__init__.py":
        package_parts = package_parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base)
                target = (
                    f"{prefix}.{node.module}" if node.module else prefix
                )
            else:
                target = node.module or ""
            if target:
                yield node.lineno, target


def _layer_index(layers: List[Layer]) -> Dict[str, int]:
    """Flatten a layer spec into ``module-segment -> rank``."""
    index: Dict[str, int] = {}
    for rank, layer in enumerate(layers):
        for name in ([layer] if isinstance(layer, str) else layer):
            index[name] = rank
    return index


_LAYER_INDEX: Dict[str, Dict[str, int]] = {
    package: _layer_index(layers)
    for package, layers in LAYERED_PACKAGES.items()
}


def _layer(module: str) -> Optional[Tuple[str, int, str]]:
    """``(package, rank, segment)`` of a layered-package module, else None."""
    parts = module.split(".")
    for package, index in _LAYER_INDEX.items():
        package_parts = package.split(".")
        depth = len(package_parts)
        if len(parts) >= depth + 1 and parts[:depth] == package_parts:
            segment = parts[depth]
            rank = index.get(segment)
            return None if rank is None else (package, rank, segment)
    return None


def check(src: Path = SRC) -> List[str]:
    """All layer-contract violations in the tree (empty = clean)."""
    violations: List[str] = []
    for path in sorted(src.rglob("*.py")):
        module = _module_name(path, src)
        importer = None if path.name == "__init__.py" else _layer(module)
        for lineno, target in _imports(path, module):
            where = f"{path.relative_to(src.parent)}:{lineno}"
            # Rule 1/2/9: strict layering inside each layered package.
            target_layer = _layer(target)
            if (importer is not None and target_layer is not None
                    and importer[0] == target_layer[0]):
                package = importer[0]
                if target_layer[1] > importer[1]:
                    violations.append(
                        f"{where}: {module} (layer "
                        f"'{importer[2]}') imports {target} "
                        f"(higher {package} layer "
                        f"'{target_layer[2]}')"
                    )
                elif (target_layer[1] == importer[1]
                        and target_layer[2] != importer[2]):
                    violations.append(
                        f"{where}: {module} imports sibling {target} "
                        f"(same-rank {package} modules must stay "
                        f"independent)"
                    )
            # Rule 3+: forbidden cross-package edges.
            for src_prefix, bad_prefix, reason in FORBIDDEN:
                if (module == src_prefix
                        or module.startswith(src_prefix + ".")) and (
                        target == bad_prefix
                        or target.startswith(bad_prefix + ".")):
                    violations.append(
                        f"{where}: {module} imports {target} ({reason})"
                    )
            # Leaf packages: no repro import outside the package.
            for package, reason in LEAF_PACKAGES.items():
                if (module == package
                        or module.startswith(package + ".")) and (
                        target.split(".")[0] == "repro"
                        and target != package
                        and not target.startswith(package + ".")):
                    violations.append(
                        f"{where}: {module} imports {target} ({reason})"
                    )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("layer-contract violations:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    def _render(layer: Layer) -> str:
        if isinstance(layer, str):
            return layer
        return f"[{len(layer)} siblings]"

    summaries = "; ".join(
        f"{package}: {' <- '.join(_render(layer) for layer in layers)}"
        for package, layers in LAYERED_PACKAGES.items()
    )
    print(f"layer contract OK ({summaries}; "
          f"{len(FORBIDDEN)} cross-package rules; "
          f"{len(LEAF_PACKAGES)} leaf package(s): "
          f"{', '.join(LEAF_PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

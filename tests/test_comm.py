"""Tests for torus geometry, routing, and communication trees."""

import numpy as np
import pytest

from repro.comm import (
    TorusGeometry,
    build_multicast_tree,
    build_reduction_tree,
    hop_distance,
    route_path,
)


@pytest.fixture
def torus8():
    return TorusGeometry(8, 8)


class TestTorus:
    def test_coords_roundtrip(self, torus8):
        for tile in range(torus8.n_tiles):
            r, c = torus8.coords(tile)
            assert torus8.tile_id(r, c) == tile

    def test_neighbors_wrap(self, torus8):
        north, south, west, east = torus8.neighbors(0)
        assert north == torus8.tile_id(7, 0)  # wraps to bottom row
        assert south == torus8.tile_id(1, 0)
        assert west == torus8.tile_id(0, 7)  # wraps to last column
        assert east == torus8.tile_id(0, 1)

    def test_hop_distance_uses_wraparound(self, torus8):
        # Corner to corner is 2 hops on a torus, not 14.
        assert torus8.hop_distance(0, torus8.tile_id(7, 7)) == 2

    def test_hop_distance_symmetric(self, torus8, rng):
        for _ in range(20):
            a, b = rng.integers(0, torus8.n_tiles, 2)
            assert torus8.hop_distance(int(a), int(b)) == torus8.hop_distance(
                int(b), int(a)
            )

    def test_max_distance(self, torus8):
        max_hops = max(
            torus8.hop_distance(0, t) for t in range(torus8.n_tiles)
        )
        assert max_hops == 8  # rows/2 + cols/2

    def test_all_links_count(self, torus8):
        assert len(torus8.all_links()) == 4 * torus8.n_tiles

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TorusGeometry(0, 4)


class TestRouting:
    def test_path_endpoints(self, torus8, rng):
        for _ in range(20):
            src, dst = (int(v) for v in rng.integers(0, torus8.n_tiles, 2))
            path = route_path(torus8, src, dst)
            assert path[0] == src
            assert path[-1] == dst

    def test_path_length_is_minimal(self, torus8, rng):
        for _ in range(20):
            src, dst = (int(v) for v in rng.integers(0, torus8.n_tiles, 2))
            path = route_path(torus8, src, dst)
            assert len(path) - 1 == hop_distance(torus8, src, dst)

    def test_path_steps_are_links(self, torus8, rng):
        for _ in range(10):
            src, dst = (int(v) for v in rng.integers(0, torus8.n_tiles, 2))
            path = route_path(torus8, src, dst)
            for a, b in zip(path, path[1:]):
                assert b in torus8.neighbors(a)

    def test_self_route(self, torus8):
        assert route_path(torus8, 5, 5) == [5]

    def test_x_before_y(self, torus8):
        """Dimension order: the column must be fixed before rows change."""
        src = torus8.tile_id(1, 1)
        dst = torus8.tile_id(4, 4)
        path = route_path(torus8, src, dst)
        cols = [torus8.coords(t)[1] for t in path]
        rows = [torus8.coords(t)[0] for t in path]
        # Once a row change happens, column stays fixed.
        first_row_change = next(
            (i for i in range(1, len(path)) if rows[i] != rows[i - 1]),
            len(path),
        )
        assert all(c == cols[-1] for c in cols[first_row_change:])


class TestMulticastTree:
    def test_single_destination_is_path(self, torus8):
        tree = build_multicast_tree(torus8, 0, [9])
        assert tree.n_link_activations == hop_distance(torus8, 0, 9)

    def test_shared_prefix_traversed_once(self, torus8):
        """Fig. 18: destinations in the same direction share links."""
        root = torus8.tile_id(3, 3)
        dests = [
            torus8.tile_id(1, 1),
            torus8.tile_id(3, 1),
            torus8.tile_id(6, 1),
        ]
        tree = build_multicast_tree(torus8, root, dests)
        naive = sum(hop_distance(torus8, root, d) for d in dests)
        assert tree.n_link_activations < naive
        # All three share the westward path to column 1 (2 links), then
        # fan out north/south.
        assert tree.n_link_activations == 2 + 2 + 3

    def test_all_destinations_reachable(self, torus8, rng):
        root = 0
        dests = sorted(set(int(v) for v in rng.integers(1, 64, 12)))
        tree = build_multicast_tree(torus8, root, dests)
        reached = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in tree.children.get(node, ()):
                reached.add(child)
                stack.append(child)
        assert set(dests) <= reached

    def test_root_excluded_from_destinations(self, torus8):
        tree = build_multicast_tree(torus8, 5, [5, 6])
        assert tree.destinations == (6,)

    def test_empty_destinations(self, torus8):
        tree = build_multicast_tree(torus8, 5, [])
        assert tree.n_link_activations == 0
        assert tree.depth() == 0

    def test_fanout(self, torus8):
        root = torus8.tile_id(3, 3)
        dests = [torus8.tile_id(3, 2), torus8.tile_id(3, 4)]
        tree = build_multicast_tree(torus8, root, dests)
        assert tree.fanout(root) == 2


class TestReductionTree:
    def test_edges_reverse_multicast(self, torus8, rng):
        root = 10
        sources = sorted(set(int(v) for v in rng.integers(0, 64, 10)) - {root})
        mcast = build_multicast_tree(torus8, root, sources)
        reduction = build_reduction_tree(torus8, root, sources)
        assert reduction.n_link_activations == mcast.n_link_activations
        assert sorted((p, c) for c, p in reduction.edges) == mcast.edges

    def test_parents_lead_to_root(self, torus8, rng):
        root = 3
        sources = sorted(set(int(v) for v in rng.integers(0, 64, 8)) - {root})
        tree = build_reduction_tree(torus8, root, sources)
        for source in sources:
            node = source
            hops = 0
            while node != root:
                node = tree.parent[node]
                hops += 1
                assert hops <= torus8.n_tiles
        assert tree.depth() > 0

    def test_combine_tiles_present_for_fan_in(self, torus8):
        root = torus8.tile_id(3, 3)
        # Two sources whose paths merge at the root's column.
        sources = [torus8.tile_id(1, 3), torus8.tile_id(5, 3)]
        tree = build_reduction_tree(torus8, root, sources)
        assert root in tree.combine_tiles
